"""Trace windows: the ``nde.tracing()`` facade and its :class:`TraceReport`.

:class:`tracing` is a context manager that switches observability on for
its body and collects everything recorded inside the window::

    import repro.core as nde

    with nde.tracing() as report:
        result = nde.execute_robust(sink, sources)
        scores = nde.datascope(result, valid_result, method="shapley_mc")

    print(report.render())          # span tree + per-name summary + metrics
    report.save_jsonl("trace.jsonl")

The report object is handed out at ``__enter__`` and *filled in* at
``__exit__`` — inside the body it is still empty. Windows nest: an inner
``tracing()`` sees only its own spans and metric deltas, and only the
outermost window flips the global flag off again on exit.
"""

from __future__ import annotations

import json
from typing import Any

from . import metrics as _metrics
from . import trace as _trace
from .atomicio import atomic_writer
from .trace import TRACE_SCHEMA_VERSION, Span, _jsonable

__all__ = ["TraceReport", "tracing"]


# What a window contributed: counter/histogram deltas, gauge values.
# Shared with the worker-telemetry backhaul, which ships the same shape
# over the result pipe — the canonical implementation lives in metrics.
_metrics_delta = _metrics.delta_snapshots


class TraceReport:
    """Spans + metric deltas of one :class:`tracing` window."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.metrics: dict[str, dict[str, Any]] = {}
        self.closed = False

    # -- structure -------------------------------------------------------
    def roots(self) -> list[Span]:
        ids = {s.span_id for s in self.spans}
        return [s for s in self.spans if s.parent_id not in ids]

    def children(self, span: Span) -> list[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]

    def find(self, name: str) -> list[Span]:
        """All spans whose name equals or starts with ``name`` + ``.``/``#``."""
        return [
            s
            for s in self.spans
            if s.name == name or s.name.startswith(name + ".") or s.name.startswith(name + "#")
        ]

    def span_names(self) -> list[str]:
        """Names in recording (pre-)order — the deterministic trace skeleton."""
        return [s.name for s in self.spans]

    def total_duration(self) -> float:
        return sum(s.duration or 0.0 for s in self.roots())

    # -- aggregation ------------------------------------------------------
    def summary(self) -> list[dict[str, Any]]:
        """Per-name aggregate rows: calls, total/mean/max duration, self time.

        "Self" time is a span's duration minus its children's — the flame
        view collapsed to one row per span name, sorted by total time.
        """
        child_total: dict[int, float] = {}
        for s in self.spans:
            if s.parent_id is not None and s.duration is not None:
                child_total[s.parent_id] = child_total.get(s.parent_id, 0.0) + s.duration
        rows: dict[str, dict[str, Any]] = {}
        for s in self.spans:
            if s.duration is None:
                continue
            row = rows.setdefault(
                s.name,
                {"name": s.name, "calls": 0, "total_s": 0.0, "max_s": 0.0, "self_s": 0.0},
            )
            row["calls"] += 1
            row["total_s"] += s.duration
            row["max_s"] = max(row["max_s"], s.duration)
            row["self_s"] += s.duration - child_total.get(s.span_id, 0.0)
        out = sorted(rows.values(), key=lambda r: -r["total_s"])
        for row in out:
            row["mean_s"] = row["total_s"] / row["calls"]
        return out

    # -- rendering --------------------------------------------------------
    def tree(self, max_attrs: int = 4) -> str:
        from ..viz.trace_view import format_trace

        return format_trace(self.spans, max_attrs=max_attrs)

    def summary_table(self) -> str:
        from ..viz.trace_view import format_span_summary

        return format_span_summary(self.summary())

    def metrics_table(self) -> str:
        from ..viz.trace_view import format_metrics

        return format_metrics(self.metrics)

    def render(self) -> str:
        """The full human view: span tree, per-name summary, metric deltas."""
        parts = [self.tree()]
        if len(self.spans) > 1:
            parts += ["", self.summary_table()]
        if self.metrics:
            parts += ["", self.metrics_table()]
        return "\n".join(parts)

    # -- export -----------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": TRACE_SCHEMA_VERSION,
            "spans": [s.to_dict() for s in self.spans],
            "metrics": _jsonable(self.metrics),
        }

    def save_jsonl(self, path: Any) -> int:
        """Schema-versioned header line, one JSON line per span, plus a
        final ``{"metrics": ...}`` line. Written atomically (staged +
        renamed), so readers never observe a torn export."""
        with atomic_writer(path) as handle:
            handle.write(
                json.dumps(
                    {
                        "schema_version": TRACE_SCHEMA_VERSION,
                        "kind": "trace_report",
                        "n_spans": len(self.spans),
                    }
                )
                + "\n"
            )
            for span in self.spans:
                handle.write(json.dumps(span.to_dict()) + "\n")
            handle.write(json.dumps({"metrics": _jsonable(self.metrics)}) + "\n")
        return len(self.spans)

    @classmethod
    def from_jsonl(cls, path: Any) -> "TraceReport":
        """Round-trip loader for :meth:`save_jsonl` files.

        Forward-compatible by construction: unknown keys on span lines are
        dropped, unknown line kinds (a future header field, a new record
        type) are ignored, and files written before the schema-version
        header existed still load. The report comes back ``closed``.
        """
        span_fields = set(Span.__dataclass_fields__)
        report = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                if not isinstance(payload, dict):
                    continue
                if "span_id" in payload:
                    known = {
                        k: v for k, v in payload.items() if k in span_fields
                    }
                    known.setdefault("parent_id", None)
                    known.setdefault("name", "")
                    known.setdefault("start", 0.0)
                    known.setdefault("attrs", {})
                    report.spans.append(Span(**known))
                elif "metrics" in payload:
                    report.metrics = payload["metrics"] or {}
                # anything else (headers, future record kinds) is ignored
        report.closed = True
        return report

    def save_json(self, path: Any) -> None:
        with atomic_writer(path) as handle:
            json.dump(self.to_dict(), handle, indent=2)
            handle.write("\n")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"TraceReport({state}, spans={len(self.spans)}, metrics={len(self.metrics)})"


class tracing:
    """Enable observability for a ``with`` body and report what happened.

    Parameters
    ----------
    root:
        Optional name for a root span wrapping the whole window, so
        several top-level calls in the body share one tree.
    """

    def __init__(self, root: str | None = None) -> None:
        self.root = root
        self.report = TraceReport()
        self._was_enabled = False
        self._start_index = 0
        self._metrics_before: dict[str, dict[str, Any]] = {}
        self._root_span = None

    def __enter__(self) -> TraceReport:
        self._was_enabled = _trace.enabled()
        _trace.enable()
        self._start_index = len(_trace.get_recorder())
        self._metrics_before = _metrics.snapshot()
        if self.root is not None:
            self._root_span = _trace.span(self.root)
            self._root_span.__enter__()
        return self.report

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._root_span is not None:
            self._root_span.__exit__(exc_type, exc, tb)
        if not self._was_enabled:
            _trace.disable()
        recorder = _trace.get_recorder()
        self.report.spans = recorder.spans[self._start_index :]
        self.report.metrics = _metrics_delta(
            self._metrics_before, _metrics.snapshot()
        )
        self.report.closed = True
