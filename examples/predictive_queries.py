"""Predictive query processing and aggregate complaints (Figure 1, stage 4).

The last stage of the paper's Figure 1 pipeline: trained models answer
*queries* — calibrated, aggregated, dictionary-mapped — and data errors
surface as wrong query answers. This example:

1. trains the letters classifier and calibrates its probabilities,
2. runs a grouped predictive query (positive rate per sector),
3. injects systematic label bias against female applicants,
4. shows the query answer shift,
5. files an aggregate complaint and lets the Rain-style resolver remove the
   responsible training tuples.

Run with:  python examples/predictive_queries.py
"""

import numpy as np

from repro.core import default_featurize
from repro.datasets import load_recommendation_letters, load_sidedata
from repro.errors import inject_group_label_bias
from repro.learn import LogisticRegression, PlattCalibrator, expected_calibration_error
from repro.queries import AggregateComplaint, PredictiveQuery, resolve_aggregate_complaint
from repro.learn import reliability_table
from repro.viz import format_table, reliability_chart


def main() -> None:
    train, valid, test = load_recommendation_letters(n=500, seed=7)
    y_train = np.asarray(train["sentiment"].to_list())
    X_train = default_featurize(train)
    model = LogisticRegression(max_iter=80).fit(X_train, y_train)

    # --- calibration (Figure 1's "calibration" box) --------------------
    y_valid = np.asarray(valid["sentiment"].to_list())
    calibrator = PlattCalibrator(model, positive="positive").fit(
        default_featurize(valid), y_valid
    )
    y_test = np.asarray(test["sentiment"].to_list())
    raw = model.predict_proba(default_featurize(test))[
        :, list(model.classes_).index("positive")
    ]
    calibrated = calibrator.predict_proba(default_featurize(test))
    print(
        "expected calibration error: raw "
        f"{expected_calibration_error(y_test, raw, 'positive'):.4f} → calibrated "
        f"{expected_calibration_error(y_test, calibrated, 'positive'):.4f}\n"
    )
    print(reliability_chart(reliability_table(y_test, calibrated, "positive", n_bins=6)))
    print()

    # --- the predictive query (aggregation + dictionary lookup) --------
    query = PredictiveQuery(
        model,
        default_featurize,
        group_column="sex",
        aggregate="positive_rate",
        positive="positive",
        calibrator=calibrator,
        decision_map={"positive": "invite to interview", "negative": "send rejection"},
    )
    result = query.run(test)
    print("SELECT sex, positive_rate(prediction) FROM test GROUP BY sex:")
    print(format_table(result.table))
    clean_value = result.value_for("f")

    # --- inject bias, watch the answer shift ---------------------------
    dirty, report = inject_group_label_bias(
        train, "sentiment", "sex", "f",
        from_label="positive", to_label="negative", fraction=0.5, seed=3,
    )
    y_dirty = np.asarray(dirty["sentiment"].to_list())
    dirty_model = LogisticRegression(max_iter=80).fit(X_train, y_dirty)
    dirty_query = PredictiveQuery(
        dirty_model, default_featurize, group_column="sex",
        aggregate="positive_rate", positive="positive",
    )
    dirty_value = dirty_query.run(test).value_for("f")
    print(
        f"\nafter injecting label bias against 'f' "
        f"({report.n_errors} flips): query answer {clean_value:.3f} → {dirty_value:.3f}"
    )

    # --- aggregate complaint → targeted training-data repair -----------
    complaint = AggregateComplaint(
        group="f", target=clean_value - 0.02, direction="at_least"
    )
    resolution = resolve_aggregate_complaint(
        dirty_query, X_train, y_dirty, test, complaint,
        max_removals=80, batch_size=10,
    )
    hits = len(
        set(dirty.row_ids[resolution.removed_positions].tolist())
        & set(report.row_ids.tolist())
    )
    print(
        f"complaint (answer should be ≥ {complaint.target:.3f}): "
        f"{'resolved' if resolution.resolved else 'unresolved'} after removing "
        f"{len(resolution.removed_positions)} tuples "
        f"({hits} of them actually corrupted) → answer {resolution.value_after:.3f}"
    )


if __name__ == "__main__":
    main()
