"""Job model: request fingerprints, lifecycle state machine, streaming."""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    TERMINAL_STATES,
    Job,
    JobRejected,
    JobRequest,
    JobState,
)


class TestJobRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            JobRequest(kind="")
        with pytest.raises(ValueError):
            JobRequest(kind="v", deadline_s=-1.0)
        with pytest.raises(ValueError):
            JobRequest(kind="v", max_retries=-1)
        JobRequest(kind="v", deadline_s=0.0)  # zero budget is legal

    def test_config_fingerprint_covers_kind_and_params_only(self):
        base = JobRequest(kind="v", params={"n": 5, "seed": 1})
        same_compute = JobRequest(
            kind="v", params={"seed": 1, "n": 5},  # key order irrelevant
            tenant="other", priority=7, deadline_s=3.0, max_retries=2,
        )
        assert base.config_fingerprint() == same_compute.config_fingerprint()
        assert (
            base.config_fingerprint()
            != JobRequest(kind="v", params={"n": 6, "seed": 1}).config_fingerprint()
        )
        assert (
            base.config_fingerprint()
            != JobRequest(kind="w", params={"n": 5, "seed": 1}).config_fingerprint()
        )

    def test_dedup_key_includes_dataset_fingerprint(self):
        a = JobRequest(kind="v", params={"n": 5}, dataset_fingerprint="abc")
        b = JobRequest(kind="v", params={"n": 5}, dataset_fingerprint="xyz")
        c = JobRequest(kind="v", params={"n": 5}, dataset_fingerprint="abc")
        assert a.dedup_key() == c.dedup_key()
        assert a.dedup_key() != b.dedup_key()

    def test_dict_roundtrip_ignores_unknown_fields(self):
        request = JobRequest(
            kind="v", params={"n": 5}, tenant="t", priority=2,
            deadline_s=1.5, max_retries=1, dataset_fingerprint="fp",
            dedup=False,
        )
        payload = request.to_dict()
        payload["from_the_future"] = True
        assert JobRequest.from_dict(payload) == request


class TestJobLifecycle:
    def test_terminal_is_final(self):
        job = Job("j1", JobRequest(kind="v"))
        job.transition(JobState.QUEUED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.COMPLETED)
        assert job.done and job.finished_at is not None
        for state in JobState:
            with pytest.raises(RuntimeError, match="already terminal"):
                job.transition(state)

    def test_every_terminal_state_resolves_waiters(self):
        async def run(state):
            job = Job("j", JobRequest(kind="v"))
            job.result = "r"
            job.reject_reason = "queue_full"
            job.error = "boom"
            job.transition(state)
            return await job.wait()

        assert asyncio.run(run(JobState.COMPLETED)) == "r"
        assert asyncio.run(run(JobState.DEGRADED)) == "r"
        with pytest.raises(JobRejected, match="queue_full"):
            asyncio.run(run(JobState.REJECTED))
        with pytest.raises(RuntimeError, match="boom"):
            asyncio.run(run(JobState.FAILED))

    def test_stream_fans_out_and_replays_latest_to_late_joiners(self):
        async def run():
            job = Job("j", JobRequest(kind="v"))
            job.transition(JobState.RUNNING)
            job.publish_progress({"completed": 1})

            async def consume():
                return [s["completed"] async for s in job.stream()]

            late = asyncio.create_task(consume())
            await asyncio.sleep(0)  # let the subscriber attach
            job.publish_progress({"completed": 2})
            job.transition(JobState.COMPLETED)
            return await late

        # The late joiner sees the replayed latest snapshot, then live ones.
        assert asyncio.run(run()) == [1, 2]

    def test_latency_accounting(self):
        job = Job("j", JobRequest(kind="v"))
        assert job.queue_wait_s is None and job.latency_s is None
        job.transition(JobState.RUNNING)
        job.transition(JobState.DEGRADED)
        assert job.queue_wait_s >= 0.0
        assert job.latency_s >= job.queue_wait_s

    def test_summary_is_jsonable(self):
        import json

        job = Job("j", JobRequest(kind="v", tenant="t"))
        job.transition(JobState.REJECTED)
        assert json.loads(json.dumps(job.summary()))["state"] == "rejected"

    def test_terminal_states_cover_exactly_the_final_states(self):
        assert TERMINAL_STATES == {
            JobState.COMPLETED,
            JobState.DEGRADED,
            JobState.FAILED,
            JobState.REJECTED,
        }
