"""Differential tests: implementation variants that must agree bit-for-bit.

The library promises two strong determinism guarantees:

* :func:`knn_shapley` streams the validation set in blocks, and blocking
  must not change the result — not even in the last float bit.
* :class:`ValuationEngine` merges worker results in permutation order, so
  Monte-Carlo values are bit-identical for every ``n_workers``.

Hypothesis drives both over random games; additive games additionally have
a closed-form answer (the weights) the Monte-Carlo estimate must straddle.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.importance import shapley_mc
from repro.importance.engine import ValuationEngine
from repro.importance.knn_shapley import knn_shapley
from repro.importance.utility import SubsetUtility

seeds = st.integers(min_value=0, max_value=10_000)
weight_lists = st.lists(
    st.floats(min_value=-5.0, max_value=5.0, allow_nan=False),
    min_size=3,
    max_size=8,
)


def _additive(weights):
    """v(S) = Σ_{i∈S} w_i — exact Shapley values are the weights."""
    w = np.asarray(weights, dtype=float)

    def v(indices):
        idx = np.asarray(list(indices), dtype=np.int64)
        return float(w[idx].sum()) if len(idx) else 0.0

    return SubsetUtility(v, len(w))


class TestKnnShapleyBlocking:
    @given(
        seed=seeds,
        n_train=st.integers(min_value=3, max_value=20),
        n_valid=st.integers(min_value=1, max_value=12),
        block_size=st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_any_block_size_is_bit_identical_to_one_shot(
        self, seed, n_train, n_valid, block_size
    ):
        rng = np.random.default_rng(seed)
        x = rng.normal(size=(n_train, 3))
        y = rng.integers(0, 3, size=n_train)
        x_valid = rng.normal(size=(n_valid, 3))
        y_valid = rng.integers(0, 3, size=n_valid)
        one_shot = knn_shapley(x, y, x_valid, y_valid, k=3, block_size=10_000)
        blocked = knn_shapley(x, y, x_valid, y_valid, k=3, block_size=block_size)
        assert np.array_equal(one_shot.values, blocked.values)


class TestEngineWorkerInvariance:
    @given(weights=weight_lists, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_serial_and_parallel_permutation_runs_are_bit_identical(
        self, weights, seed
    ):
        serial = ValuationEngine(_additive(weights), n_workers=1)
        parallel = ValuationEngine(_additive(weights), n_workers=3)
        a = serial.run_permutations(8, seed=seed)
        b = parallel.run_permutations(8, seed=seed)
        assert np.array_equal(a.totals, b.totals)
        assert np.array_equal(a.values(), b.values())

    @given(weights=weight_lists, seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_antithetic_runs_are_worker_count_invariant(self, weights, seed):
        serial = ValuationEngine(_additive(weights), n_workers=1)
        parallel = ValuationEngine(_additive(weights), n_workers=2)
        a = serial.run_permutations(8, seed=seed, antithetic=True)
        b = parallel.run_permutations(8, seed=seed, antithetic=True)
        assert np.array_equal(a.values(), b.values())

    @given(weights=weight_lists, seed=seeds)
    @settings(max_examples=8, deadline=None)
    def test_evaluate_many_is_worker_count_invariant(self, weights, seed):
        rng = np.random.default_rng(seed)
        n = len(weights)
        subsets = [
            np.flatnonzero(rng.random(n) < 0.5) for __ in range(12)
        ]
        serial = ValuationEngine(_additive(weights), n_workers=1)
        parallel = ValuationEngine(_additive(weights), n_workers=3)
        assert np.array_equal(
            serial.evaluate_many(subsets), parallel.evaluate_many(subsets)
        )

    @given(weights=weight_lists, seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_shapley_mc_matches_exact_values_on_additive_games(
        self, weights, seed
    ):
        # Every permutation's marginal for i is exactly w_i, so even a
        # single-permutation estimate is exact up to FP summation noise —
        # and stays exact through the parallel path.
        result = shapley_mc(
            None, n_permutations=4, seed=seed, engine=ValuationEngine(
                _additive(weights), n_workers=2
            ),
        )
        np.testing.assert_allclose(result.values, np.asarray(weights), atol=1e-9)
