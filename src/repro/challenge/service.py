"""Serving the debugging challenge through the job runtime.

The live challenge is the paper's most service-shaped workload: many
participants (tenants) submitting cleaning attempts and polling the
leaderboard concurrently. This module routes both through
:class:`~repro.service.runtime.JobRuntime`, so submissions get admission
control, fair-share scheduling, and journaling, while leaderboard reads —
idempotent and identical across participants — deduplicate into shared
executions.

::

    runtime = JobRuntime(policy=AdmissionPolicy(max_queue_depth=32))
    register_challenge(runtime, challenge)
    async with runtime:
        job = runtime.submit(submission_request("alice", [3, 17, 40]))
        outcome = await job.wait()          # dict: accuracies + n_cleaned
        board = await runtime.submit(leaderboard_request()).wait()
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from .challenge import DebuggingChallenge

__all__ = [
    "leaderboard_request",
    "register_challenge",
    "submission_request",
]


def register_challenge(
    runtime: Any,
    challenge: DebuggingChallenge,
    prefix: str = "challenge",
) -> None:
    """Register ``<prefix>.submit`` and ``<prefix>.leaderboard`` handlers.

    Submissions mutate per-participant oracle state, so requests for them
    must opt out of dedup (:func:`submission_request` does); leaderboard
    queries are pure reads and dedup freely.
    """

    def submit(params: Mapping[str, Any], context: Any) -> dict[str, Any]:
        outcome = challenge.submit(
            str(params["participant"]),
            [int(row) for row in params.get("row_ids", [])],
        )
        return {
            "participant": outcome.participant,
            "n_cleaned": outcome.n_cleaned,
            "hidden_test_accuracy": outcome.hidden_test_accuracy,
            "validation_accuracy": outcome.validation_accuracy,
        }

    def leaderboard(params: Mapping[str, Any], context: Any) -> dict[str, Any]:
        standings = challenge.leaderboard.standings()
        top = params.get("top")
        if top is not None:
            standings = standings[: int(top)]
        return {
            "baseline_accuracy": challenge.baseline_accuracy,
            "standings": [
                {
                    "rank": rank,
                    "participant": entry.participant,
                    "score": entry.score,
                    "n_submissions": entry.n_submissions,
                }
                for rank, entry in enumerate(standings, start=1)
            ],
        }

    runtime.register_handler(f"{prefix}.submit", submit)
    runtime.register_handler(f"{prefix}.leaderboard", leaderboard)


def submission_request(
    participant: str,
    row_ids: Iterable[int],
    priority: int = 0,
    deadline_s: float | None = None,
    prefix: str = "challenge",
) -> Any:
    """A :class:`~repro.service.job.JobRequest` for one cleaning attempt.

    The participant is the tenant (fair share across players, per-player
    circuit breaking) and dedup is off — every attempt spends real budget
    and must really run.
    """
    from ..service.job import JobRequest

    return JobRequest(
        kind=f"{prefix}.submit",
        params={
            "participant": str(participant),
            "row_ids": [int(row) for row in row_ids],
        },
        tenant=str(participant),
        priority=priority,
        deadline_s=deadline_s,
        dedup=False,
    )


def leaderboard_request(
    top: int | None = None,
    tenant: str = "default",
    priority: int = 0,
    prefix: str = "challenge",
) -> Any:
    """A dedup-friendly standings query (shared across concurrent pollers)."""
    from ..service.job import JobRequest

    params: dict[str, Any] = {}
    if top is not None:
        params["top"] = int(top)
    return JobRequest(
        kind=f"{prefix}.leaderboard",
        params=params,
        tenant=tenant,
        priority=priority,
    )
