"""Facade mirroring the paper's ``navigating_data_errors`` package."""

from .api import (
    datascope,
    default_featurize,
    encode_symbolic,
    estimate_with_zorro,
    evaluate_change,
    evaluate_model,
    execute_robust,
    inject_labelerrors,
    knn_shapley_values,
    load_recommendation_letters,
    load_sidedata,
    pretty_print,
    remove,
    show_query_plan,
    visualize_uncertainty,
    with_provenance,
)

__all__ = [
    "datascope",
    "default_featurize",
    "encode_symbolic",
    "estimate_with_zorro",
    "evaluate_change",
    "evaluate_model",
    "execute_robust",
    "inject_labelerrors",
    "knn_shapley_values",
    "load_recommendation_letters",
    "load_sidedata",
    "pretty_print",
    "remove",
    "show_query_plan",
    "visualize_uncertainty",
    "with_provenance",
]
