"""Experiment F4-task — prediction ranges vs the imputation baseline.

The Figure-4 attendee task: compute Zorro prediction ranges and compare with
a baseline model trained on imputed data. The imputed model *commits* to one
answer everywhere; Zorro reports which answers are actually warranted by the
data. Shape to reproduce: (a) the certified subset of Zorro's predictions is
at least as accurate as the imputation baseline on the same points, and
(b) the certified fraction shrinks as missingness grows while the baseline
keeps answering everything with silently degrading reliability.
"""

import numpy as np

import repro.core as nde
from repro.uncertainty import ZorroTrainer, ridge_solve
from repro.viz import format_records

PERCENTAGES = [5, 15, 25, 40]
FEATURES = ["employer_rating", "age"]


def run_comparison() -> list[dict]:
    train, __, test = nde.load_recommendation_letters(n=400, seed=7)
    x_test = test.select(FEATURES).to_numpy()
    y_test = np.asarray(
        [1.0 if v == "positive" else -1.0 for v in test.column("sentiment").to_list()]
    )
    rows = []
    for pct in PERCENTAGES:
        symbolic = nde.encode_symbolic(
            train,
            uncertain_feature="employer_rating",
            feature_columns=FEATURES,
            missing_percentage=pct,
            missingness="MNAR",
            seed=1,
        )
        model = ZorroTrainer(l2=0.5).fit(symbolic)
        certain, labels = model.certified_predictions(x_test)

        # Imputation baseline: midpoint-impute, train one ridge model with
        # the same regulariser and schedule.
        world = symbolic.center_world()
        theta = ridge_solve((world - model.mean) / model.scale, symbolic.y, l2=0.5)
        design = np.column_stack(
            [(x_test - model.mean) / model.scale, np.ones(len(x_test))]
        )
        baseline_labels = np.where(design @ theta >= 0, 1.0, -1.0)
        baseline_accuracy = float(np.mean(baseline_labels == y_test))
        certified_accuracy = (
            float(np.mean(labels[certain] == y_test[certain])) if certain.any() else 1.0
        )
        rows.append(
            {
                "missing_pct": pct,
                "certified_fraction": float(np.mean(certain)),
                "accuracy_on_certified": certified_accuracy,
                "imputation_accuracy_overall": baseline_accuracy,
                "imputation_accuracy_on_certified": float(
                    np.mean(baseline_labels[certain] == y_test[certain])
                )
                if certain.any()
                else 1.0,
            }
        )
    return rows


def test_prediction_ranges_vs_imputation(benchmark, write_report):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    write_report("prediction_ranges", format_records(rows))

    fractions = [r["certified_fraction"] for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(fractions, fractions[1:])), (
        "certified fraction must shrink with missingness"
    )
    for row in rows:
        if row["certified_fraction"] > 0:
            # On points Zorro certifies, committing to the certified label is
            # exactly as good as the imputation baseline (they agree there) —
            # the difference is Zorro *also says* which answers to trust.
            assert (
                row["accuracy_on_certified"]
                >= row["imputation_accuracy_on_certified"] - 1e-9
            )
