"""Quickstart — identify data errors with data importance (paper Figure 2).

Runs the full hands-on storyline from the tutorial's first session:

1. load the synthetic recommendation-letters dataset,
2. inject label errors and watch the model degrade,
3. rank training tuples by exact KNN-Shapley importance,
4. hand the most suspicious tuples to a cleaning oracle,
5. watch the model recover.

Run with:  python examples/quickstart.py
"""

import numpy as np

import repro.core as nde
from repro.cleaning import CleaningOracle
from repro.learn import KNeighborsClassifier


def main() -> None:
    train_df, valid_df, test_df = nde.load_recommendation_letters(n=400, seed=7)
    print(f"loaded {train_df.num_rows} training letters, columns: {train_df.columns}\n")

    model = KNeighborsClassifier(5)
    train_df_err = nde.inject_labelerrors(train_df, fraction=0.2, seed=3)
    acc_dirty = nde.evaluate_model(train_df_err, valid_df, model=model)
    print(f"Accuracy with data errors: {acc_dirty:.3f}.")

    importances = nde.knn_shapley_values(train_df_err, validation=valid_df)
    lowest = np.argsort(importances)[:25]
    print("\nMost suspicious training letters (lowest KNN-Shapley importance):")
    suspicious = train_df_err.take(lowest[:5]).select(["name", "sentiment"])
    suspicious["importance"] = importances[lowest[:5]]
    suspicious["letter_excerpt"] = [
        text[:60] + "…" for text in train_df_err.take(lowest[:5])["letter_text"].to_list()
    ]
    nde.pretty_print(suspicious)

    # Replace the flagged records with clean ground truth via the oracle.
    oracle = CleaningOracle(train_df)
    cleaned = oracle.clean(train_df_err, [int(train_df_err.row_ids[p]) for p in lowest])
    acc_cleaned = nde.evaluate_model(cleaned, valid_df, model=model)
    print(
        f"\nCleaning some records improved accuracy "
        f"from {acc_dirty:.3f} to {acc_cleaned:.3f}."
    )
    acc_ceiling = nde.evaluate_model(train_df, valid_df, model=model)
    print(f"(clean-data ceiling: {acc_ceiling:.3f})")


if __name__ == "__main__":
    main()
