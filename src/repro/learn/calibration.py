"""Probability calibration and reliability metrics.

"Calibration" is the first operation the paper's Figure 1 lists in the
*Predictive Query Processing* stage: downstream queries aggregate predicted
probabilities, so miscalibrated scores silently corrupt query answers even
when classification accuracy is fine. This module provides Platt scaling
(logistic calibration on held-out scores) and the expected calibration
error (ECE) diagnostic.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.optimize import minimize_scalar

from .base import Estimator
from .models.logistic import sigmoid

__all__ = ["PlattCalibrator", "expected_calibration_error", "reliability_table"]


def expected_calibration_error(
    y_true: Any, probabilities: Any, positive: Any, n_bins: int = 10
) -> float:
    """ECE: mean |confidence − accuracy| over equal-width probability bins.

    ``probabilities`` are the predicted probabilities of ``positive``.
    """
    y_true = np.asarray(y_true)
    probs = np.asarray(probabilities, dtype=float)
    if len(y_true) != len(probs):
        raise ValueError("length mismatch")
    outcomes = (y_true == positive).astype(float)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    total = 0.0
    for b in range(n_bins):
        members = (probs >= edges[b]) & (
            (probs < edges[b + 1]) if b < n_bins - 1 else (probs <= edges[b + 1])
        )
        if not members.any():
            continue
        confidence = probs[members].mean()
        accuracy = outcomes[members].mean()
        total += members.mean() * abs(confidence - accuracy)
    return float(total)


def reliability_table(
    y_true: Any, probabilities: Any, positive: Any, n_bins: int = 10
) -> list[dict]:
    """Per-bin (confidence, empirical rate, count) records for plotting."""
    y_true = np.asarray(y_true)
    probs = np.asarray(probabilities, dtype=float)
    outcomes = (y_true == positive).astype(float)
    edges = np.linspace(0.0, 1.0, n_bins + 1)
    rows = []
    for b in range(n_bins):
        members = (probs >= edges[b]) & (
            (probs < edges[b + 1]) if b < n_bins - 1 else (probs <= edges[b + 1])
        )
        if not members.any():
            continue
        rows.append(
            {
                "bin": f"[{edges[b]:.1f}, {edges[b + 1]:.1f})",
                "mean_confidence": float(probs[members].mean()),
                "empirical_rate": float(outcomes[members].mean()),
                "count": int(members.sum()),
            }
        )
    return rows


class PlattCalibrator:
    """Platt scaling: fit ``σ(a·score + b)`` on held-out scores.

    Wraps a fitted binary probabilistic classifier; ``fit`` learns the
    (a, b) recalibration on calibration data, ``predict_proba`` returns the
    recalibrated probability of the positive class.
    """

    def __init__(self, model: Estimator, positive: Any) -> None:
        self.model = model
        self.positive = positive

    def _scores(self, X: Any) -> np.ndarray:
        probs = self.model.predict_proba(X)
        classes = list(self.model.classes_)
        if self.positive not in classes:
            raise ValueError(f"positive class {self.positive!r} unknown to model")
        p = np.clip(probs[:, classes.index(self.positive)], 1e-7, 1 - 1e-7)
        return np.log(p / (1.0 - p))  # logit of the raw probability

    def fit(self, X: Any, y: Any) -> "PlattCalibrator":
        scores = self._scores(X)
        targets = (np.asarray(y) == self.positive).astype(float)

        def negative_log_likelihood(params: np.ndarray) -> float:
            a, b = params
            p = np.clip(sigmoid(a * scores + b), 1e-12, 1 - 1e-12)
            return float(-np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p)))

        # Coordinate descent on (a, b); the objective is convex and 2-D.
        a, b = 1.0, 0.0
        for __ in range(25):
            result = minimize_scalar(
                lambda aa: negative_log_likelihood(np.asarray([aa, b])),
                bounds=(0.01, 20.0),
                method="bounded",
            )
            a = float(result.x)
            result = minimize_scalar(
                lambda bb: negative_log_likelihood(np.asarray([a, bb])),
                bounds=(-10.0, 10.0),
                method="bounded",
            )
            b = float(result.x)
        self.a_, self.b_ = a, b
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        """Recalibrated probability of the positive class, shape (n,)."""
        if not hasattr(self, "a_"):
            raise RuntimeError("calibrator is not fitted")
        return sigmoid(self.a_ * self._scores(X) + self.b_)

    def predict(self, X: Any) -> np.ndarray:
        probs = self.predict_proba(X)
        classes = [c for c in self.model.classes_ if c != self.positive]
        negative = classes[0] if classes else self.positive
        return np.where(probs >= 0.5, self.positive, negative)
