"""Adversarial data-poisoning attacks.

The robust-learning part of the survey (refs [32], [70], [77], [90]) defends
against *adversarial* rather than random errors. Random flips understate the
threat, so this module provides targeted attacks for evaluating defences:

- :func:`adversarial_label_flips` — flip the ``budget`` training labels that
  most increase a validation loss, ranked by data-importance (the attacker's
  mirror image of prioritised cleaning);
- :func:`targeted_poison_points` — craft training points that push one
  specific test prediction toward an attacker-chosen label (the complement
  of complaint-driven debugging).
"""

from __future__ import annotations

import numpy as np

from ..importance.knn_shapley import knn_shapley
from .report import ErrorReport

__all__ = ["adversarial_label_flips", "targeted_poison_points"]


def adversarial_label_flips(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    budget: int,
    k: int = 5,
) -> tuple[np.ndarray, ErrorReport]:
    """Flip the labels that hurt validation quality the most.

    The attacker flips the labels of the ``budget`` *most beneficial* points
    (highest KNN-Shapley importance): turning the strongest allies into
    enemies is the greedy worst case for vote-based models, and empirically
    far stronger than random flipping for smooth models too.

    Returns the poisoned label vector and a ground-truth report.
    """
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    if budget < 0:
        raise ValueError("budget must be non-negative")
    budget = min(budget, len(y_train))
    classes = np.unique(y_train)
    if len(classes) < 2:
        raise ValueError("need at least two classes")
    importance = knn_shapley(x_train, y_train, x_valid, y_valid, k=k)
    victims = importance.highest(budget)
    poisoned = y_train.copy()
    rng = np.random.default_rng(0)
    originals = []
    for position in victims:
        originals.append(y_train[position])
        alternatives = classes[classes != y_train[position]]
        poisoned[position] = alternatives[int(rng.integers(len(alternatives)))]
    report = ErrorReport(
        kind="adversarial_label_flip",
        column="",
        row_ids=np.asarray(victims, dtype=np.int64),
        original_values=originals,
        params={"budget": budget, "k": k},
    )
    return poisoned, report


def targeted_poison_points(
    x_target: np.ndarray,
    wrong_label,
    budget: int,
    spread: float = 1e-3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Craft ``budget`` poison points that drag one prediction to
    ``wrong_label``.

    The classic nearest-neighbour attack: wrongly-labelled near-duplicates
    of the target point dominate its neighbourhood. Returns ``(X_poison,
    y_poison)`` to be appended to the training set.
    """
    if budget < 1:
        raise ValueError("budget must be >= 1")
    x_target = np.asarray(x_target, dtype=float).reshape(1, -1)
    rng = np.random.default_rng(seed)
    X_poison = x_target + rng.normal(scale=spread, size=(budget, x_target.shape[1]))
    y_poison = np.repeat(np.asarray([wrong_label]), budget)
    return X_poison, y_poison
