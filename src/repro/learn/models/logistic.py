"""Multinomial logistic regression trained with L-BFGS.

This is the workhorse classifier of the reproduction: the influence-function
and TracIn importance methods in :mod:`repro.importance` need its gradients
and Hessian, and the Zorro-style uncertainty propagation reasons about its
loss surface. The implementation keeps the loss/gradient functions module-
level so those modules can reuse them directly.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.optimize import minimize
from scipy.special import softmax

from ..base import Estimator, check_matrix, check_xy

__all__ = ["LogisticRegression", "softmax_loss_grad", "sigmoid"]


def sigmoid(z: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(z, dtype=float)
    positive = z >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-z[positive]))
    exp_z = np.exp(z[~positive])
    out[~positive] = exp_z / (1.0 + exp_z)
    return out


def softmax_loss_grad(
    weights: np.ndarray,
    X: np.ndarray,
    y_index: np.ndarray,
    n_classes: int,
    l2: float,
    sample_weight: np.ndarray | None = None,
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and gradient for flattened class weights.

    ``weights`` has shape ``(n_classes * (n_features + 1),)`` — per-class
    coefficient rows with the intercept as the last entry of each row.
    """
    n, d = X.shape
    W = weights.reshape(n_classes, d + 1)
    logits = X @ W[:, :d].T + W[:, d]
    probs = softmax(logits, axis=1)
    if sample_weight is None:
        sample_weight = np.ones(n)
    total = sample_weight.sum()
    picked = probs[np.arange(n), y_index]
    loss = float(
        -np.sum(sample_weight * np.log(np.clip(picked, 1e-12, None))) / total
    )
    loss += 0.5 * l2 * float(np.sum(W[:, :d] ** 2))
    delta = probs
    delta[np.arange(n), y_index] -= 1.0
    delta *= (sample_weight / total)[:, None]
    grad = np.empty_like(W)
    grad[:, :d] = delta.T @ X + l2 * W[:, :d]
    grad[:, d] = delta.sum(axis=0)
    return loss, grad.ravel()


class LogisticRegression(Estimator):
    """Multinomial logistic regression with L2 regularisation.

    Parameters
    ----------
    l2:
        Strength of the L2 penalty on the coefficients (not the intercept).
    max_iter:
        L-BFGS iteration budget.
    """

    def __init__(self, l2: float = 1e-3, max_iter: int = 200) -> None:
        self.l2 = float(l2)
        self.max_iter = int(max_iter)

    def fit(self, X: Any, y: Any, sample_weight: Any = None) -> "LogisticRegression":
        X, y = check_xy(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        n_classes = len(self.classes_)
        if n_classes < 2:
            # Degenerate training set: constant prediction.
            self.coef_ = np.zeros((1, X.shape[1]))
            self.intercept_ = np.zeros(1)
            return self
        weight = None if sample_weight is None else np.asarray(sample_weight, float)
        x0 = np.zeros(n_classes * (X.shape[1] + 1))
        result = minimize(
            softmax_loss_grad,
            x0,
            args=(X, y_index, n_classes, self.l2, weight),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter},
        )
        W = result.x.reshape(n_classes, X.shape[1] + 1)
        self.coef_ = W[:, : X.shape[1]]
        self.intercept_ = W[:, X.shape[1]]
        return self

    def decision_function(self, X: Any) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        return X @ self.coef_.T + self.intercept_

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        logits = self.decision_function(X)
        if len(self.classes_) < 2:
            return np.ones((len(logits), 1))
        return softmax(logits, axis=1)

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        if len(self.classes_) < 2:
            X = check_matrix(X)
            return np.repeat(self.classes_[:1], len(X))
        return self.classes_[np.argmax(self.decision_function(X), axis=1)]

    def log_loss(self, X: Any, y: Any) -> float:
        """Mean cross-entropy of the fitted model on (X, y)."""
        probs = self.predict_proba(X)
        y = np.asarray(y)
        index = np.searchsorted(self.classes_, y)
        index = np.clip(index, 0, len(self.classes_) - 1)
        valid = self.classes_[index] == y
        picked = np.where(valid, probs[np.arange(len(y)), index], 1e-12)
        return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))
