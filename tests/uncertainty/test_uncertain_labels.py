"""Tests for Zorro with uncertain labels (Figure 4's second error family)."""

import numpy as np
import pytest

from repro.datasets import make_regression
from repro.uncertainty import (
    UncertainDataset,
    ZorroTrainer,
    from_matrix_with_nans,
    ridge_solve,
)
from repro.uncertainty.intervals import Interval


@pytest.fixture(scope="module")
def mixed_dataset():
    X, y, __ = make_regression(n=100, n_features=3, seed=2)
    rng = np.random.default_rng(0)
    Xm = X.copy()
    Xm[rng.random(X.shape) < 0.05] = np.nan
    base = from_matrix_with_nans(Xm, y)
    y_radius = np.zeros(len(y))
    y_radius[rng.choice(len(y), 10, replace=False)] = 1.0
    return UncertainDataset(base.X, y, base.uncertain_cells, y_radius=y_radius), X, y


class TestUncertainLabels:
    def test_validation(self):
        X, y, __ = make_regression(n=10, seed=1)
        cells = np.zeros_like(X, dtype=bool)
        with pytest.raises(ValueError):
            UncertainDataset(Interval.exact(X), y, cells, y_radius=np.ones(3))
        with pytest.raises(ValueError):
            UncertainDataset(Interval.exact(X), y, cells, y_radius=-np.ones(len(y)))

    def test_sample_labels_within_radius(self, mixed_dataset):
        ds, __, y = mixed_dataset
        sampled = ds.sample_labels(3)
        assert np.all(np.abs(sampled - y) <= ds.y_radius + 1e-12)

    def test_mixed_soundness_sampled_worlds(self, mixed_dataset):
        ds, __, __ = mixed_dataset
        model = ZorroTrainer(l2=0.5).fit(ds)
        for seed in range(15):
            world = ds.sample_world(seed)
            labels = ds.sample_labels(seed + 500)
            theta = ridge_solve((world - model.mean) / model.scale, labels, l2=0.5)
            assert model.theta.contains(theta, atol=1e-7)

    def test_mixed_soundness_corner_worlds(self, mixed_dataset):
        ds, __, y = mixed_dataset
        model = ZorroTrainer(l2=0.5).fit(ds)
        for world in (ds.X.lo, ds.X.hi):
            for labels in (y - ds.y_radius, y + ds.y_radius):
                theta = ridge_solve((world - model.mean) / model.scale, labels, l2=0.5)
                assert model.theta.contains(theta, atol=1e-7)

    def test_labels_only_soundness(self):
        X, y, __ = make_regression(n=80, n_features=3, seed=4)
        rng = np.random.default_rng(1)
        y_radius = np.where(rng.random(len(y)) < 0.2, 0.8, 0.0)
        ds = UncertainDataset(
            Interval.exact(X), y, np.zeros_like(X, dtype=bool), y_radius=y_radius
        )
        model = ZorroTrainer(l2=0.5).fit(ds)
        assert model.theta_bounds().width.max() > 0
        for seed in range(15):
            labels = ds.sample_labels(seed)
            theta = ridge_solve((X - model.mean) / model.scale, labels, l2=0.5)
            assert model.theta.contains(theta, atol=1e-7)

    def test_more_label_noise_wider_enclosure(self):
        X, y, __ = make_regression(n=80, n_features=3, seed=5)
        cells = np.zeros_like(X, dtype=bool)

        def width(radius_value):
            ds = UncertainDataset(
                Interval.exact(X), y, cells,
                y_radius=np.full(len(y), radius_value),
            )
            return ZorroTrainer(l2=0.5).fit(ds).theta_bounds().width.max()

        assert width(0.5) < width(2.0)

    def test_zero_radius_matches_certain_model(self):
        X, y, __ = make_regression(n=60, n_features=3, seed=6)
        ds = UncertainDataset(
            Interval.exact(X), y, np.zeros_like(X, dtype=bool),
            y_radius=np.zeros(len(y)),
        )
        model = ZorroTrainer(l2=0.5).fit(ds)
        assert np.allclose(model.theta_bounds().width, 0.0)
