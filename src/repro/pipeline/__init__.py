"""ML-pipeline representation, provenance, and debugging (survey Section 2.2).

- :mod:`operators` / :mod:`execute`: the operator DAG and its provenance-
  tracking executor.
- :mod:`resilience`: fault-tolerant execution — per-operator error
  policies, retry/timeout guards, and the row-level :class:`Quarantine`.
- :mod:`plan`: query-plan rendering (``show_query_plan``).
- :mod:`datascope`: Shapley importance over pipelines via the KNN proxy.
- :mod:`canonical`: the Datascope canonical-pipeline compiler — classifies
  nodes as map/fork/join/estimator and emits per-source-row additive
  provenance polynomials for exact PTIME valuation
  (``datascope_importance(method="exact_knn")``).
- :mod:`inspections` / :mod:`screening`: mlinspect-style checks and
  ArgusEyes-style CI screening.
- :mod:`complaints`: Rain-style complaint-driven data debugging.
"""

from .canonical import (
    CanonicalCompileError,
    CanonicalPipeline,
    classify_nodes,
    compile_pipeline,
    infer_attribution_source,
)
from .complaints import Complaint, ComplaintResolution, resolve_complaint
from .datascope import ALLOWED_METHODS, SourceImportance, datascope_importance
from .drift import categorical_drift, drift_report, label_balance_shift, numeric_drift
from .execute import (
    PipelineResult,
    execute,
    execute_robust,
    incremental_append,
    with_provenance,
)
from .expectations import (
    Expectation,
    ExpectationResult,
    Schema,
    ValidationReport,
    expect_column_mean_between,
    expect_complete,
    expect_in_range,
    expect_in_set,
    expect_matches,
    expect_unique,
    infer_schema,
    run_expectations,
    validate_schema,
)
from .inspections import (
    Issue,
    feature_constant_screen,
    group_shrinkage,
    join_match_rate,
    label_error_screen,
    missing_value_report,
    train_test_overlap,
)
from .operators import (
    EncodeNode,
    FilterNode,
    JoinNode,
    MapNode,
    Node,
    PipelinePlan,
    ProjectNode,
    SourceNode,
)
from .plan import plan_summary, render_plan, show_query_plan
from .provenance import Provenance
from .resilience import (
    ErrorPolicy,
    ExecutionPolicy,
    OperatorError,
    OperatorTimeoutError,
    Quarantine,
    QuarantineRecord,
    TransientError,
)
from .screening import PipelineScreener, ScreeningReport
from .search import SearchDimension, SearchResult, greedy_search, grid_search
from .templates import letters_pipeline
from .whatif import WhatIfReport, WhatIfVariant, run_what_if

__all__ = [
    "CanonicalCompileError",
    "CanonicalPipeline",
    "classify_nodes",
    "compile_pipeline",
    "infer_attribution_source",
    "Complaint",
    "ComplaintResolution",
    "resolve_complaint",
    "ALLOWED_METHODS",
    "SourceImportance",
    "datascope_importance",
    "categorical_drift",
    "drift_report",
    "label_balance_shift",
    "numeric_drift",
    "PipelineResult",
    "execute",
    "execute_robust",
    "incremental_append",
    "with_provenance",
    "ErrorPolicy",
    "ExecutionPolicy",
    "OperatorError",
    "OperatorTimeoutError",
    "Quarantine",
    "QuarantineRecord",
    "TransientError",
    "Expectation",
    "ExpectationResult",
    "Schema",
    "ValidationReport",
    "expect_column_mean_between",
    "expect_complete",
    "expect_in_range",
    "expect_in_set",
    "expect_matches",
    "expect_unique",
    "infer_schema",
    "run_expectations",
    "validate_schema",
    "Issue",
    "feature_constant_screen",
    "group_shrinkage",
    "join_match_rate",
    "label_error_screen",
    "missing_value_report",
    "train_test_overlap",
    "EncodeNode",
    "FilterNode",
    "JoinNode",
    "MapNode",
    "Node",
    "PipelinePlan",
    "ProjectNode",
    "SourceNode",
    "plan_summary",
    "render_plan",
    "show_query_plan",
    "Provenance",
    "PipelineScreener",
    "ScreeningReport",
    "SearchDimension",
    "SearchResult",
    "greedy_search",
    "grid_search",
    "letters_pipeline",
    "WhatIfReport",
    "WhatIfVariant",
    "run_what_if",
]
