"""Zonotope abstraction for parameter vectors.

A zonotope represents a set of vectors ``{c + G·ε + β·δ : ε ∈ [−1,1]^g,
δ ∈ [−1,1]^d}`` — an affine image of a hypercube plus an axis-aligned box.
Compared to plain intervals, the generator matrix ``G`` preserves linear
correlations between coordinates across operations, which is the refinement
Zorro [93] uses to keep the reachable-model set tight through gradient
descent. The ``box`` term absorbs the nonlinear remainders soundly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .intervals import Interval

__all__ = ["Zonotope"]


class Zonotope:
    """Center + generators + box over-approximation of a vector set."""

    __slots__ = ("center", "generators", "box")

    def __init__(self, center: Any, generators: Any = None, box: Any = None) -> None:
        self.center = np.asarray(center, dtype=float).reshape(-1)
        d = len(self.center)
        if generators is None:
            self.generators = np.zeros((0, d))
        else:
            self.generators = np.asarray(generators, dtype=float).reshape(-1, d)
        if box is None:
            self.box = np.zeros(d)
        else:
            self.box = np.asarray(box, dtype=float).reshape(-1)
            if len(self.box) != d:
                raise ValueError("box radius length mismatch")
            if np.any(self.box < 0):
                raise ValueError("box radius must be non-negative")

    # ------------------------------------------------------------------
    @property
    def dim(self) -> int:
        return len(self.center)

    @property
    def n_generators(self) -> int:
        return len(self.generators)

    def radius(self) -> np.ndarray:
        """Per-coordinate half-width of the bounding interval."""
        return np.abs(self.generators).sum(axis=0) + self.box

    def bounds(self) -> Interval:
        r = self.radius()
        return Interval(self.center - r, self.center + r)

    def contains(self, value: Any, atol: float = 1e-9) -> bool:
        """Membership in the *bounding interval* (sound necessary check)."""
        return self.bounds().contains(value, atol=atol)

    # ------------------------------------------------------------------
    # Affine operations (exact on zonotopes)
    # ------------------------------------------------------------------
    def linear_map(self, matrix: Any) -> "Zonotope":
        """``M · z`` for a concrete matrix M — exact for zonotopes except the
        box term, which is mapped soundly via ``|M|``."""
        M = np.asarray(matrix, dtype=float)
        return Zonotope(
            M @ self.center,
            (M @ self.generators.T).T if self.n_generators else None,
            np.abs(M) @ self.box,
        )

    def add_vector(self, vector: Any) -> "Zonotope":
        return Zonotope(self.center + np.asarray(vector, float), self.generators, self.box)

    def add_box(self, radius: Any) -> "Zonotope":
        radius = np.broadcast_to(np.asarray(radius, float), self.center.shape)
        return Zonotope(self.center, self.generators, self.box + radius)

    def add(self, other: "Zonotope") -> "Zonotope":
        """Minkowski sum (independent noise symbols)."""
        gens = np.vstack([self.generators, other.generators])
        return Zonotope(self.center + other.center, gens, self.box + other.box)

    def scale(self, factor: float) -> "Zonotope":
        return Zonotope(
            factor * self.center, factor * self.generators, abs(factor) * self.box
        )

    # ------------------------------------------------------------------
    # Reduction and projection
    # ------------------------------------------------------------------
    def reduce(self, max_generators: int) -> "Zonotope":
        """Order reduction: fold the smallest generators into the box."""
        if self.n_generators <= max_generators:
            return self
        norms = np.abs(self.generators).sum(axis=1)
        order = np.argsort(norms)[::-1]
        keep = order[:max_generators]
        fold = order[max_generators:]
        extra_box = np.abs(self.generators[fold]).sum(axis=0)
        return Zonotope(self.center, self.generators[keep], self.box + extra_box)

    def project(self, direction: Any) -> Interval:
        """Range of ``⟨w, z⟩`` over the zonotope — exact (up to the box)."""
        w = np.asarray(direction, dtype=float).reshape(-1)
        mid = float(w @ self.center)
        half = float(np.abs(self.generators @ w).sum() + np.abs(w) @ self.box)
        return Interval(np.asarray(mid - half), np.asarray(mid + half))
