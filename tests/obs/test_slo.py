"""Per-tenant SLO tracking: ratios, quantiles, burn-rate alerts."""

from __future__ import annotations

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.slo import SLOPolicy, SLOTracker


def feed(tracker, tenant, n, state="completed", latency=0.1, **kw):
    for _ in range(n):
        tracker.observe(tenant=tenant, kind="valuation", state=state,
                        latency_s=latency, **kw)


class TestSnapshot:
    def test_counts_and_ratios(self):
        tracker = SLOTracker()
        feed(tracker, "acme", 8, "completed", latency=0.2)
        feed(tracker, "acme", 1, "degraded", latency=0.9,
             stop_reason="deadline")
        feed(tracker, "acme", 1, "failed", latency=None)
        snap = tracker.snapshot()["acme"]
        assert snap["jobs"] == 10
        assert snap["states"] == {"completed": 8, "degraded": 1, "failed": 1}
        assert snap["degraded_ratio"] == pytest.approx(0.1)
        assert snap["failure_ratio"] == pytest.approx(0.1)
        assert snap["deadline_hit_ratio"] == pytest.approx(0.1)
        assert snap["latency"]["valuation"]["count"] == 9

    def test_tenants_are_isolated(self):
        tracker = SLOTracker()
        feed(tracker, "a", 3)
        feed(tracker, "b", 1, "failed")
        assert tracker.tenants() == ["a", "b"]
        assert tracker.snapshot()["a"]["failure_ratio"] == 0.0
        assert tracker.snapshot()["b"]["failure_ratio"] == 1.0

    def test_rejected_counts_as_shed(self):
        tracker = SLOTracker()
        feed(tracker, "a", 1, "rejected", latency=None)
        assert tracker.snapshot()["a"]["shed_ratio"] == 1.0

    def test_observe_job_reads_job_shaped_objects(self):
        class Request:
            tenant, kind = "acme", "valuation"

        class State:
            value = "completed"

        class FakeJob:
            request = Request()
            state = State()
            latency_s = 0.25
            queue_wait_s = 0.05
            stop_reason = None

        tracker = SLOTracker()
        tracker.observe_job(FakeJob())
        snap = tracker.snapshot()["acme"]
        assert snap["jobs"] == 1
        assert snap["latency"]["valuation"]["p50_s"] == pytest.approx(0.25)


class TestQuantiles:
    def test_quantiles_for_bench_reporting(self):
        tracker = SLOTracker()
        for value in (0.1, 0.2, 0.3, 0.4, 0.5):
            tracker.observe("a", "valuation", "completed", latency_s=value)
        stats = tracker.quantiles("a", kind="valuation")
        assert stats["count"] == 5
        assert stats["p50_s"] == pytest.approx(0.3)
        assert stats["p99_s"] == pytest.approx(0.496)

    def test_unknown_tenant_quantiles_empty(self):
        stats = SLOTracker().quantiles("ghost")
        assert stats == {"p50_s": None, "p95_s": None, "p99_s": None,
                         "count": 0}


class TestBurnRateAlerts:
    def test_healthy_tenant_raises_nothing(self):
        tracker = SLOTracker()
        feed(tracker, "a", 20, "completed")
        assert tracker.alerts() == []

    def test_budget_burn_warns_then_pages(self):
        # 10% failures against a 99% objective = burn rate 10x > critical 6x.
        tracker = SLOTracker()
        feed(tracker, "a", 18, "completed")
        feed(tracker, "a", 2, "failed", latency=None)
        alerts = [a for a in tracker.alerts() if a.kind == "slo_burn"]
        assert len(alerts) == 1
        assert alerts[0].severity == "critical"
        assert alerts[0].node == "tenant:a"
        assert alerts[0].value == pytest.approx(0.1 / 0.01)

    def test_warn_between_thresholds(self):
        # 2% failures with a 99% objective = 2x burn: warn, not critical.
        policy = SLOPolicy(critical_burn_rate=6.0)
        tracker = SLOTracker(policy)
        feed(tracker, "a", 98, "completed")
        feed(tracker, "a", 2, "failed", latency=None)
        alerts = [a for a in tracker.alerts() if a.kind == "slo_burn"]
        assert [a.severity for a in alerts] == ["warn"]

    def test_too_few_jobs_suppresses_burn_alert(self):
        tracker = SLOTracker()
        feed(tracker, "a", 2, "failed", latency=None)
        assert tracker.alerts() == []

    def test_latency_objective_violation(self):
        policy = SLOPolicy(latency_objective_s=0.5)
        tracker = SLOTracker(policy)
        feed(tracker, "a", 10, "completed", latency=0.8)
        alerts = [a for a in tracker.alerts() if a.kind == "slo_latency"]
        assert len(alerts) == 1
        assert alerts[0].metric == "p95_s"
        assert alerts[0].column == "valuation"
        assert alerts[0].severity == "warn"
        # 2x the objective escalates to critical
        feed(tracker, "b", 10, "completed", latency=2.0)
        severities = {a.node: a.severity for a in tracker.alerts()}
        assert severities["tenant:b"] == "critical"

    def test_critical_alerts_sort_first(self):
        policy = SLOPolicy(latency_objective_s=0.5)
        tracker = SLOTracker(policy)
        feed(tracker, "warned", 10, "completed", latency=0.6)
        feed(tracker, "paged", 20, "failed", latency=None)
        severities = [a.severity for a in tracker.alerts()]
        assert severities == sorted(
            severities, key=lambda s: {"critical": 0, "warn": 1}[s]
        )


class TestMetricsSurface:
    def test_metrics_snapshot_has_labeled_series_without_tracing(self):
        assert not obs_trace.enabled()
        tracker = SLOTracker()
        feed(tracker, "acme", 3, "completed", latency=0.2, queue_wait_s=0.01)
        snap = tracker.metrics_snapshot()
        latency = snap["service.job.latency_s{kind=valuation,tenant=acme}"]
        assert latency["type"] == "histogram" and latency["count"] == 3
        assert latency["labels"] == {"tenant": "acme", "kind": "valuation"}
        terminal = snap["service.job.terminal{state=completed,tenant=acme}"]
        assert terminal["value"] == 3
        assert "service.job.queue_wait_s{tenant=acme}" in snap
        # the tracker is standalone: nothing leaked into the global registry
        assert "service.job.terminal{state=completed,tenant=acme}" not in (
            obs_metrics.snapshot()
        )

    def test_tracing_mirrors_into_global_registry(self):
        obs_trace.enable()
        tracker = SLOTracker()
        tracker.observe("acme", "valuation", "completed", latency_s=0.1)
        snap = obs_metrics.snapshot()
        assert snap["service.job.terminal{state=completed,tenant=acme}"][
            "value"
        ] == 1
        assert snap["service.job.latency_s{kind=valuation,tenant=acme}"][
            "count"
        ] == 1

    def test_to_dict_shape(self):
        tracker = SLOTracker()
        feed(tracker, "a", 1)
        payload = tracker.to_dict()
        assert set(payload) == {"policy", "tenants", "alerts"}
        assert payload["policy"]["success_objective"] == 0.99
        assert "a" in payload["tenants"]
