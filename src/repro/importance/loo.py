"""Leave-one-out (LOO) importance — the simplest data-importance score."""

from __future__ import annotations

import numpy as np

from .base import ImportanceResult
from .engine import DEFAULT_CACHE_SIZE, ValuationEngine
from .utility import Utility

__all__ = ["loo_importance"]


def loo_importance(
    utility: Utility | None,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    engine: ValuationEngine | None = None,
) -> ImportanceResult:
    """``φ_i = v(N) − v(N \\ {i})`` for every training point.

    Requires ``n + 1`` utility evaluations (model retrainings), which is
    exactly the cost profile the tutorial's "Overcoming Computational
    Challenges" section motivates improving on. The ``n`` leave-one-out
    retrainings are independent, so they fan out perfectly over the
    engine's ``n_workers`` processes.
    """
    if engine is None:
        if utility is None:
            raise ValueError("either utility or engine must be provided")
        engine = ValuationEngine(utility, n_workers=n_workers, cache_size=cache_size)
    n = engine.n_train
    everything = np.arange(n)
    full = engine.evaluate(everything)
    scores = engine.evaluate_many(
        [np.delete(everything, i) for i in range(n)]
    )
    return ImportanceResult(
        method="loo",
        values=full - scores,
        extras={"full_score": full, **engine.stats()},
    )
