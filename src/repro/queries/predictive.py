"""Predictive query processing (the fourth stage of the paper's Figure 1).

A *predictive query* consumes a trained model the way a SQL query consumes a
table: it applies the model to rows, post-processes the scores
(calibration, dictionary lookup), and aggregates per group —
``SELECT sector, AVG(P(positive)) FROM applicants GROUP BY sector``.
Data errors that survive training surface here as wrong *query answers*,
which is exactly the granularity at which users complain (Section 2.2's
complaint-driven debugging).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..frame import DataFrame
from ..learn.base import Estimator
from ..learn.calibration import PlattCalibrator

__all__ = ["PredictiveQuery", "QueryResult"]

_AGGREGATES = ("positive_rate", "mean_probability", "count_positive")


@dataclass
class QueryResult:
    """Grouped query answers plus per-row artefacts for debugging."""

    table: DataFrame
    predictions: np.ndarray
    probabilities: np.ndarray | None
    group_column: str
    aggregate: str

    def value_for(self, group: Any) -> float:
        for row in self.table.to_rows():
            if row[self.group_column] == group:
                return float(row[self.aggregate])
        raise KeyError(f"no group {group!r} in the query result")


@dataclass
class PredictiveQuery:
    """A grouped aggregate over model predictions.

    Parameters
    ----------
    model:
        Fitted classifier.
    featurize:
        Maps an input frame to the model's feature space.
    group_column:
        GROUP BY column.
    aggregate:
        ``"positive_rate"`` (share of rows predicted positive),
        ``"mean_probability"`` (average calibrated/raw positive probability),
        or ``"count_positive"``.
    positive:
        The positive class label.
    calibrator:
        Optional :class:`~repro.learn.calibration.PlattCalibrator` applied
        before probability aggregation (Figure 1's "calibration" box).
    decision_map:
        Optional dictionary-lookup applied to predicted labels before
        aggregation/reporting (Figure 1's "dictionary lookup" box), e.g.
        ``{"positive": "invite", "negative": "reject"}``.
    """

    model: Estimator
    featurize: Callable[[DataFrame], np.ndarray]
    group_column: str
    aggregate: str = "positive_rate"
    positive: Any = "positive"
    calibrator: PlattCalibrator | None = None
    decision_map: Mapping[Any, Any] | None = None

    def __post_init__(self) -> None:
        if self.aggregate not in _AGGREGATES:
            raise ValueError(
                f"unknown aggregate {self.aggregate!r}; have {_AGGREGATES}"
            )

    def _probabilities(self, X: np.ndarray) -> np.ndarray | None:
        if self.calibrator is not None:
            return self.calibrator.predict_proba(X)
        if hasattr(self.model, "predict_proba"):
            probs = self.model.predict_proba(X)
            classes = list(self.model.classes_)
            if self.positive in classes:
                return probs[:, classes.index(self.positive)]
        return None

    def run(self, frame: DataFrame) -> QueryResult:
        X = self.featurize(frame)
        predictions = self.model.predict(X)
        probabilities = self._probabilities(X)
        if self.aggregate == "mean_probability" and probabilities is None:
            raise ValueError("mean_probability needs predict_proba or a calibrator")

        groups = np.asarray(frame.column(self.group_column).to_list())
        rows = []
        for group in sorted(set(groups.tolist()), key=str):
            members = groups == group
            if self.aggregate == "positive_rate":
                value = float(np.mean(predictions[members] == self.positive))
            elif self.aggregate == "mean_probability":
                value = float(np.mean(probabilities[members]))
            else:  # count_positive
                value = int(np.sum(predictions[members] == self.positive))
            record = {self.group_column: group, self.aggregate: value,
                      "support": int(members.sum())}
            rows.append(record)
        table = DataFrame(
            {
                self.group_column: [r[self.group_column] for r in rows],
                self.aggregate: [r[self.aggregate] for r in rows],
                "support": [r["support"] for r in rows],
            }
        )
        if self.decision_map is not None:
            predictions = np.asarray(
                [self.decision_map.get(p, p) for p in predictions.tolist()]
            )
        return QueryResult(
            table=table,
            predictions=predictions,
            probabilities=probabilities,
            group_column=self.group_column,
            aggregate=self.aggregate,
        )
