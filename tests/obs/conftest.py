"""Observability is process-global state; leave none of it behind."""

import pytest

from repro.obs import atomicio as obs_atomicio
from repro.obs import flight as obs_flight
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def _clean():
    obs_trace.disable()
    obs_trace.get_recorder().reset()
    obs_metrics.registry().clear()
    recorder = obs_flight.flight_recorder()
    recorder.clear()
    recorder.dump_dir = None
    obs_atomicio.storage_alerts(clear=True)
    obs_atomicio.install_io_hooks(None)


@pytest.fixture(autouse=True)
def clean_observability():
    _clean()
    yield
    _clean()
