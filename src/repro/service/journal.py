"""Durable, crash-safe job journal (append-only JSONL).

The journal is the service's write-ahead log: every lifecycle edge of every
job — submission (with the full JSON request), admission, start, progress
watermarks, retries, and the terminal state — is appended *before* the
in-memory state moves on. Appends go through
:func:`repro.obs.atomicio.atomic_append_line` under the cross-process
advisory lock, so a SIGKILL at any instant leaves either the previous
journal or the previous journal plus one complete line — never a torn
record — and concurrent writers (a second runtime sharing the journal
directory) cannot interleave.

:meth:`JobJournal.replay` folds the event log into one
:class:`JournalEntry` per job. Entries whose last event is non-terminal are
exactly the jobs a restarted runtime must recover: their requests are
reconstructed from the submission record and re-enqueued, and their engine
checkpoints (keyed by the stable job id) take over from the last durable
watermark.

Records are schema-versioned and CRC-framed (:func:`repro.obs.atomicio.
frame_line`); loading is lenient but loud — unknown fields are ignored, v1
(un-framed) journals still load, and corrupt lines are quarantined to a
``<file>.corrupt`` sidecar with ``storage.*`` metrics and an alert instead
of being skipped silently.

Because appends are copy-on-write (O(file) each), an unbounded journal
degrades every subsequent append. :meth:`JobJournal.compact` bounds that:
it atomically rewrites the log with each *terminal* job collapsed to a
single summary record (non-terminal jobs keep their full event chains —
they are what recovery needs), and :meth:`maybe_compact` applies a
size/record-count trigger, which :meth:`repro.service.runtime.JobRuntime.
recover` invokes on every restart.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from ..obs.atomicio import (
    LoadReport,
    advisory_lock,
    atomic_append_line,
    atomic_writer,
    frame_line,
    read_jsonl,
)
from .job import TERMINAL_STATES, JobRequest, JobState

__all__ = ["JOURNAL_SCHEMA_VERSION", "JobJournal", "JournalEntry"]

#: Auto-compaction triggers (see :meth:`JobJournal.maybe_compact`): compact
#: when the journal holds more than this many records or bytes. ~512
#: events is roughly 80 jobs' worth of lifecycle edges.
COMPACT_MAX_EVENTS = 512
COMPACT_MAX_BYTES = 1 << 20

#: Bump when the event layout changes incompatibly; readers keep ignoring
#: unknown fields either way.
JOURNAL_SCHEMA_VERSION = 1

#: Events that carry a job's terminal state.
_TERMINAL_EVENTS = frozenset(state.value for state in TERMINAL_STATES)


@dataclass
class JournalEntry:
    """Folded view of one job after replaying its journal events."""

    job_id: str
    request: JobRequest | None = None
    state: str = JobState.SUBMITTED.value
    submitted_at: float = 0.0
    attempts: int = 0
    progress_completed: int = 0
    result_summary: dict[str, Any] = field(default_factory=dict)
    events: list[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_EVENTS

    @property
    def recoverable(self) -> bool:
        """In-flight at crash time with enough journaled state to rebuild."""
        return not self.terminal and self.request is not None


class JobJournal:
    """Append-only JSONL write-ahead log of job lifecycle events."""

    def __init__(self, path: Any) -> None:
        self.path = Path(path)
        #: Accounting for the most recent :meth:`events` load (quarantine
        #: counts, alerts); ``None`` until the first load.
        self.last_load_report: LoadReport | None = None

    # -- write -----------------------------------------------------------
    def record(
        self,
        event: str,
        job_id: str,
        payload: Mapping[str, Any] | None = None,
    ) -> None:
        """Durably append one CRC-framed event line (atomic + locked)."""
        line = frame_line(
            {
                "schema_version": JOURNAL_SCHEMA_VERSION,
                "ts": time.time(),
                "event": str(event),
                "job_id": str(job_id),
                "payload": dict(payload or {}),
            }
        )
        atomic_append_line(self.path, line)

    # -- read ------------------------------------------------------------
    def events(self) -> list[dict[str, Any]]:
        """Every valid event, in append order.

        Corrupt lines are quarantined to ``<path>.corrupt`` with metrics
        and an alert (see :attr:`last_load_report`); valid records that are
        not journal events (no ``event`` field) are ignored, matching the
        shared-file tolerance the journal has always had.
        """
        payloads, self.last_load_report = read_jsonl(
            self.path, artifact="journal"
        )
        return [
            payload
            for payload in payloads
            if isinstance(payload, dict) and payload.get("event")
        ]

    def replay(self) -> dict[str, JournalEntry]:
        """Fold the event log into the latest per-job state, in job order.

        The fold is tolerant by construction: events for jobs whose
        submission line is missing (pre-truncated journals) still produce
        an entry, just one that is not :attr:`~JournalEntry.recoverable`.
        """
        entries: dict[str, JournalEntry] = {}
        for record in self.events():
            job_id = str(record["job_id"])
            event = str(record["event"])
            payload = record.get("payload") or {}
            entry = entries.setdefault(job_id, JournalEntry(job_id=job_id))
            entry.events.append(event)
            if event == "submitted":
                try:
                    entry.request = JobRequest.from_dict(
                        payload.get("request", {})
                    )
                except (TypeError, ValueError):
                    entry.request = None
                entry.submitted_at = float(record.get("ts", 0.0))
            elif event == "started":
                entry.attempts = int(payload.get("attempt", entry.attempts)) + 1
                entry.state = JobState.RUNNING.value
            elif event == "progress":
                entry.progress_completed = int(
                    payload.get("completed", entry.progress_completed)
                )
            elif event == "queued":
                entry.state = JobState.QUEUED.value
            elif event in _TERMINAL_EVENTS:
                entry.state = event
                entry.result_summary = dict(payload)
            # "retrying", "deduplicated", "recovered", ... only append to
            # entry.events — the next started/terminal event carries state.
        return entries

    def in_flight(self) -> list[JournalEntry]:
        """Recoverable (accepted, non-terminal) jobs, in submission order."""
        return [
            entry for entry in self.replay().values() if entry.recoverable
        ]

    # -- compaction ------------------------------------------------------
    def compact(self) -> dict[str, Any]:
        """Atomically rewrite the journal with terminal jobs collapsed.

        Appends are copy-on-write — O(file) each — so an ever-growing
        journal makes every later append slower. Compaction rewrites the
        log under the cross-process advisory lock: each job that reached a
        terminal state is collapsed to one summary record carrying its
        folded result (``payload.compacted_events`` counts the collapsed
        lines); every record of a *non-terminal* job is kept verbatim, so
        :meth:`replay`/:meth:`in_flight` recover exactly the same jobs
        before and after. Returns the compaction stats.
        """
        stats = {
            "events_before": 0,
            "events_after": 0,
            "bytes_before": 0,
            "bytes_after": 0,
            "jobs_terminal": 0,
            "jobs_active": 0,
        }
        with advisory_lock(self.path):
            if not self.path.exists():
                return stats
            stats["bytes_before"] = self.path.stat().st_size
            records = self.events()
            stats["events_before"] = len(records)
            # Fold per job over the raw records (same logic as replay, but
            # we need the records grouped to rewrite non-terminal chains).
            by_job: dict[str, list[dict[str, Any]]] = {}
            for record in records:
                by_job.setdefault(str(record["job_id"]), []).append(record)
            entries = self.replay()
            lines: list[str] = []
            for job_id, job_records in by_job.items():
                if job_id == "-":
                    # Bookkeeping records (recovery audits) are not jobs:
                    # keep only the newest so restarts do not accumulate.
                    lines.append(frame_line(job_records[-1]))
                    continue
                entry = entries.get(job_id)
                if entry is not None and entry.terminal:
                    stats["jobs_terminal"] += 1
                    last = job_records[-1]
                    lines.append(
                        frame_line(
                            {
                                "schema_version": JOURNAL_SCHEMA_VERSION,
                                "ts": float(last.get("ts", 0.0)),
                                "event": entry.state,
                                "job_id": job_id,
                                "payload": {
                                    **entry.result_summary,
                                    "compacted_events": len(job_records),
                                },
                            }
                        )
                    )
                else:
                    stats["jobs_active"] += 1
                    lines.extend(frame_line(record) for record in job_records)
            stats["events_after"] = len(lines)
            with atomic_writer(self.path) as handle:
                for line in lines:
                    handle.write(line + "\n")
            stats["bytes_after"] = self.path.stat().st_size
        return stats

    def maybe_compact(
        self,
        max_events: int = COMPACT_MAX_EVENTS,
        max_bytes: int = COMPACT_MAX_BYTES,
    ) -> dict[str, Any] | None:
        """Run :meth:`compact` when the journal exceeds either trigger.

        The cheap size probe runs first so the common small-journal case
        costs one ``stat``; the record count is only taken when the byte
        bound passes. Returns the stats when compaction ran, else None.
        """
        if not self.path.exists():
            return None
        if self.path.stat().st_size <= max_bytes:
            if len(self.events()) <= max_events:
                return None
        return self.compact()

    def __len__(self) -> int:
        return len(self.events())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"JobJournal({str(self.path)!r}, events={len(self)})"
