"""Learning from imperfect data (paper Figure 4).

When cleaning is too costly, reason about uncertainty instead:

1. inject MNAR missing values into ``employer_rating`` at 5–25%,
2. lift the dataset to a symbolic (possible-worlds) encoding,
3. train the Zorro-style robust model over *all* possible worlds,
4. plot the maximum worst-case loss (the Figure 4 curve),
5. compare prediction ranges with an imputation baseline, and
6. check whether KNN predictions and linear models are *certain* —
   i.e. whether cleaning is even needed.

Run with:  python examples/uncertainty_zorro.py
"""

import numpy as np

import repro.core as nde
from repro.uncertainty import (
    ZorroTrainer,
    approximately_certain_model,
    certain_prediction_report,
    ridge_solve,
)

FEATURES = ["employer_rating", "age"]


def main() -> None:
    train_df, __, test_df = nde.load_recommendation_letters(n=400, seed=7)
    feature = "employer_rating"

    max_losses = {}
    for percentage in (5, 10, 15, 20, 25):
        X_train_symb = nde.encode_symbolic(
            train_df,
            uncertain_feature=feature,
            missing_percentage=percentage,
            missingness="MNAR",
            seed=1,
        )
        print(f"Evaluating {percentage}% of missing values in {feature}...")
        max_losses[percentage] = nde.estimate_with_zorro(X_train_symb, test_df)

    print()
    nde.visualize_uncertainty(max_losses, feature)

    # --- Prediction ranges vs an imputation baseline ------------------
    # (5% missing: enough uncertainty to see ranges, little enough that a
    # useful fraction of predictions is still certifiable)
    symbolic = nde.encode_symbolic(
        train_df, uncertain_feature=feature, missing_percentage=5, seed=1
    )
    robust = ZorroTrainer(l2=0.5).fit(symbolic)
    x_test = test_df.select(FEATURES).to_numpy()
    ranges = robust.predict_range(x_test[:5])
    certain, labels = robust.certified_predictions(x_test)

    world = symbolic.center_world()
    theta = ridge_solve((world - robust.mean) / robust.scale, symbolic.y, l2=0.5)
    print("\nprediction ranges for the first 5 test letters (±1 sentiment score):")
    for i in range(5):
        marker = "certified" if certain[i] else "UNCERTAIN"
        print(
            f"  test[{i}]: [{ranges.lo[i]:+.3f}, {ranges.hi[i]:+.3f}]  → {marker}"
        )
    print(
        f"\nZorro certifies {certain.mean():.0%} of test predictions; the "
        f"imputation baseline silently answers all of them."
    )

    # --- Do we even need to clean? ------------------------------------
    report = certain_prediction_report(symbolic, x_test[:40], k=3)
    print(
        f"KNN over incomplete data: {report.certain_fraction:.0%} of the first "
        f"40 test predictions are certain in every possible world."
    )
    verdict = approximately_certain_model(symbolic, l2=0.5, epsilon=0.05)
    print(
        f"approximately-certain model check: certain={verdict.certain} "
        f"(worst-case optimality gap ≤ {verdict.gap_bound:.4f})"
    )


if __name__ == "__main__":
    main()
