"""OpenMetrics / Prometheus text exposition for the metrics registry.

Zero-dependency renderer turning :func:`repro.obs.metrics.snapshot`-shaped
dicts into the `OpenMetrics text format
<https://prometheus.io/docs/specs/om/open_metrics_spec/>`_ that any
Prometheus-compatible scraper ingests:

- counters render as ``name_total`` samples with a ``# TYPE name counter``
  family line;
- gauges render verbatim;
- histograms render as summaries — ``{quantile="0.5"|"0.95"|"0.99"}``
  samples straight from the snapshot's p50/p95/p99 plus ``_count`` and
  ``_sum`` — because our windowed histograms carry quantiles, not
  cumulative buckets;
- labels are escaped per spec and the exposition always ends in ``# EOF``.

:func:`parse_openmetrics` is the matching minimal validating parser, used
by the test suite and the CI telemetry-smoke job to assert that whatever
``/metrics`` serves actually parses.
"""

from __future__ import annotations

import re
from typing import Any, Mapping

from . import metrics as _metrics

__all__ = [
    "CONTENT_TYPE",
    "sanitize_metric_name",
    "render_openmetrics",
    "parse_openmetrics",
]

#: The content type a compliant scraper negotiates for OpenMetrics 1.0.
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")

_SAMPLE_LINE = re.compile(
    # The label block admits quoted strings so a `}` inside a label value
    # does not terminate it early.
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r'(?:\{(?P<labels>(?:[^"}]|"(?:[^"\\]|\\.)*")*)\})?'
    r"\s+(?P<value>[^\s]+)(?:\s+[^\s]+)?$"
)

_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """Map a dotted internal name onto the OpenMetrics charset:
    ``engine.cache.hits`` → ``engine_cache_hits``."""
    cleaned = _NAME_OK.sub("_", name.replace(".", "_"))
    if not cleaned or cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned


def _escape_label_value(value: Any) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels: Mapping[str, Any] | None, extra: str = "") -> str:
    parts = [
        f'{sanitize_metric_name(str(k))}="{_escape_label_value(v)}"'
        for k, v in sorted((labels or {}).items())
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: Any) -> str:
    number = float(value)
    if number != number:  # NaN
        return "NaN"
    if number in (float("inf"), float("-inf")):
        return "+Inf" if number > 0 else "-Inf"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_openmetrics(
    snapshot: Mapping[str, Mapping[str, Any]] | None = None,
) -> str:
    """Render a registry snapshot (default: the live registry) as
    OpenMetrics text, terminated by the mandatory ``# EOF``."""
    if snapshot is None:
        snapshot = _metrics.snapshot()

    # Group series by family so each family gets exactly one TYPE line
    # even when many label sets share a name.
    families: dict[str, list[tuple[Mapping[str, Any], Mapping[str, Any]]]] = {}
    family_kind: dict[str, str] = {}
    for series in sorted(snapshot):
        snap = snapshot[series]
        name, parsed_labels = _metrics.split_series(series)
        labels = snap.get("labels") or parsed_labels
        family = sanitize_metric_name(name)
        kind = snap.get("type", "gauge")
        if family_kind.setdefault(family, kind) != kind:
            # Same sanitized family with conflicting kinds: keep the first,
            # skip the rest rather than emit an invalid exposition.
            continue
        families.setdefault(family, []).append((labels, snap))

    lines: list[str] = []
    for family, entries in families.items():
        kind = family_kind[family]
        if kind == "counter":
            lines.append(f"# TYPE {family} counter")
            for labels, snap in entries:
                lines.append(
                    f"{family}_total{_label_str(labels)} "
                    f"{_format_value(snap.get('value', 0.0))}"
                )
        elif kind == "histogram":
            lines.append(f"# TYPE {family} summary")
            for labels, snap in entries:
                quantiles = _histogram_quantiles(snap)
                for q_label, q_value in quantiles:
                    quantile_label = 'quantile="%s"' % q_label
                    lines.append(
                        f"{family}{_label_str(labels, quantile_label)} "
                        f"{_format_value(q_value)}"
                    )
                lines.append(
                    f"{family}_count{_label_str(labels)} "
                    f"{_format_value(snap.get('count', 0))}"
                )
                lines.append(
                    f"{family}_sum{_label_str(labels)} "
                    f"{_format_value(snap.get('sum', 0.0))}"
                )
        else:
            lines.append(f"# TYPE {family} gauge")
            for labels, snap in entries:
                lines.append(
                    f"{family}{_label_str(labels)} "
                    f"{_format_value(snap.get('value', 0.0))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def _histogram_quantiles(snap: Mapping[str, Any]) -> list[tuple[str, float]]:
    out: list[tuple[str, float]] = []
    recent = snap.get("recent")
    for q_label, key, q in (("0.5", "p50", 0.50), ("0.95", "p95", 0.95), ("0.99", "p99", 0.99)):
        value = snap.get(key)
        if value is None and recent:
            # Older snapshots (schema v1) carry only the window; recompute.
            ordered = sorted(float(v) for v in recent)
            position = q * (len(ordered) - 1)
            lower = int(position)
            upper = min(lower + 1, len(ordered) - 1)
            fraction = position - lower
            value = ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction
        if value is not None:
            out.append((q_label, float(value)))
    return out


def parse_openmetrics(text: str) -> dict[str, list[dict[str, Any]]]:
    """Minimal validating parser for the exposition format.

    Returns ``{sample_name: [{"labels": {...}, "value": float}, ...]}``.
    Raises :class:`ValueError` on malformed lines or a missing ``# EOF``
    terminator — strict enough that the CI smoke job catches a broken
    renderer, not a full OpenMetrics implementation.
    """
    samples: dict[str, list[dict[str, Any]]] = {}
    saw_eof = False
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if saw_eof:
            raise ValueError(f"content after # EOF: {line!r}")
        if line == "# EOF":
            saw_eof = True
            continue
        if line.startswith("#"):
            if not re.match(r"^# (TYPE|HELP|UNIT) [a-zA-Z_:][a-zA-Z0-9_:]* ", line + " "):
                raise ValueError(f"malformed comment line: {line!r}")
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"malformed sample line: {line!r}")
        labels = {
            key: value.encode().decode("unicode_escape")
            for key, value in _LABEL_PAIR.findall(match.group("labels") or "")
        }
        try:
            value = float(match.group("value").replace("+Inf", "inf").replace("-Inf", "-inf"))
        except ValueError as exc:
            raise ValueError(f"malformed sample value: {line!r}") from exc
        samples.setdefault(match.group("name"), []).append(
            {"labels": labels, "value": value}
        )
    if not saw_eof:
        raise ValueError("exposition does not end with # EOF")
    return samples
