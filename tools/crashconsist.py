#!/usr/bin/env python
"""Crash-consistency harness: kill writers at every storage fault point.

The durability contract (DESIGN.md §16) makes four promises about the
state plane — and this harness is the executable proof. For each artifact
(run ledger, job journal, valuation checkpoint) it spawns a subprocess
writer with :class:`repro.errors.chaos.DiskChaos` installed in
``crash_mode="exit"`` and sweeps the injected fault across every commit
ordinal and fault kind: the child hard-exits (``os._exit(71)``, no
unwinding — a ``kill -9`` at the exact instant before or after the
``os.replace`` that publishes a write) or suffers a short write (the disk
persists less than it acknowledged). The parent then verifies, per case:

1. **Loaders never raise.** Whatever the crash left behind, every
   validating loader returns records plus accounting — no exception.
2. **No acknowledged record is lost to a crash.** A writer that printed
   ``ACK i`` after its append returned must find record ``i`` after the
   kill — for *every* fault point. (Short writes are the exception by
   construction: storage acknowledged data it never persisted. Those
   records are *quarantined and counted*, never silently dropped.)
3. **Quarantine counts match injected faults.** Pure crashes leave zero
   torn records (atomicity); each short write leaves exactly one, and it
   lands in the ``.corrupt`` sidecar.
4. **Resumed valuations are bit-identical.** A valuation killed at any
   checkpoint-write fault point resumes — falling back through wave
   archives when the primary snapshot was torn — and produces values
   ``np.array_equal`` to a run that was never interrupted.

Run it standalone (CI's durability-smoke job does)::

    PYTHONPATH=src python tools/crashconsist.py --out benchmarks/results/crash_consistency.json

The audit JSON records every case (scenario, fault kind, op ordinal, what
fired, what was verified); a sample quarantine sidecar is copied next to
it as evidence. Exit code 0 iff every invariant held in every case.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import textwrap
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"
sys.path.insert(0, str(SRC))

import numpy as np  # noqa: E402

from repro.importance import CheckpointStore, SubsetUtility, ValuationEngine  # noqa: E402
from repro.obs.atomicio import quarantine_path_for, read_jsonl  # noqa: E402
from repro.obs.ledger import RunLedger  # noqa: E402
from repro.service import JobJournal  # noqa: E402

#: DiskChaos crash_mode="exit" hard-exit code — the parent's signal that
#: the injected fault actually fired (vs. the sweep running past the
#: writer's last commit ordinal).
CRASH_EXIT = 71

CRASH_KINDS = ("crash_before_rename", "crash_after_rename")

#: Valuation run shape for the checkpoint scenario: 30 permutations in
#: waves of 5 → 6 checkpoint saves, each one primary + one archive commit.
CK_PERMUTATIONS = 30
CK_SEED = 5
CK_CHECK_EVERY = 5

#: Commit ordinal of the *final* primary snapshot write (wave 6 of 6;
#: primaries land on even ordinals). A fault here is the only one later
#: waves cannot paper over, so the sweep always includes it — it is the
#: case that forces recovery to fall back to a wave archive.
CK_FINAL_PRIMARY_OP = 10

# Child writer scripts. The fault spec rides argv (argv[1]=kind,
# argv[2]=op ordinal, argv[3]=target path); repro is importable because
# the parent exports PYTHONPATH=src.
_CHILD_PRELUDE = """
import sys
from repro.errors.chaos import DiskChaos
from repro.obs.atomicio import install_io_hooks
install_io_hooks(
    DiskChaos(fault_at={int(sys.argv[2]): sys.argv[1]}, crash_mode="exit")
)
"""

LEDGER_CHILD = _CHILD_PRELUDE + """
from repro.obs.ledger import RunLedger
ledger = RunLedger(sys.argv[3])
for i in range(int(sys.argv[4])):
    ledger.record_event("valuation", config={"i": i}, run_id=f"run-{i}")
    print(f"ACK {i}", flush=True)
"""

JOURNAL_CHILD = _CHILD_PRELUDE + """
from repro.service import JobJournal
journal = JobJournal(sys.argv[3])
for i in range(int(sys.argv[4])):
    journal.record(
        "submitted", f"job-{i}", {"request": {"kind": "valuation"}}
    )
    print(f"ACK {i}", flush=True)
"""

CHECKPOINT_CHILD = _CHILD_PRELUDE + """
import numpy as np
from repro.importance import CheckpointStore, SubsetUtility, ValuationEngine

rng = np.random.default_rng(3)
w = rng.normal(size=10)

def func(indices):
    idx = np.asarray(indices, dtype=int)
    return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

engine = ValuationEngine(
    SubsetUtility(func, 10),
    checkpoint=CheckpointStore(sys.argv[3], keep_last=3),
    resume=True,
)
engine.run_permutations(
    int(sys.argv[4]), seed=int(sys.argv[5]), check_every=int(sys.argv[6])
)
print("DONE", flush=True)
"""


def _game(n: int = 10, seed: int = 3) -> SubsetUtility:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


def _run_child(script: str, *args) -> tuple[int, list[int]]:
    """Run one writer subprocess; return (exit_code, acked_ordinals)."""
    env = dict(os.environ, PYTHONPATH=str(SRC))
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script),
         *[str(a) for a in args]],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    acked = [
        int(line.split()[1])
        for line in proc.stdout.splitlines()
        if line.startswith("ACK ")
    ]
    return proc.returncode, acked


def _case(scenario: str, kind: str, op: int, fired: bool, **extra) -> dict:
    return {
        "scenario": scenario,
        "fault_kind": kind,
        "op_ordinal": op,
        "fault_fired": fired,
        **extra,
    }


def sweep_append_log(
    scenario: str,
    child: str,
    load,
    workdir: Path,
    n_records: int = 6,
    ops: range | list | None = None,
    kinds: tuple = CRASH_KINDS + ("short_write",),
) -> list[dict]:
    """Sweep fault points over an append-only JSONL writer (ledger/journal).

    ``load(path)`` must return ``(present_ordinals, LoadReport)`` without
    raising — invariant 1 is implicitly asserted by calling it on every
    post-crash state.
    """
    cases = []
    ops = list(ops if ops is not None else range(n_records))
    for kind in kinds:
        for op in ops:
            with tempfile.TemporaryDirectory(dir=workdir) as tmp:
                path = Path(tmp) / f"{scenario}.jsonl"
                code, acked = _run_child(
                    child, kind, op, path, n_records
                )
                fired = (
                    code == CRASH_EXIT
                    if kind in CRASH_KINDS
                    else op < n_records
                )
                present, report = load(path)
                failures = []
                if code not in (0, CRASH_EXIT):
                    failures.append(f"writer died unexpectedly (exit {code})")
                if kind in CRASH_KINDS:
                    lost = [i for i in acked if i not in present]
                    if lost:
                        failures.append(f"acked records lost: {lost}")
                    if report.n_quarantined != 0:
                        failures.append(
                            f"pure crash left {report.n_quarantined} torn "
                            "record(s)"
                        )
                else:  # short_write
                    expected_q = 1 if fired else 0
                    if report.n_quarantined != expected_q:
                        failures.append(
                            f"expected {expected_q} quarantined, got "
                            f"{report.n_quarantined}"
                        )
                    surviving = [i for i in range(n_records) if i != op]
                    lost = [
                        i for i in surviving if i in acked and i not in present
                    ]
                    if lost:
                        failures.append(
                            f"records lost beyond the faulted op: {lost}"
                        )
                    if fired and not quarantine_path_for(path).exists():
                        failures.append("no .corrupt sidecar for short write")
                cases.append(
                    _case(
                        scenario, kind, op, fired,
                        exit_code=code,
                        n_acked=len(acked),
                        n_loaded=report.n_loaded,
                        n_quarantined=report.n_quarantined,
                        failures=failures,
                    )
                )
    return cases


def _load_ledger(path: Path):
    ledger = RunLedger(path)
    records = ledger.load()
    return [r.config.get("i") for r in records], ledger.last_load_report


def _load_journal(path: Path):
    journal = JobJournal(path)
    events = journal.events()
    present = [
        int(e["job_id"].split("-", 1)[1])
        for e in events
        if e.get("event") == "submitted"
    ]
    journal.replay()  # must also never raise
    return present, journal.last_load_report


def sweep_checkpoint(
    workdir: Path,
    ops: range | list | None = None,
    kinds: tuple = CRASH_KINDS + ("short_write",),
) -> list[dict]:
    """Kill a valuation mid-checkpoint-write at each fault point; verify
    the resumed run is bit-identical to an uninterrupted reference."""
    reference = ValuationEngine(_game()).run_permutations(
        CK_PERMUTATIONS, seed=CK_SEED, check_every=CK_CHECK_EVERY
    )
    cases = []
    # 6 waves x (primary + archive) = 12 commits; sweep a prefix, plus
    # always the final primary write — the one fault later waves cannot
    # overwrite, so it exercises the archive-fallback path.
    ops = sorted(
        set(ops if ops is not None else range(12)) | {CK_FINAL_PRIMARY_OP}
    )
    for kind in kinds:
        for op in ops:
            with tempfile.TemporaryDirectory(dir=workdir) as tmp:
                ck = Path(tmp) / "ck.json"
                code, _ = _run_child(
                    CHECKPOINT_CHILD, kind, op, ck,
                    CK_PERMUTATIONS, CK_SEED, CK_CHECK_EVERY,
                )
                fired = code == CRASH_EXIT if kind in CRASH_KINDS else True
                failures = []
                if code not in (0, CRASH_EXIT):
                    failures.append(f"writer died unexpectedly (exit {code})")
                store = CheckpointStore(ck, keep_last=3)
                try:
                    store.load()  # invariant 1: loaders never raise...
                except Exception as exc:  # noqa: BLE001
                    # ...unless nothing valid was ever written (crash at
                    # the very first commit) — then None/raise is allowed
                    # only when no snapshot file exists at all.
                    if ck.exists():
                        failures.append(f"checkpoint load raised: {exc}")
                resume_store = CheckpointStore(ck, keep_last=3)
                resumed = ValuationEngine(
                    _game(), checkpoint=resume_store, resume=True
                ).run_permutations(
                    CK_PERMUTATIONS, seed=CK_SEED, check_every=CK_CHECK_EVERY
                )
                if not np.array_equal(resumed.values(), reference.values()):
                    failures.append(
                        "resumed values differ from uninterrupted reference"
                    )
                recovery = store.last_recovery or resume_store.last_recovery
                cases.append(
                    _case(
                        "checkpoint", kind, op, fired,
                        exit_code=code,
                        resumed_from=int(resumed.resumed_from or 0),
                        fallback=recovery is not None,
                        failures=failures,
                    )
                )
    return cases


def find_sample_sidecar(workdir: Path) -> Path | None:
    """Produce one representative ``.corrupt`` sidecar for the audit."""
    sample_dir = workdir / "sample"
    path = sample_dir / "sample.jsonl"
    from repro.obs.atomicio import atomic_append_line, frame_line

    atomic_append_line(path, frame_line({"i": 0}))
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"torn example":  \n')
    read_jsonl(path, artifact="sample")
    sidecar = quarantine_path_for(path)
    return sidecar if sidecar.exists() else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=None,
                        help="write the audit JSON (plus a sample .corrupt "
                             "sidecar) to this path")
    parser.add_argument("--scenarios", default="ledger,journal,checkpoint")
    parser.add_argument("--max-ops", type=int, default=6,
                        help="sweep fault ordinals 0..max-ops-1 per kind")
    args = parser.parse_args(argv)

    scenarios = [s.strip() for s in args.scenarios.split(",") if s.strip()]
    started = time.time()
    cases: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="crashconsist-") as tmp:
        workdir = Path(tmp)
        if "ledger" in scenarios:
            print(f"[crashconsist] sweeping ledger faults (ops 0..{args.max_ops - 1})")
            cases += sweep_append_log(
                "ledger", LEDGER_CHILD, _load_ledger, workdir,
                ops=range(args.max_ops),
            )
        if "journal" in scenarios:
            print(f"[crashconsist] sweeping journal faults (ops 0..{args.max_ops - 1})")
            cases += sweep_append_log(
                "journal", JOURNAL_CHILD, _load_journal, workdir,
                ops=range(args.max_ops),
            )
        if "checkpoint" in scenarios:
            print(f"[crashconsist] sweeping checkpoint faults (ops 0..{args.max_ops - 1})")
            cases += sweep_checkpoint(workdir, ops=range(args.max_ops))
        sidecar = find_sample_sidecar(workdir)
        sidecar_text = (
            sidecar.read_text(encoding="utf-8") if sidecar else None
        )

    failures = [c for c in cases if c["failures"]]
    audit = {
        "harness": "crashconsist",
        "elapsed_s": round(time.time() - started, 2),
        "n_cases": len(cases),
        "n_fired": sum(1 for c in cases if c["fault_fired"]),
        "n_failures": len(failures),
        "invariants": [
            "loaders never raise",
            "no acknowledged record lost to a crash",
            "quarantine counts match injected faults",
            "resumed valuations bit-identical",
        ],
        "cases": cases,
    }
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(audit, indent=2) + "\n")
        if sidecar_text is not None:
            sample = args.out.with_name("sample.jsonl.corrupt")
            sample.write_text(sidecar_text)
            print(f"[crashconsist] sample sidecar -> {sample}")
        print(f"[crashconsist] audit -> {args.out}")

    print(
        f"[crashconsist] {audit['n_cases']} cases, "
        f"{audit['n_fired']} faults fired, "
        f"{audit['n_failures']} invariant violations "
        f"in {audit['elapsed_s']}s"
    )
    for case in failures:
        print(f"  FAIL {case['scenario']}/{case['fault_kind']}"
              f"@{case['op_ordinal']}: {case['failures']}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
