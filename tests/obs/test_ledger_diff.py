"""Run ledger persistence and cross-run regression diffing.

The end-to-end class pins the PR's acceptance contract: two executions of
the same seeded pipeline produce ledger records whose diff carries zero
drift alerts, and injecting 20% missing values into one column on the
second run raises at least one per-node drift alert naming that column.
"""

import json

import numpy as np
import pytest

import repro.core as nde
from repro.errors import inject_missing
from repro.frame import DataFrame
from repro.importance.engine import ValuationEngine
from repro.importance.utility import SubsetUtility
from repro.learn import ColumnTransformer, StandardScaler
from repro.obs import tracing
from repro.obs.diff import (
    DriftThresholds,
    compare_runs,
    cramers_v,
    population_stability_index,
)
from repro.obs.ledger import LEDGER_SCHEMA_VERSION, RunLedger, RunRecord
from repro.pipeline import PipelinePlan, execute_robust


def build_pipeline(n: int = 120):
    frame = DataFrame(
        {
            "value": np.linspace(0.0, 1.0, n),
            "group": ["a" if i % 3 else "b" for i in range(n)],
            "label": ["pos" if i % 2 else "neg" for i in range(n)],
        }
    )
    plan = PipelinePlan()
    sink = (
        plan.source("t")
        .filter(lambda df: df["value"] <= 0.95, "value <= 0.95")
        .with_column("feat", lambda df: df["value"] * 2.0, "feat")
        .encode(
            ColumnTransformer([(StandardScaler(), ["feat"])]), label_column="label"
        )
    )
    return frame, sink


def record_monitored_run(ledger, frame, sink, run_id):
    monitor = nde.monitor()
    result = execute_robust(sink, {"t": frame}, monitor=monitor)
    return ledger.record_run(
        result,
        monitor=monitor,
        sources={"t": frame},
        config={"seed": 0},
        run_id=run_id,
    )


class TestLedger:
    def test_record_run_roundtrips_through_disk(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(40)
        record = record_monitored_run(ledger, frame, sink, "run-a")
        assert len(ledger) == 1
        loaded = ledger.get("run-a")
        assert loaded.kind == "pipeline"
        assert loaded.schema_version == LEDGER_SCHEMA_VERSION
        assert loaded.created_at > 0
        assert loaded.rows_out == record.rows_out
        assert loaded.dataset["t"]["n_rows"] == frame.num_rows
        profiles = loaded.node_profiles()
        assert sorted(p.node_kind for p in profiles.values()) == [
            "encode", "filter", "map", "source",
        ]

    def test_record_run_captures_trace_report(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(30)
        with tracing() as report:
            result = execute_robust(sink, {"t": frame}, monitor=True)
        ledger.record_run(result, report=report, run_id="traced")
        loaded = ledger.get("traced")
        assert "pipeline.execute" in loaded.trace["span_names"]
        assert loaded.wall_time_s == pytest.approx(report.total_duration())
        assert loaded.metrics["pipeline.runs"]["value"] == 1

    def test_load_skips_torn_and_unknown_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        ledger = RunLedger(path)
        ledger.record_event("cleaning", stats={"n_cleaned": 5}, run_id="ok")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"run_id": "torn", "kind": "pipe')  # torn write
            handle.write("\n\n")
            handle.write(json.dumps({"run_id": "future", "new_field": 1}) + "\n")
        records = ledger.load()
        assert [r.run_id for r in records] == ["ok", "future"]
        assert ledger.last(1)[0].run_id == "future"

    def test_get_unknown_run_raises(self, tmp_path):
        with pytest.raises(KeyError):
            RunLedger(tmp_path / "runs.jsonl").get("nope")


class TestLedgerHooks:
    def test_valuation_engine_records_event(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        weights = np.asarray([1.0, 2.0, 3.0])
        utility = SubsetUtility(
            lambda idx: float(weights[np.asarray(list(idx), dtype=np.int64)].sum())
            if len(list(idx))
            else 0.0,
            len(weights),
        )
        engine = ValuationEngine(utility, ledger=ledger)
        engine.run_permutations(n_permutations=8, seed=3)
        (record,) = ledger.load()
        assert record.kind == "valuation"
        assert record.config["n_permutations"] == 8
        assert record.stats["n_permutations_run"] == 8
        assert record.stats["evaluations"] > 0
        assert record.wall_time_s > 0

    def test_engine_without_ledger_writes_nothing(self, tmp_path):
        utility = SubsetUtility(lambda idx: float(len(list(idx))), 3)
        ValuationEngine(utility).run_permutations(n_permutations=4)
        assert not (tmp_path / "runs.jsonl").exists()


class TestDiffPrimitives:
    def test_psi_zero_for_identical_histograms(self):
        hist = {"edges": [0.0, 1.0, 2.0], "counts": [50, 50]}
        assert population_stability_index(hist, hist) == pytest.approx(0.0, abs=1e-9)

    def test_psi_detects_mass_shift_across_different_edges(self):
        # Same underlying range, different frozen edges: rebinning must not
        # invent drift — and a genuine shift must register.
        a = {"edges": [0.0, 0.5, 1.0], "counts": [50, 50]}
        a_other_edges = {"edges": [0.0, 0.25, 0.5, 0.75, 1.0], "counts": [25, 25, 25, 25]}
        assert population_stability_index(a, a_other_edges) == pytest.approx(
            0.0, abs=1e-6
        )
        shifted = {"edges": [0.0, 0.5, 1.0], "counts": [95, 5]}
        assert population_stability_index(a, shifted) > 0.2

    def test_psi_none_when_either_side_empty(self):
        hist = {"edges": [0.0, 1.0], "counts": [10]}
        assert population_stability_index(None, hist) is None
        assert population_stability_index(hist, {"edges": [0.0, 1.0], "counts": [0]}) is None

    def test_cramers_v_zero_for_same_mix_one_for_disjoint(self):
        same = cramers_v([["a", 50], ["b", 50]], 0, [["a", 25], ["b", 25]], 0)
        assert same == pytest.approx(0.0, abs=1e-9)
        disjoint = cramers_v([["a", 50]], 0, [["b", 50]], 0)
        assert disjoint == pytest.approx(1.0)


class TestEndToEndDrift:
    """The PR's pinned acceptance scenario."""

    def test_same_seeded_pipeline_twice_diffs_to_zero_alerts(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(120)
        record_monitored_run(ledger, frame, sink, "baseline")
        record_monitored_run(ledger, frame, sink, "candidate")
        run_a, run_b = ledger.last(2)
        diff = nde.compare_runs(run_a, run_b)
        assert not diff.has_drift
        assert diff.alerts == []
        assert all(node.score == pytest.approx(0.0) for node in diff.nodes.values())
        assert "no drift alerts" in diff.render()

    def test_injected_missingness_raises_alert_naming_the_column(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(120)
        record_monitored_run(ledger, frame, sink, "baseline")
        dirty, report = inject_missing(frame, "value", fraction=0.2, seed=1)
        assert report.column == "value"
        record_monitored_run(ledger, dirty, sink, "dirty")
        diff = nde.compare_runs(*ledger.last(2))
        assert diff.has_drift
        value_alerts = diff.alerts_for("value")
        assert value_alerts, f"expected an alert naming 'value', got {diff.alerts}"
        completeness = [a for a in value_alerts if a.kind == "completeness"]
        assert completeness
        assert completeness[0].severity == "critical"  # 0.2 drop >= 2 * 0.05
        assert "value" in completeness[0].message
        # The rendered diff surfaces the alert for humans too.
        assert "completeness" in diff.render()

    def test_drift_merges_into_error_report(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(100)
        record_monitored_run(ledger, frame, sink, "a")
        dirty, __ = inject_missing(frame, "value", fraction=0.3, seed=2)
        record_monitored_run(ledger, dirty, sink, "b")
        diff = nde.compare_runs(*ledger.last(2))
        report = diff.to_error_report()
        assert report.kind == "drift"
        assert report.column == "value"
        assert report.params["run_a"] == "a"
        assert report.params["n_alerts"] == len(diff.alerts)

    def test_row_count_regression_alerts(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(120)
        record_monitored_run(ledger, frame, sink, "full")
        half = frame.take(np.arange(60))
        record_monitored_run(ledger, half, sink, "half")
        diff = nde.compare_runs(*ledger.last(2))
        assert any(a.kind == "row_count" for a in diff.alerts)

    def test_thresholds_are_tunable(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(100)
        record_monitored_run(ledger, frame, sink, "a")
        dirty, __ = inject_missing(frame, "value", fraction=0.02, seed=3)
        record_monitored_run(ledger, dirty, sink, "b")
        run_a, run_b = ledger.last(2)
        lax = nde.compare_runs(run_a, run_b)  # 2% < default 5% threshold
        assert not [a for a in lax.alerts if a.kind == "completeness"]
        strict = compare_runs(
            run_a, run_b, thresholds=DriftThresholds(completeness_drop=0.01)
        )
        assert [a for a in strict.alerts if a.kind == "completeness"]

    def test_compare_runs_accepts_raw_ledger_dicts(self, tmp_path):
        ledger = RunLedger(tmp_path / "runs.jsonl")
        frame, sink = build_pipeline(60)
        record_monitored_run(ledger, frame, sink, "a")
        record_monitored_run(ledger, frame, sink, "b")
        from repro.obs.atomicio import unframe

        with open(ledger.path, "r", encoding="utf-8") as handle:
            raw = [unframe(json.loads(line))[0] for line in handle]
        diff = compare_runs(raw[0], raw[1])
        assert diff.run_a == "a" and diff.run_b == "b"
        assert not diff.has_drift


class TestFacade:
    def test_nde_exports_monitoring_surface(self):
        assert nde.RunLedger is RunLedger
        assert nde.compare_runs is compare_runs
        assert isinstance(nde.monitor(), nde.PipelineMonitor)
        assert isinstance(RunRecord(run_id="x"), nde.RunRecord)
