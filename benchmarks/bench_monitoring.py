"""Experiment T-mon — cost and non-perturbation of pipeline monitoring.

The per-node data-quality monitor (:mod:`repro.obs.quality`) streams
completeness/distinctness/moments/histograms for every column a node
emits. Its contract has two measurable halves, both pinned here:

- **never perturbs**: a monitored run must produce bit-identical encoded
  matrices, labels, and frames to an unmonitored run — the monitor only
  *observes* node outputs after each span closes;
- **cheap enough to leave on**: monitored wall-clock must stay within 15%
  of unmonitored on the Figure-3 letters pipeline (best-of-``REPEATS``
  runs, so scheduler noise does not fail CI).

Both runs are recorded into a :class:`repro.obs.RunLedger` whose JSONL file
lands in ``benchmarks/results/monitoring_ledger.jsonl`` (the CI artifact),
and the two records must diff to *zero* drift alerts — same data, same
pipeline, no false positives from timing jitter.
"""

import os
import time

import numpy as np

from repro.datasets import generate_hiring_data
from repro.obs import PipelineMonitor, RunLedger, compare_runs
from repro.pipeline import execute
from repro.pipeline.templates import letters_pipeline
from repro.viz import format_records

ROWS = int(os.environ.get("REPRO_BENCH_MONITOR_ROWS", "4000"))
REPEATS = int(os.environ.get("REPRO_BENCH_MONITOR_REPEATS", "5"))
MAX_OVERHEAD = 0.15


def _sources():
    data = generate_hiring_data(n=ROWS, seed=7)
    return {
        "train_df": data["letters"],
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }


def _timed_run(sink, sources, monitor=None):
    start = time.perf_counter()
    result = execute(sink, sources, monitor=monitor)
    return time.perf_counter() - start, result


def run_monitoring_bench(results_dir) -> dict:
    sources = _sources()
    __, sink = letters_pipeline(text_features=16)

    plain_walls, monitored_walls = [], []
    plain = monitored = None
    monitors = []
    for __rep in range(REPEATS):
        wall, plain = _timed_run(sink, sources)
        plain_walls.append(wall)
        monitor = PipelineMonitor()
        wall, monitored = _timed_run(sink, sources, monitor=monitor)
        monitored_walls.append(wall)
        monitors.append(monitor)

    # -- non-perturbation: monitoring must not change a single value ----
    assert np.array_equal(plain.X, monitored.X)
    assert np.array_equal(plain.y, monitored.y)
    assert plain.frame.num_rows == monitored.frame.num_rows
    for name in plain.frame.columns:
        assert plain.frame.column(name).to_list() == (
            monitored.frame.column(name).to_list()
        )

    # -- ledger artifact + zero-drift sanity ----------------------------
    ledger_path = results_dir / "monitoring_ledger.jsonl"
    ledger_path.unlink(missing_ok=True)
    ledger = RunLedger(ledger_path)
    for run_id, monitor in zip(("bench-a", "bench-b"), monitors[-2:]):
        ledger.record_run(
            monitored, monitor=monitor, sources=sources,
            config={"rows": ROWS}, run_id=run_id,
        )
    diff = compare_runs(*ledger.last(2))
    assert not diff.has_drift, f"same-data runs must not alert: {diff.alerts}"

    best_plain = min(plain_walls)
    best_monitored = min(monitored_walls)
    overhead = best_monitored / best_plain - 1.0
    profiles = monitors[-1].profiles()
    return {
        "rows": ROWS,
        "nodes_profiled": len(profiles),
        "columns_profiled": sum(len(p.columns) for p in profiles.values()),
        "plain_wall_s": round(best_plain, 4),
        "monitored_wall_s": round(best_monitored, 4),
        "overhead_fraction": round(overhead, 4),
        "drift_alerts_same_data": len(diff.alerts),
        "_overhead": overhead,
    }


def test_monitoring_overhead_under_15_percent(benchmark, write_report, results_dir):
    row = benchmark.pedantic(
        run_monitoring_bench, args=(results_dir,), rounds=1, iterations=1
    )
    overhead = row.pop("_overhead")
    write_report("monitoring_overhead", format_records([row]), records=row)
    assert (results_dir / "monitoring_ledger.jsonl").exists()
    assert overhead < MAX_OVERHEAD, (
        f"monitoring overhead {overhead:.1%} exceeds {MAX_OVERHEAD:.0%}"
    )
