"""Pipeline execution and provenance-correctness tests."""

import numpy as np
import pytest

from repro.frame import DataFrame
from repro.learn import ColumnTransformer, OneHotEncoder, StandardScaler
from repro.pipeline import PipelinePlan, execute, with_provenance


class TestBasicOperators:
    def test_source_provenance_is_row_ids(self):
        plan = PipelinePlan()
        src = plan.source("t")
        frame = DataFrame({"v": [1, 2, 3]}, row_ids=[10, 11, 12])
        result = execute(src, {"t": frame})
        assert result.frame.equals(frame)
        assert result.provenance.tuples == [
            frozenset({("t", 10)}),
            frozenset({("t", 11)}),
            frozenset({("t", 12)}),
        ]

    def test_missing_source_raises(self):
        plan = PipelinePlan()
        src = plan.source("t")
        with pytest.raises(KeyError):
            execute(src, {})

    def test_filter_narrows_provenance(self):
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["v"] > 1, "v > 1")
        frame = DataFrame({"v": [1, 2, 3]})
        result = execute(node, {"t": frame})
        assert result.frame["v"].to_list() == [2, 3]
        assert result.provenance.tuples == [
            frozenset({("t", 1)}),
            frozenset({("t", 2)}),
        ]

    def test_join_unions_provenance(self):
        plan = PipelinePlan()
        left = plan.source("l")
        right = plan.source("r")
        node = left.join(right, on="k")
        lf = DataFrame({"k": ["a", "b"]}, row_ids=[0, 1])
        rf = DataFrame({"k": ["a"], "w": [9]}, row_ids=[7])
        result = execute(node, {"l": lf, "r": rf})
        assert result.provenance.tuples[0] == frozenset({("l", 0), ("r", 7)})
        assert result.provenance.tuples[1] == frozenset({("l", 1)})  # unmatched

    def test_map_preserves_provenance(self):
        plan = PipelinePlan()
        node = plan.source("t").with_column("d", lambda df: df["v"] + 1)
        result = execute(node, {"t": DataFrame({"v": [1.0, 2.0]})})
        assert result.frame["d"].to_list() == [2.0, 3.0]
        assert len(result.provenance) == 2

    def test_project_selects_columns(self):
        plan = PipelinePlan()
        node = plan.source("t").project(["a"])
        result = execute(node, {"t": DataFrame({"a": [1], "b": [2]})})
        assert result.frame.columns == ["a"]

    def test_encode_produces_matrix_and_labels(self):
        plan = PipelinePlan()
        encoder = ColumnTransformer([(OneHotEncoder(), "c")])
        node = plan.source("t").encode(encoder, label_column="y")
        frame = DataFrame({"c": ["a", "b"], "y": ["p", "n"]})
        result = execute(node, {"t": frame})
        assert result.X.shape == (2, 2)
        assert result.y.tolist() == ["p", "n"]

    def test_diamond_pipeline_node_cache(self):
        """A source consumed by two joins is executed once."""
        plan = PipelinePlan()
        base = plan.source("b")
        side = plan.source("s")
        j1 = base.join(side, on="k")
        j2 = j1.join(side, on="k", suffix="_again")
        frame = DataFrame({"k": ["a"], "v": [1]})
        sidef = DataFrame({"k": ["a"], "w": [2]})
        result = execute(j2, {"b": frame, "s": sidef})
        assert result.frame.num_rows == 1


class TestEndToEnd:
    def test_figure3_pipeline_shapes(self, letters_pipeline, sources):
        __, sink = letters_pipeline
        result = execute(sink, sources)
        n_healthcare = result.frame.num_rows
        assert 0 < n_healthcare < sources["train_df"].num_rows
        assert result.X.shape[0] == n_healthcare
        assert len(result.provenance) == n_healthcare
        assert "has_twitter" in result.frame.columns

    def test_every_output_row_has_train_provenance(self, letters_pipeline, sources):
        __, sink = letters_pipeline
        result = execute(sink, sources)
        src_ids = result.provenance.source_row_ids("train_df")
        train_ids = set(sources["train_df"].row_ids.tolist())
        assert all(int(i) in train_ids for i in src_ids)

    def test_provenance_removal_equals_rerun(self, letters_pipeline, sources):
        """The core provenance guarantee: dropping source tuples via
        provenance equals re-running the whole pipeline on filtered input."""
        __, sink = letters_pipeline
        result = execute(sink, sources)
        victim_ids = result.provenance.source_row_ids("train_df")[:5]
        X_fast, y_fast = result.remove_source_rows("train_df", victim_ids)

        train = sources["train_df"]
        keep = ~np.isin(train.row_ids, victim_ids)
        rerun_sources = dict(sources)
        rerun_sources["train_df"] = train.filter(keep)
        rerun = execute(sink, rerun_sources, fit=False)
        assert np.allclose(X_fast, rerun.X)
        assert np.array_equal(y_fast, rerun.y)

    def test_fit_false_reuses_encoders(self, letters_pipeline, sources, valid_sources):
        __, sink = letters_pipeline
        train_result = execute(sink, sources, fit=True)
        valid_result = execute(sink, valid_sources, fit=False)
        assert valid_result.X.shape[1] == train_result.X.shape[1]

    def test_with_provenance_convenience(self, letters_pipeline, sources):
        __, sink = letters_pipeline
        X, y, prov, result = with_provenance(sink, sources)
        assert len(X) == len(y) == len(prov)

    def test_with_provenance_requires_encode(self, sources):
        plan = PipelinePlan()
        node = plan.source("train_df").filter(lambda df: df["age"] > 0, "age > 0")
        with pytest.raises(TypeError):
            with_provenance(node, sources)

    def test_outputs_of_inverse_of_source_ids(self, letters_pipeline, sources):
        __, sink = letters_pipeline
        result = execute(sink, sources)
        src_ids = result.provenance.source_row_ids("train_df")
        outputs = result.provenance.outputs_of("train_df", [int(src_ids[0])])
        assert 0 in outputs.tolist()
