"""Chaos fault injection for pipeline operators.

Where the rest of :mod:`repro.errors` corrupts *data* (cells of the source
tables), this module corrupts *execution*: a seeded :class:`ChaosMonkey`
wraps a pipeline plan and makes its operators misbehave at configurable
per-row rates —

- ``error_rate``: the operator raises on the row (a hard UDF crash);
- ``transient_rate``: the operator raises a retryable
  :class:`~repro.pipeline.resilience.TransientError` the first time it
  meets the row, then succeeds (flaky I/O);
- ``nan_rate``: the map output cell is silently replaced with NaN
  (numeric corruption that only surfaces at the encode boundary);
- ``type_rate``: the map output cell is silently replaced with a marker
  string (type corruption caught by the executor's cell-type guard);
- ``latency_rate``: evaluation of the row sleeps for ``latency`` seconds
  (a slow operator, caught by the wall-clock timeout guard).

Fault decisions are a pure function of ``(seed, operator index, row id)``,
so they are reproducible *and* independent of evaluation order: the same
rows fault whether the executor runs the operator vectorised or row-wise.
Every fault that actually fires is recorded in :attr:`ChaosMonkey.triggered`
as ground truth for tests and benchmarks — graceful degradation is proven
by checking the executor's quarantine against exactly this record.

Beyond operator faults, the monkey also injects *worker-level* faults into
the valuation engine's supervised fan-out (pass the monkey as
``ValuationEngine(chaos=...)``): a targeted chunk either **crashes** its
worker process (``os._exit``, an abnormal exit with no Python unwinding —
the moral equivalent of a segfault or OOM kill) or **hangs** it
(``time.sleep`` past the dispatcher's deadline). Worker faults fire only on
a chunk's *first* attempt, so the supervised retry succeeds and the run is
expected to complete — with :attr:`ChaosMonkey.triggered` again recording
exactly which chunks faulted (``node_kind="worker"``, ``row_id`` holding
the chunk sequence number).

Finally, :class:`DiskChaos` extends the same seeded-fault discipline to the
*storage* layer: it plugs into the :class:`repro.obs.atomicio.IOHooks`
call points of the atomic write protocol and injects short writes, ENOSPC,
EIO/lying fsync, and crash-before/after-rename faults at exact commit
ordinals — the fault model the crash-consistency harness
(``tools/crashconsist.py``) sweeps.
"""

from __future__ import annotations

import errno
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence, TextIO

import numpy as np

from ..frame import DataFrame
from ..obs.atomicio import IOHooks, SimulatedCrash
from ..pipeline.operators import (
    EncodeNode,
    FilterNode,
    JoinNode,
    MapNode,
    Node,
    PipelinePlan,
    ProjectNode,
    SourceNode,
)
from ..pipeline.resilience import TransientError

__all__ = [
    "ChaosError",
    "TransientChaosError",
    "InjectedFault",
    "ChaosMonkey",
    "DISK_FAULT_KINDS",
    "DiskChaos",
]

CORRUPT_MARKER = "#CHAOS-CORRUPT#"


class ChaosError(RuntimeError):
    """A hard operator failure injected by :class:`ChaosMonkey`."""


class TransientChaosError(TransientError):
    """An injected failure that succeeds when retried."""


@dataclass(frozen=True)
class InjectedFault:
    """Ground truth for one fault that fired during execution."""

    op_index: int  # position of the operator in the wrapped plan's topological order
    node_kind: str
    kind: str  # "error" | "transient" | "nan" | "type" | "latency"
    row_id: int  # stable row id of the affected row (base-table identity)


class ChaosMonkey:
    """Seeded operator-fault injector for pipeline plans.

    Parameters
    ----------
    seed:
        Determinism root: two monkeys with equal seeds and rates inject
        identical faults on identical plans and data.
    error_rate, transient_rate, nan_rate, type_rate, latency_rate:
        Per-row probabilities of each fault kind at each wrapped operator.
        At most one fault kind fires per (operator, row).
    latency:
        Sleep duration in seconds for latency faults.
    target_kinds:
        Which operator kinds get wrapped (corruption only applies to maps —
        filters have no output cells to corrupt).
    worker_crash_rate, worker_hang_rate:
        Per-chunk probabilities of killing (``os._exit``) or hanging
        (``time.sleep(hang_duration)``) the valuation worker that picks the
        chunk up. Seeded per chunk sequence number, independent of which
        worker runs it; fires only on the chunk's first attempt.
    hang_duration:
        Sleep duration for worker hang faults — pick it well past the
        dispatcher's chunk deadline so the hang is detected, not waited out.
    worker_crash_chunks, worker_hang_chunks:
        Explicit chunk sequence numbers to fault deterministically
        (overrides the rates for those chunks) — "crash on the Nth chunk".
    job_crash_rate, job_crash_jobs:
        *Job-level* faults for the service runtime
        (:class:`repro.service.JobRuntime` passes the monkey as
        ``chaos=``): the per-job probability that a job's handler raises a
        :class:`ChaosError` mid-execution, or explicit job sequence
        numbers to crash deterministically. Like worker faults, job
        crashes fire only on a job's first attempt, so the runtime's
        retry-with-backoff recovers and the run is expected to terminate.
    slow_tenants, tenant_delay_s:
        Tenants whose every job is slowed by ``tenant_delay_s`` seconds
        before the handler runs — the noisy-neighbor scenario fair-share
        scheduling must isolate.
    """

    def __init__(
        self,
        seed: int = 0,
        error_rate: float = 0.0,
        transient_rate: float = 0.0,
        nan_rate: float = 0.0,
        type_rate: float = 0.0,
        latency_rate: float = 0.0,
        latency: float = 0.05,
        target_kinds: Sequence[str] = ("map", "filter"),
        worker_crash_rate: float = 0.0,
        worker_hang_rate: float = 0.0,
        hang_duration: float = 30.0,
        worker_crash_chunks: Sequence[int] = (),
        worker_hang_chunks: Sequence[int] = (),
        job_crash_rate: float = 0.0,
        job_crash_jobs: Sequence[int] = (),
        slow_tenants: Sequence[str] = (),
        tenant_delay_s: float = 0.05,
    ) -> None:
        rates = {
            "error": float(error_rate),
            "transient": float(transient_rate),
            "nan": float(nan_rate),
            "type": float(type_rate),
            "latency": float(latency_rate),
        }
        if any(r < 0 for r in rates.values()) or sum(rates.values()) > 1.0:
            raise ValueError("fault rates must be non-negative and sum to <= 1")
        worker_rates = {
            "worker_crash": float(worker_crash_rate),
            "worker_hang": float(worker_hang_rate),
        }
        if any(r < 0 for r in worker_rates.values()) or sum(worker_rates.values()) > 1.0:
            raise ValueError(
                "worker fault rates must be non-negative and sum to <= 1"
            )
        overlap = set(worker_crash_chunks) & set(worker_hang_chunks)
        if overlap:
            raise ValueError(
                f"chunks {sorted(overlap)} listed for both crash and hang"
            )
        if not 0.0 <= float(job_crash_rate) <= 1.0:
            raise ValueError("job_crash_rate must be within [0, 1]")
        self.seed = int(seed)
        self.rates = rates
        self.latency = float(latency)
        self.target_kinds = tuple(target_kinds)
        self.worker_rates = worker_rates
        self.hang_duration = float(hang_duration)
        self.worker_crash_chunks = frozenset(int(c) for c in worker_crash_chunks)
        self.worker_hang_chunks = frozenset(int(c) for c in worker_hang_chunks)
        self.job_crash_rate = float(job_crash_rate)
        self.job_crash_jobs = frozenset(int(j) for j in job_crash_jobs)
        self.slow_tenants = frozenset(str(t) for t in slow_tenants)
        self.tenant_delay_s = float(tenant_delay_s)
        self.triggered: list[InjectedFault] = []
        self._transient_seen: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Deterministic per-row decisions
    # ------------------------------------------------------------------
    def decide(self, op_index: int, row_id: int) -> str | None:
        """Fault kind for one (operator, row), or None. Pure and seeded."""
        rng = np.random.default_rng([self.seed, op_index, int(row_id)])
        draw = rng.random()
        cumulative = 0.0
        for kind, rate in self.rates.items():
            cumulative += rate
            if draw < cumulative:
                return kind
        return None

    def planned_faults(self, op_index: int, row_ids: Any) -> dict[str, list[int]]:
        """Expected faults for an operator over the given row ids."""
        out: dict[str, list[int]] = {}
        for rid in np.asarray(row_ids).tolist():
            kind = self.decide(op_index, rid)
            if kind is not None:
                out.setdefault(kind, []).append(int(rid))
        return out

    def triggered_row_ids(self, kinds: Sequence[str] | None = None) -> set[int]:
        """Row ids of faults that actually fired (optionally by kind)."""
        wanted = set(kinds) if kinds is not None else None
        return {
            f.row_id
            for f in self.triggered
            if wanted is None or f.kind in wanted
        }

    def reset(self) -> None:
        """Clear the trigger record and transient-failure memory."""
        self.triggered.clear()
        self._transient_seen.clear()

    # ------------------------------------------------------------------
    # Worker-level faults (valuation engine supervision)
    # ------------------------------------------------------------------
    def worker_fault(self, chunk_ord: int, attempt: int) -> str | None:
        """Fault kind for one dispatched chunk, or None. Pure and seeded.

        Faults fire only on ``attempt == 0``: a re-queued chunk must
        succeed, so supervised recovery — not an infinite crash loop — is
        what chaos runs exercise.
        """
        if attempt != 0:
            return None
        chunk_ord = int(chunk_ord)
        if chunk_ord in self.worker_crash_chunks:
            return "worker_crash"
        if chunk_ord in self.worker_hang_chunks:
            return "worker_hang"
        if not any(self.worker_rates.values()):
            return None
        # A distinct stream from operator faults: 7919 keys the worker
        # domain so adding worker rates never perturbs operator decisions.
        rng = np.random.default_rng([self.seed, 7919, chunk_ord])
        draw = rng.random()
        cumulative = 0.0
        for kind, rate in self.worker_rates.items():
            cumulative += rate
            if draw < cumulative:
                return kind
        return None

    def apply_worker_fault(self, chunk_ord: int, attempt: int) -> None:
        """Execute the planned fault *inside a worker process*, if any.

        A crash is ``os._exit`` — no exception, no unwinding, the pipe just
        goes dead, which is exactly what the dispatcher must detect. The
        trigger record cannot be updated here (this process is about to
        die, and its memory is not the driver's); the engine records fired
        worker faults driver-side via :meth:`record_worker_fault` when the
        dispatcher reports the failure.
        """
        kind = self.worker_fault(chunk_ord, attempt)
        if kind == "worker_crash":
            os._exit(66)
        elif kind == "worker_hang":
            time.sleep(self.hang_duration)

    def record_worker_fault(self, kind: str, chunk_ord: int) -> None:
        """Driver-side ground-truth record of a fired worker fault."""
        self._record(-1, "worker", kind, int(chunk_ord))

    def planned_worker_faults(self, n_chunks: int) -> dict[str, list[int]]:
        """Expected worker faults over the first ``n_chunks`` chunk ords."""
        out: dict[str, list[int]] = {}
        for chunk_ord in range(int(n_chunks)):
            kind = self.worker_fault(chunk_ord, 0)
            if kind is not None:
                out.setdefault(kind, []).append(chunk_ord)
        return out

    # ------------------------------------------------------------------
    # Job-level faults (service runtime)
    # ------------------------------------------------------------------
    def job_fault(self, job_ord: int, attempt: int) -> str | None:
        """Fault kind for one service job, or None. Pure and seeded.

        Like worker faults, job crashes fire only on ``attempt == 0`` so
        the runtime's retry budget — not an unrecoverable crash loop — is
        what chaos runs exercise.
        """
        if attempt != 0:
            return None
        job_ord = int(job_ord)
        if job_ord in self.job_crash_jobs:
            return "job_crash"
        if not self.job_crash_rate:
            return None
        # 104729 keys the job domain: adding job rates never perturbs
        # operator or worker fault decisions drawn from the same seed.
        rng = np.random.default_rng([self.seed, 104729, job_ord])
        return "job_crash" if rng.random() < self.job_crash_rate else None

    def apply_job_fault(
        self, job_ord: int, attempt: int, tenant: str | None = None
    ) -> None:
        """Execute planned job faults inside a handler (driver-side).

        Slow-tenant delay applies on *every* attempt (the neighbor stays
        noisy); a planned crash raises :class:`ChaosError` on the first
        attempt only. Both are recorded in :attr:`triggered` with
        ``node_kind="job"`` and ``row_id`` holding the job sequence number.
        """
        if tenant is not None and tenant in self.slow_tenants:
            self._record(-1, "job", "slow_tenant", int(job_ord))
            time.sleep(self.tenant_delay_s)
        if self.job_fault(job_ord, attempt) == "job_crash":
            self._record(-1, "job", "job_crash", int(job_ord))
            raise ChaosError(f"injected crash for service job #{int(job_ord)}")

    def planned_job_faults(self, n_jobs: int) -> dict[str, list[int]]:
        """Expected job crashes over the first ``n_jobs`` job ords."""
        out: dict[str, list[int]] = {}
        for job_ord in range(int(n_jobs)):
            kind = self.job_fault(job_ord, 0)
            if kind is not None:
                out.setdefault(kind, []).append(job_ord)
        return out

    # ------------------------------------------------------------------
    # Fault application
    # ------------------------------------------------------------------
    def _record(self, op_index: int, node_kind: str, kind: str, row_id: int) -> None:
        self.triggered.append(
            InjectedFault(
                op_index=op_index, node_kind=node_kind, kind=kind, row_id=int(row_id)
            )
        )

    def _pre_faults(
        self, op_index: int, node_kind: str, frame: DataFrame
    ) -> dict[int, str]:
        """Apply latency/raise faults for a frame; return per-position kinds.

        Called before the wrapped callable computes anything. Raises for
        error/transient rows — in a vectorised call that poisons the whole
        evaluation (forcing the executor's row-wise fallback), in a one-row
        call it pinpoints the row.
        """
        decisions = {
            pos: kind
            for pos, rid in enumerate(frame.row_ids.tolist())
            if (kind := self.decide(op_index, rid)) is not None
        }
        for pos, kind in decisions.items():
            if kind == "latency":
                rid = int(frame.row_ids[pos])
                self._record(op_index, node_kind, "latency", rid)
                time.sleep(self.latency)
        transient_rows = [
            int(frame.row_ids[pos])
            for pos, kind in decisions.items()
            if kind == "transient"
            and (op_index, int(frame.row_ids[pos])) not in self._transient_seen
        ]
        if transient_rows:
            for rid in transient_rows:
                self._transient_seen.add((op_index, rid))
                self._record(op_index, node_kind, "transient", rid)
            raise TransientChaosError(
                f"injected transient fault for rows {transient_rows}"
            )
        error_rows = [
            int(frame.row_ids[pos])
            for pos, kind in decisions.items()
            if kind == "error"
        ]
        if error_rows:
            for rid in error_rows:
                self._record(op_index, node_kind, "error", rid)
            raise ChaosError(f"injected operator fault for rows {error_rows}")
        return decisions

    def _wrap_map(self, node: MapNode, op_index: int) -> Callable:
        inner = node.func

        def chaotic(frame: DataFrame) -> Any:
            decisions = self._pre_faults(op_index, "map", frame)
            result = inner(frame)
            corrupt = {
                pos: kind
                for pos, kind in decisions.items()
                if kind in ("nan", "type")
            }
            if not corrupt:
                return result
            if hasattr(result, "to_list"):
                cells = list(result.to_list())
            else:
                cells = list(np.asarray(result).tolist())
            for pos, kind in corrupt.items():
                rid = int(frame.row_ids[pos])
                self._record(op_index, "map", kind, rid)
                cells[pos] = float("nan") if kind == "nan" else CORRUPT_MARKER
            return cells

        return chaotic

    def _wrap_filter(self, node: FilterNode, op_index: int) -> Callable:
        inner = node.predicate

        def chaotic(frame: DataFrame) -> Any:
            self._pre_faults(op_index, "filter", frame)
            return inner(frame)

        return chaotic

    # ------------------------------------------------------------------
    # Plan wrapping
    # ------------------------------------------------------------------
    def wrap(self, sink: Node) -> Node:
        """Clone the plan ending at ``sink`` with chaos-wrapped operators.

        The original plan is left untouched; the clone shares (stateful)
        feature encoders with the original, so use a freshly built pipeline
        when comparing fitted encoders across chaotic and clean runs.
        """
        plan = PipelinePlan()
        mapping: dict[int, Node] = {}
        for op_index, node in enumerate(sink.plan.topological_order(sink)):
            if isinstance(node, SourceNode):
                clone: Node = plan.source(node.name)
            elif isinstance(node, JoinNode):
                clone = mapping[node.inputs[0].id].join(
                    mapping[node.inputs[1].id],
                    on=node.on,
                    how=node.how,
                    fuzzy=node.fuzzy,
                    suffix=node.suffix,
                )
            elif isinstance(node, FilterNode):
                predicate = (
                    self._wrap_filter(node, op_index)
                    if "filter" in self.target_kinds
                    else node.predicate
                )
                clone = mapping[node.inputs[0].id].filter(
                    predicate, f"chaos({node.description})"
                )
            elif isinstance(node, MapNode):
                func = (
                    self._wrap_map(node, op_index)
                    if "map" in self.target_kinds
                    else node.func
                )
                clone = mapping[node.inputs[0].id].with_column(
                    node.name, func, f"chaos({node.description})"
                )
            elif isinstance(node, ProjectNode):
                clone = mapping[node.inputs[0].id].project(node.columns)
            elif isinstance(node, EncodeNode):
                clone = mapping[node.inputs[0].id].encode(
                    node.encoder, node.label_column
                )
            else:  # pragma: no cover - defensive
                raise TypeError(f"cannot wrap node type: {type(node).__name__}")
            mapping[node.id] = clone
        return mapping[sink.id]


# ---------------------------------------------------------------------- #
# storage-layer chaos (atomic write protocol fault injection)            #
# ---------------------------------------------------------------------- #

#: Fault kinds :class:`DiskChaos` can fire, at the commit stage each hits:
#: ``short_write``/``enospc`` at :meth:`~repro.obs.atomicio.IOHooks.
#: on_commit`, ``eio_fsync``/``lying_fsync`` at ``on_fsync``, and the two
#: crash kinds around ``os.replace``.
DISK_FAULT_KINDS = (
    "short_write",
    "enospc",
    "eio_fsync",
    "lying_fsync",
    "crash_before_rename",
    "crash_after_rename",
)


class DiskChaos(IOHooks):
    """Seeded storage-fault injector for the atomic write protocol.

    Install with :func:`repro.obs.atomicio.io_hooks` (scoped) or
    :func:`~repro.obs.atomicio.install_io_hooks`; every
    :func:`~repro.obs.atomicio.atomic_writer` commit then counts as one
    *op* and may fault:

    - ``short_write`` — the staged file is truncated by
      ``short_write_bytes`` before fsync, so the rename publishes a torn
      last record (what a real partial write leaves after power loss);
    - ``enospc`` — ``on_commit`` raises ``OSError(ENOSPC)``; the write
      aborts and the target is untouched;
    - ``eio_fsync`` — ``on_fsync`` raises ``OSError(EIO)`` (dying disk);
    - ``lying_fsync`` — the real fsync is *skipped* but the write
      continues (firmware that acknowledges flushes it never performed);
    - ``crash_before_rename`` / ``crash_after_rename`` — the process dies
      at the exact instant around ``os.replace``: either
      :class:`~repro.obs.atomicio.SimulatedCrash` is raised
      (``crash_mode="raise"``, for in-process tests — it derives from
      ``BaseException`` so production handlers cannot absorb it) or the
      process hard-exits with code 71 (``crash_mode="exit"``, for
      subprocess harnesses; no unwinding, like a ``kill -9``).

    Fault decisions are a pure function of ``(seed, op ordinal)`` — domain
    prime 27644437 keeps them independent of the operator/worker/job fault
    streams — or explicit via ``fault_at={op_ord: kind}``, which is how
    the crash-consistency harness sweeps every fault point one run at a
    time. Ops on ``.corrupt`` / ``.lock`` / staging sidecars are never
    counted or faulted (quarantine and recovery must be able to proceed
    under chaos); ``only`` restricts faulting to paths containing a
    substring. Fired faults land in :attr:`triggered` with
    ``node_kind="disk"`` and ``row_id`` holding the op ordinal.
    """

    def __init__(
        self,
        seed: int = 0,
        short_write_rate: float = 0.0,
        enospc_rate: float = 0.0,
        eio_fsync_rate: float = 0.0,
        lying_fsync_rate: float = 0.0,
        crash_before_rename_rate: float = 0.0,
        crash_after_rename_rate: float = 0.0,
        fault_at: Mapping[int, str] | None = None,
        crash_mode: str = "raise",
        short_write_bytes: int = 12,
        only: str | None = None,
    ) -> None:
        rates = {
            "short_write": float(short_write_rate),
            "enospc": float(enospc_rate),
            "eio_fsync": float(eio_fsync_rate),
            "lying_fsync": float(lying_fsync_rate),
            "crash_before_rename": float(crash_before_rename_rate),
            "crash_after_rename": float(crash_after_rename_rate),
        }
        if any(r < 0 for r in rates.values()) or sum(rates.values()) > 1.0:
            raise ValueError(
                "disk fault rates must be non-negative and sum to <= 1"
            )
        if crash_mode not in ("raise", "exit"):
            raise ValueError("crash_mode must be 'raise' or 'exit'")
        bad_kinds = set((fault_at or {}).values()) - set(DISK_FAULT_KINDS)
        if bad_kinds:
            raise ValueError(f"unknown disk fault kinds: {sorted(bad_kinds)}")
        self.seed = int(seed)
        self.disk_rates = rates
        self.fault_at = {int(k): str(v) for k, v in (fault_at or {}).items()}
        self.crash_mode = crash_mode
        self.short_write_bytes = int(short_write_bytes)
        self.only = only
        self.triggered: list[InjectedFault] = []
        self.n_ops = 0
        self._lock = threading.Lock()
        self._pending: tuple[int, str] | None = None

    # -- decisions -------------------------------------------------------
    def disk_fault(self, op_ord: int) -> str | None:
        """Fault kind for one commit ordinal, or None. Pure and seeded."""
        op_ord = int(op_ord)
        if op_ord in self.fault_at:
            return self.fault_at[op_ord]
        if not any(self.disk_rates.values()):
            return None
        # 27644437 keys the disk domain: adding storage rates never
        # perturbs operator, worker, or job fault decisions.
        rng = np.random.default_rng([self.seed, 27644437, op_ord])
        draw = rng.random()
        cumulative = 0.0
        for kind, rate in self.disk_rates.items():
            cumulative += rate
            if draw < cumulative:
                return kind
        return None

    def planned_disk_faults(self, n_ops: int) -> dict[str, list[int]]:
        """Expected disk faults over the first ``n_ops`` commit ordinals."""
        out: dict[str, list[int]] = {}
        for op_ord in range(int(n_ops)):
            kind = self.disk_fault(op_ord)
            if kind is not None:
                out.setdefault(kind, []).append(op_ord)
        return out

    def reset(self) -> None:
        """Clear the trigger record and the op-ordinal counter."""
        with self._lock:
            self.triggered.clear()
            self.n_ops = 0
            self._pending = None

    # -- internals -------------------------------------------------------
    def _targets(self, path: Path) -> bool:
        name = Path(path).name
        if name.endswith((".corrupt", ".lock", ".tmp")):
            return False
        return self.only is None or self.only in str(path)

    def _record_disk(self, op_ord: int, kind: str) -> None:
        self.triggered.append(
            InjectedFault(
                op_index=op_ord, node_kind="disk", kind=kind, row_id=op_ord
            )
        )

    def _crash(self, kind: str, path: Path) -> None:
        if self.crash_mode == "exit":
            os._exit(71)
        raise SimulatedCrash(f"injected {kind} for {path}")

    # -- IOHooks call points ---------------------------------------------
    def on_commit(self, path: Path, handle: TextIO) -> None:
        if not self._targets(path):
            return
        with self._lock:
            op_ord = self.n_ops
            self.n_ops += 1
            kind = self.disk_fault(op_ord)
            self._pending = (op_ord, kind) if kind is not None else None
        if kind == "short_write":
            with self._lock:
                self._pending = None
                self._record_disk(op_ord, kind)
            handle.flush()
            size = os.fstat(handle.fileno()).st_size
            os.ftruncate(
                handle.fileno(), max(0, size - self.short_write_bytes)
            )
        elif kind == "enospc":
            with self._lock:
                self._pending = None
                self._record_disk(op_ord, kind)
            raise OSError(
                errno.ENOSPC, "injected ENOSPC (no space left)", str(path)
            )

    def on_fsync(self, path: Path, fileno: int) -> bool:
        with self._lock:
            if self._pending is None:
                return True
            op_ord, kind = self._pending
            if kind not in ("eio_fsync", "lying_fsync"):
                return True
            self._pending = None
            self._record_disk(op_ord, kind)
        if kind == "eio_fsync":
            raise OSError(errno.EIO, "injected EIO on fsync", str(path))
        return False  # lying_fsync: report success, flush nothing

    def on_replace(self, tmp: str, path: Path, when: str) -> None:
        with self._lock:
            if self._pending is None:
                return
            op_ord, kind = self._pending
            if kind != f"crash_{when}_rename":
                return
            self._pending = None
            self._record_disk(op_ord, kind)
        self._crash(kind, path)

    def on_dirsync(self, dirpath: Path) -> bool:
        with self._lock:
            self._pending = None  # op completed; nothing left to fire
        return True
