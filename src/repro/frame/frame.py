"""A column-oriented DataFrame with stable row identity.

This is the relational substrate for the whole library. It deliberately
mimics the small subset of the pandas API that real-world ML preprocessing
pipelines use (selection, filtering, joins, group-by, column assignment), as
surveyed in the tutorial's Section 2.2, while adding one feature pandas does
not have: every row carries a **stable row id** (:attr:`DataFrame.row_ids`)
that survives filtering, sorting, and joining. Those ids are what the
provenance machinery in :mod:`repro.pipeline` tracks back to source tuples.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .column import Column

__all__ = ["DataFrame"]


def _as_column(values: Any) -> Column:
    return values.copy() if isinstance(values, Column) else Column(values)


def _normalise_key(value: Any) -> Any:
    """Canonical form used by fuzzy joins: case/whitespace-insensitive."""
    if isinstance(value, str):
        return " ".join(value.strip().lower().split())
    return value


def _deletion_variants(text: str) -> set[str]:
    """The string plus every single-character deletion of it.

    Two strings within one edit (insert/delete/substitute/adjacent swap)
    share at least one deletion variant — the SymSpell indexing trick that
    makes edit-distance-1 joins linear instead of quadratic.
    """
    return {text} | {text[:i] + text[i + 1 :] for i in range(len(text))}


class DataFrame:
    """An ordered collection of equally-long named :class:`Column` objects.

    Parameters
    ----------
    data:
        Mapping from column name to array-like / :class:`Column`.
    row_ids:
        Optional stable identifiers (one per row). Defaults to ``0..n-1``.
        Row ids identify *source tuples* for provenance purposes: two frames
        derived from the same source share ids for the surviving rows.
    """

    def __init__(self, data: Mapping[str, Any], row_ids: Any = None) -> None:
        self._columns: dict[str, Column] = {}
        length: int | None = None
        for name, values in data.items():
            col = _as_column(values)
            if length is None:
                length = len(col)
            elif len(col) != length:
                raise ValueError(
                    f"column {name!r} has length {len(col)}, expected {length}"
                )
            self._columns[str(name)] = col
        if length is None:
            length = 0
        if row_ids is None:
            self.row_ids = np.arange(length, dtype=np.int64)
        else:
            self.row_ids = np.asarray(row_ids, dtype=np.int64).copy()
            if len(self.row_ids) != length:
                raise ValueError("row_ids length does not match data")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return len(self.row_ids)

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from ..viz.table import format_table

        return format_table(self, max_rows=10)

    def column(self, name: str) -> Column:
        if name not in self._columns:
            raise KeyError(f"no such column: {name!r}; have {self.columns}")
        return self._columns[name]

    def __getitem__(self, key: Any):
        """Column by name, projection by name list, or filter by bool mask."""
        if isinstance(key, str):
            return self.column(key)
        if isinstance(key, (list, tuple)) and all(isinstance(k, str) for k in key):
            return self.select(list(key))
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return self.filter(key)
        raise TypeError(f"unsupported DataFrame index: {type(key).__name__}")

    def __setitem__(self, name: str, values: Any) -> None:
        col = _as_column(values)
        if self._columns and len(col) != self.num_rows:
            raise ValueError(
                f"column {name!r} has length {len(col)}, expected {self.num_rows}"
            )
        if not self._columns:
            self.row_ids = np.arange(len(col), dtype=np.int64)
        self._columns[str(name)] = col

    # ------------------------------------------------------------------
    # Copying and equality
    # ------------------------------------------------------------------
    def copy(self) -> "DataFrame":
        return DataFrame(
            {name: col.copy() for name, col in self._columns.items()},
            row_ids=self.row_ids,
        )

    def equals(self, other: "DataFrame") -> bool:
        if not isinstance(other, DataFrame):
            return False
        if self.columns != other.columns or self.num_rows != other.num_rows:
            return False
        for name in self.columns:
            a, b = self._columns[name], other._columns[name]
            if not np.array_equal(a.mask, b.mask):
                return False
            present = ~a.mask
            if a.dtype_kind != b.dtype_kind:
                return False
            if a.dtype_kind == "float":
                if not np.allclose(
                    a.values[present].astype(float),
                    b.values[present].astype(float),
                    equal_nan=True,
                ):
                    return False
            elif not np.array_equal(a.values[present], b.values[present]):
                return False
        return True

    # ------------------------------------------------------------------
    # Row selection
    # ------------------------------------------------------------------
    def take(self, indices: Any) -> "DataFrame":
        """Rows at the given *positions* (not row ids)."""
        idx = np.asarray(indices, dtype=np.int64)
        return DataFrame(
            {name: col.take(idx) for name, col in self._columns.items()},
            row_ids=self.row_ids[idx],
        )

    def filter(self, keep: Any) -> "DataFrame":
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self.num_rows,):
            raise ValueError(
                f"filter mask shape {keep.shape} != ({self.num_rows},)"
            )
        return self.take(np.flatnonzero(keep))

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, self.num_rows)))

    def sample(self, n: int, rng: np.random.Generator | int | None = None) -> "DataFrame":
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        idx = rng.choice(self.num_rows, size=min(n, self.num_rows), replace=False)
        return self.take(np.sort(idx))

    def sort_values(self, by: str, ascending: bool = True) -> "DataFrame":
        col = self.column(by)
        order = np.argsort(col.values, kind="stable")
        # Missing cells sort last regardless of direction.
        order = np.concatenate([order[~col.mask[order]], order[col.mask[order]]])
        if not ascending:
            present = order[~col.mask[order]]
            missing = order[col.mask[order]]
            order = np.concatenate([present[::-1], missing])
        return self.take(order)

    def positions_of(self, row_ids: Iterable[int]) -> np.ndarray:
        """Positions of the given stable row ids (raises if any is absent)."""
        lookup = {rid: pos for pos, rid in enumerate(self.row_ids.tolist())}
        out = []
        for rid in row_ids:
            if int(rid) not in lookup:
                raise KeyError(f"row id {rid} not present in frame")
            out.append(lookup[int(rid)])
        return np.asarray(out, dtype=np.int64)

    # ------------------------------------------------------------------
    # Column manipulation
    # ------------------------------------------------------------------
    def select(self, names: Sequence[str]) -> "DataFrame":
        return DataFrame(
            {name: self.column(name).copy() for name in names}, row_ids=self.row_ids
        )

    def drop(self, names: str | Sequence[str]) -> "DataFrame":
        dropped = {names} if isinstance(names, str) else set(names)
        unknown = dropped - set(self._columns)
        if unknown:
            raise KeyError(f"cannot drop unknown columns: {sorted(unknown)}")
        return self.select([c for c in self.columns if c not in dropped])

    def rename(self, mapping: Mapping[str, str]) -> "DataFrame":
        return DataFrame(
            {mapping.get(name, name): col.copy() for name, col in self._columns.items()},
            row_ids=self.row_ids,
        )

    def assign(self, **columns: Any) -> "DataFrame":
        out = self.copy()
        for name, values in columns.items():
            out[name] = values
        return out

    def map_column(self, name: str, func: Callable[[Any], Any], into: str | None = None) -> "DataFrame":
        """Apply a UDF to one column; result stored under ``into`` (or in place)."""
        out = self.copy()
        out[into or name] = self.column(name).map(func)
        return out

    # ------------------------------------------------------------------
    # Row mutation (used by cleaning oracles)
    # ------------------------------------------------------------------
    def set_rows(self, positions: Any, replacement: "DataFrame") -> "DataFrame":
        """Return a copy with rows at ``positions`` replaced.

        ``replacement`` must have the same columns and one row per position.
        Row ids at the replaced positions are preserved: cleaning a tuple
        does not change its identity.
        """
        pos = np.asarray(positions, dtype=np.int64)
        if replacement.num_rows != len(pos):
            raise ValueError(
                f"{len(pos)} positions but replacement has {replacement.num_rows} rows"
            )
        if set(replacement.columns) != set(self.columns):
            raise ValueError("replacement columns do not match")
        out = self.copy()
        for name in self.columns:
            rep = replacement.column(name)
            col = out.column(name).set_values(pos, rep.values)
            # Re-apply missingness from the replacement rows.
            missing_pos = pos[rep.mask]
            if len(missing_pos):
                col = col.set_missing(missing_pos)
            out._columns[name] = col
        return out

    def set_cell(self, position: int, name: str, value: Any) -> "DataFrame":
        out = self.copy()
        out._columns[name] = out.column(name).set_values([position], [value])
        return out

    # ------------------------------------------------------------------
    # Relational operators
    # ------------------------------------------------------------------
    def join(
        self,
        other: "DataFrame",
        on: str,
        how: str = "left",
        suffix: str = "_right",
        fuzzy: bool | str = False,
        return_indices: bool = False,
    ):
        """Join on an equality key, keeping the *left* frame's row ids.

        Left/inner joins where the right side is a key-unique dimension table
        are the shape that dominates real ML preprocessing pipelines (side
        tables joined onto training data). Each output row descends from
        exactly one left row, so left row ids remain valid provenance.

        Parameters
        ----------
        on:
            Key column present in both frames.
        how:
            ``"left"`` (unmatched left rows survive with missing right cells)
            or ``"inner"``.
        fuzzy:
            ``False`` — exact keys only. ``True`` or ``"normalize"`` — match
            string keys case- and whitespace-insensitively. ``"edit"`` —
            additionally tolerate one edit (insertion, deletion,
            substitution, or adjacent transposition) per key, the typo
            family :func:`repro.errors.inject_typos` produces; exact
            normalised matches always win over edit-distance ones.
        return_indices:
            Also return ``(left_positions, right_positions)`` arrays, with
            ``-1`` marking unmatched right positions. Used by the provenance
            tracker.
        """
        if how not in ("left", "inner"):
            raise ValueError(f"unsupported join type: {how!r}")
        if fuzzy not in (False, True, "normalize", "edit"):
            raise ValueError(f"unsupported fuzzy mode: {fuzzy!r}")
        edit_tolerant = fuzzy == "edit"
        left_key = self.column(on)
        right_key = other.column(on)

        def canon(value: Any) -> Any:
            return _normalise_key(value) if fuzzy else value

        right_index: dict[Any, int] = {}
        variant_index: dict[str, int] = {}
        for pos in range(other.num_rows):
            if right_key.mask[pos]:
                continue
            raw = right_key.values[pos]
            key = canon(raw.item() if right_key.values.dtype.kind != "U" else str(raw))
            if key not in right_index:  # first match wins (dimension table)
                right_index[key] = pos
                if edit_tolerant and isinstance(key, str):
                    for variant in _deletion_variants(key):
                        variant_index.setdefault(variant, pos)

        left_positions: list[int] = []
        right_positions: list[int] = []
        for pos in range(self.num_rows):
            if left_key.mask[pos]:
                match = -1
            else:
                raw = left_key.values[pos]
                key = canon(raw.item() if left_key.values.dtype.kind != "U" else str(raw))
                match = right_index.get(key, -1)
                if match == -1 and edit_tolerant and isinstance(key, str):
                    for variant in _deletion_variants(key):
                        if variant in variant_index:
                            match = variant_index[variant]
                            break
            if match == -1 and how == "inner":
                continue
            left_positions.append(pos)
            right_positions.append(match)

        lpos = np.asarray(left_positions, dtype=np.int64)
        rpos = np.asarray(right_positions, dtype=np.int64)

        data: dict[str, Column] = {
            name: col.take(lpos) for name, col in self._columns.items()
        }
        for name, col in other._columns.items():
            if name == on:
                continue
            out_name = name if name not in data else f"{name}{suffix}"
            if other.num_rows == 0:
                # No partner rows exist at all: every cell is missing.
                fill = "" if col.dtype_kind == "string" else 0
                taken = Column(
                    np.full(len(lpos), fill, dtype=col.values.dtype),
                    mask=np.ones(len(lpos), dtype=bool),
                )
            else:
                matched = rpos.copy()
                matched[matched < 0] = 0  # placeholder; masked below
                taken = col.take(matched)
                taken.mask[rpos < 0] = True
            data[out_name] = taken
        joined = DataFrame(data, row_ids=self.row_ids[lpos])
        if return_indices:
            return joined, lpos, rpos
        return joined

    @staticmethod
    def concat_rows(frames: Sequence["DataFrame"]) -> "DataFrame":
        """Stack frames vertically; all must share the same columns."""
        frames = list(frames)
        if not frames:
            raise ValueError("cannot concatenate zero frames")
        names = frames[0].columns
        for frame in frames[1:]:
            if frame.columns != names:
                raise ValueError("frames have mismatching columns")
        data = {
            name: Column.concat([f.column(name) for f in frames]) for name in names
        }
        row_ids = np.concatenate([f.row_ids for f in frames])
        return DataFrame(data, row_ids=row_ids)

    def groupby(self, by: str | Sequence[str]) -> "GroupBy":
        keys = [by] if isinstance(by, str) else list(by)
        return GroupBy(self, keys)

    # ------------------------------------------------------------------
    # Deduplication and summary
    # ------------------------------------------------------------------
    def duplicate_mask(self, subset: Sequence[str] | None = None) -> np.ndarray:
        """True for every row that repeats an earlier row (on ``subset``).

        The first occurrence of each value combination is not marked, so
        ``filter(~mask)`` keeps exactly one representative per group — the
        repair for the duplicate-row error family in :mod:`repro.errors`.
        """
        names = list(subset) if subset is not None else self.columns
        lists = {name: self.column(name).to_list() for name in names}
        seen: set[tuple] = set()
        mask = np.zeros(self.num_rows, dtype=bool)
        for position in range(self.num_rows):
            key = tuple(lists[name][position] for name in names)
            if key in seen:
                mask[position] = True
            else:
                seen.add(key)
        return mask

    def drop_duplicates(self, subset: Sequence[str] | None = None) -> "DataFrame":
        """Keep the first occurrence of each value combination."""
        return self.filter(~self.duplicate_mask(subset))

    def describe(self) -> "DataFrame":
        """Per-column summary: kind, missing count, and basic statistics."""
        records: dict[str, list] = {
            "column": [], "kind": [], "missing": [], "unique": [],
            "mean": [], "std": [], "min": [], "max": [],
        }
        for name, col in self._columns.items():
            records["column"].append(name)
            records["kind"].append(col.dtype_kind)
            records["missing"].append(col.null_count())
            records["unique"].append(len(col.unique()))
            if col.is_numeric:
                records["mean"].append(col.mean())
                records["std"].append(col.std())
                records["min"].append(float(col.min()) if col.min() is not None else None)
                records["max"].append(float(col.max()) if col.max() is not None else None)
            else:
                records["mean"].append(None)
                records["std"].append(None)
                records["min"].append(None)
                records["max"].append(None)
        return DataFrame(records)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_rows(self) -> list[dict[str, Any]]:
        lists = {name: col.to_list() for name, col in self._columns.items()}
        return [
            {name: lists[name][i] for name in self.columns}
            for i in range(self.num_rows)
        ]

    def iterrows(self):
        for pos, row in enumerate(self.to_rows()):
            yield pos, row

    def to_numpy(self, columns: Sequence[str] | None = None) -> np.ndarray:
        """Dense float matrix of the given (numeric) columns."""
        names = list(columns) if columns is not None else [
            c for c in self.columns if self.column(c).is_numeric
        ]
        if not names:
            return np.empty((self.num_rows, 0), dtype=float)
        mats = []
        for name in names:
            col = self.column(name)
            if not col.is_numeric:
                raise TypeError(f"column {name!r} is not numeric")
            mats.append(col.to_numpy(fill=np.nan).astype(float))
        return np.column_stack(mats)

    def null_counts(self) -> dict[str, int]:
        return {name: col.null_count() for name, col in self._columns.items()}


class GroupBy:
    """Deferred group-by produced by :meth:`DataFrame.groupby`."""

    _AGGREGATORS: dict[str, Callable[[Column], Any]] = {
        "mean": lambda c: c.mean(),
        "sum": lambda c: c.sum(),
        "min": lambda c: c.min(),
        "max": lambda c: c.max(),
        "median": lambda c: c.median(),
        "std": lambda c: c.std(),
        "count": lambda c: len(c) - c.null_count(),
        "nunique": lambda c: len(c.unique()),
        "mode": lambda c: c.mode(),
    }

    def __init__(self, frame: DataFrame, keys: list[str]) -> None:
        self._frame = frame
        self._keys = keys
        for key in keys:
            frame.column(key)  # validate

    def groups(self) -> dict[tuple, np.ndarray]:
        """Mapping from key tuple to member row positions."""
        key_lists = [self._frame.column(k).to_list() for k in self._keys]
        out: dict[tuple, list[int]] = {}
        for pos in range(self._frame.num_rows):
            key = tuple(key_list[pos] for key_list in key_lists)
            out.setdefault(key, []).append(pos)
        return {k: np.asarray(v, dtype=np.int64) for k, v in out.items()}

    def size(self) -> DataFrame:
        groups = self.groups()
        data: dict[str, list] = {k: [] for k in self._keys}
        sizes = []
        for key, positions in sorted(groups.items(), key=lambda kv: str(kv[0])):
            for name, part in zip(self._keys, key):
                data[name].append(part)
            sizes.append(len(positions))
        data["size"] = sizes
        return DataFrame(data)

    def agg(self, spec: Mapping[str, str]) -> DataFrame:
        """Aggregate columns; ``spec`` maps column name to aggregator name."""
        for name, agg in spec.items():
            self._frame.column(name)
            if agg not in self._AGGREGATORS:
                raise ValueError(
                    f"unknown aggregator {agg!r}; have {sorted(self._AGGREGATORS)}"
                )
        groups = self.groups()
        data: dict[str, list] = {k: [] for k in self._keys}
        for name, agg in spec.items():
            data[f"{name}_{agg}"] = []
        for key, positions in sorted(groups.items(), key=lambda kv: str(kv[0])):
            for name, part in zip(self._keys, key):
                data[name].append(part)
            member = self._frame.take(positions)
            for name, agg in spec.items():
                value = self._AGGREGATORS[agg](member.column(name))
                data[f"{name}_{agg}"].append(value)
        return DataFrame(data)
