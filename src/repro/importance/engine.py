"""Shared parallel Monte-Carlo valuation engine.

Every game-theoretic importance estimator in this package (`shapley_mc`,
`banzhaf_mc`, `beta_shapley_mc`, `loo_importance`) reduces to the same
primitive: evaluate a utility ``v(S)`` over many training subsets and
combine the results. Doing that in private serial loops — the pre-engine
state of this package — recomputes identical subsets across permutations
*and* across estimators, and never uses more than one core. Following the
amortization insight of the Datascope line of work (Karlaš et al.), this
module centralises the primitive:

memoized utility cache
    ``v(S)`` is cached under the *sorted* index tuple in an LRU-bounded
    :class:`SubsetCache` with hit/miss/eviction counters. ``v(∅)``, ``v(N)``
    and every repeated subset are evaluated once per engine, even when
    several estimators share one :class:`ValuationEngine`.

supervised process fan-out
    Permutations (or subsets) are partitioned into chunks dispatched across
    ``n_workers`` forked worker processes by a
    :class:`~repro.importance.supervision.ChunkDispatcher`. The dispatcher
    detects worker *crashes* (abnormal exit) and *hangs* (per-chunk
    deadlines derived from observed chunk-latency quantiles), restarts dead
    workers, and re-queues their unfinished chunks. Because every chunk is
    a slice of pre-drawn orderings, re-execution is deterministic, and
    results are merged **in chunk order** — so the floating-point
    accumulation sequence, and therefore the returned values, is
    bit-identical for any worker count and any crash/retry history.

deterministic seeding
    All permutation orderings are pre-drawn in the driver from the single
    ``np.random.default_rng(seed)`` stream (the same stream the legacy
    serial estimators consumed), instead of per-worker spawned substreams.
    This is strictly stronger than substream seeding: the sampled orderings
    match the pre-engine implementations bit-for-bit *and* are independent
    of how they are later sharded across workers.

checkpoint / resume
    With ``checkpoint=`` set, the engine snapshots its accumulator state —
    per-row sums and sums of squares, the completed-permutation watermark,
    the evaluation census, and a config fingerprint — atomically at every
    wave boundary (:mod:`repro.importance.checkpoint`). ``resume=True``
    restores a killed run from its last snapshot and produces values
    bit-identical to an uninterrupted run; a fingerprint mismatch refuses
    to resume instead of silently blending two different runs.

variance-aware early stopping and budget degradation
    With ``convergence_tolerance`` set, the engine tracks a running
    standard error of each point's (weighted) marginal contribution and
    stops drawing permutations once the maximum stderr falls below the
    tolerance (Ghorbani-&-Zou-style convergence). ``deadline_s`` and
    ``max_evals`` bound wall-clock and utility-evaluation spend: when a
    budget runs out the engine *returns* a partial result flagged
    ``converged=False`` (with per-row standard errors and an evaluation
    census) instead of raising. All stopping decisions happen at fixed
    ``check_every`` wave boundaries in permutation order, so the stopping
    point is independent of the worker count.

antithetic permutation pairs
    With ``antithetic=True`` every drawn ordering is followed by its
    reverse. A point inserted late in σ is inserted early in reversed(σ),
    which negatively correlates the pair's marginal-contribution noise and
    reduces estimator variance for near-monotone games.

Determinism caveat: bit-identical results across worker counts (and versus
the legacy serial code) hold for *deterministic* utilities — model training
with a fixed algorithm on fixed rows. A stochastic ``SubsetUtility`` (e.g. a
noisy closure over an RNG) consumes its noise stream in evaluation order,
which caching and sharding legitimately change.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
import warnings
from bisect import insort
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from .checkpoint import CheckpointStore, config_fingerprint
from .pool import PoolUnavailable, WorkerPool, active_map_pool, current_registry
from .supervision import (
    ChunkDispatcher,
    ChunkFailure,
    DeadlinePolicy,
    SupervisionStats,
)

__all__ = [
    "DEFAULT_CACHE_SIZE",
    "SubsetCache",
    "PermutationRun",
    "ValuationResult",
    "ValuationEngine",
    "parallel_map",
]

#: Default bound on the number of memoized subsets. Keys are index tuples
#: (~8 bytes per small index plus tuple overhead), so the worst case at the
#: default is tens of megabytes for games with a few hundred points.
DEFAULT_CACHE_SIZE = 32768

_MISSING = object()

# Fork-based fan-out inherits the parent's memory, so utilities holding
# closures, frames, or fitted transformers need no pickling. On platforms
# without fork (Windows/macOS-spawn) the *pool* still runs — shared memory
# plus picklable chunk descriptors cross a spawn boundary — and only the
# modes that genuinely cannot degrade to serial, loudly, one RuntimeWarning
# per mode per process (see _warn_no_fork).
_FORK_CTX = (
    mp.get_context("fork") if "fork" in mp.get_all_start_methods() else None
)

#: Degradation modes already warned about in this process. A set, not a
#: bool: "your per-call fan-out went serial" and "your worker pool could
#: not be built" are different surprises and each deserves its own (single)
#: warning.
_WARNED_NO_FORK: set[str] = set()

_NO_FORK_DETAILS = {
    "engine": (
        "engine fan-out (n_workers > 1) fell back to serial execution: the "
        "'fork' start method is unavailable and no worker pool could serve "
        "this utility. Results are identical, only slower. A picklable "
        "model/metric (or a valuation_pool() context) restores parallelism "
        "via the shared-memory spawn pool."
    ),
    "map": (
        "parallel_map fell back to a serial loop: the 'fork' start method "
        "is unavailable and no open worker pool could run the function. "
        "Results are identical, only slower."
    ),
    "pool": (
        "a worker pool was requested but cannot serve this utility on this "
        "platform (arrays not shareable or model/metric not picklable, and "
        "'fork' is unavailable); falling back to per-call fan-out or serial "
        "execution. Results are identical, only slower."
    ),
}


def _warn_no_fork(mode: str = "engine") -> None:
    """One warning per degradation mode per process.

    Silent behavioral divergence between platforms is the failure mode this
    guards: on spawn-only platforms the engine and :func:`parallel_map`
    produce identical *values*, but the user asked for a fleet and should
    know exactly which execution mode they did not get.
    """
    if mode not in _WARNED_NO_FORK:
        _WARNED_NO_FORK.add(mode)
        warnings.warn(
            _NO_FORK_DETAILS[mode], RuntimeWarning, stacklevel=3
        )


class SubsetCache:
    """LRU-bounded memo of ``v(S)`` keyed by the sorted index tuple."""

    def __init__(self, max_size: int = DEFAULT_CACHE_SIZE) -> None:
        if max_size < 0:
            raise ValueError("max_size must be >= 0")
        self.max_size = int(max_size)
        self._data: OrderedDict[tuple[int, ...], float] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def key(indices: Iterable[int]) -> tuple[int, ...]:
        """Canonical cache key: the sorted tuple of member indices."""
        return tuple(sorted(int(i) for i in indices))

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: tuple[int, ...]) -> bool:
        return key in self._data

    def lookup(self, key: tuple[int, ...]) -> Any:
        """Value for ``key`` (counted as a hit) or ``_MISSING`` (a miss)."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
        else:
            self.hits += 1
            self._data.move_to_end(key)
        return value

    def put(self, key: tuple[int, ...], value: float) -> None:
        if self.max_size == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.max_size:
            self._data.popitem(last=False)
            self.evictions += 1

    def snapshot(self) -> dict[tuple[int, ...], float]:
        """Plain-dict copy shipped to workers at fork time."""
        return dict(self._data)

    def stats(self) -> dict:
        total = self.hits + self.misses
        return {
            "size": len(self._data),
            "max_size": self.max_size,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / total if total else 0.0,
        }


@dataclass
class PermutationRun:
    """Raw accumulators of one permutation-sampling run.

    ``totals``/``sumsq`` hold the per-point sum and sum of squares of the
    (position-weighted) marginal contributions; ``counts`` how many
    permutations each point was credited in (every scanned permutation
    credits every point — truncated tails are credited zero, exactly like
    the legacy estimators).
    """

    totals: np.ndarray
    counts: np.ndarray
    sumsq: np.ndarray
    n_permutations: int
    truncated_scans: int
    stopped_early: bool
    max_stderr: float | None
    converged: bool = True
    stop_reason: str = "completed"
    n_evaluations: int = 0
    elapsed_s: float = 0.0
    resumed_from: int = 0

    def values(self) -> np.ndarray:
        return self.totals / np.maximum(self.counts, 1)

    def stderr(self) -> np.ndarray:
        """Standard error of each point's mean marginal contribution."""
        counts = np.maximum(self.counts, 1)
        mean = self.totals / counts
        with np.errstate(invalid="ignore", divide="ignore"):
            var = (self.sumsq - counts * mean**2) / np.maximum(counts - 1, 1)
        return np.sqrt(np.clip(var, 0.0, None) / counts)


@dataclass
class ValuationResult:
    """A (possibly partial) valuation with its uncertainty and accounting.

    The graceful-degradation contract of the engine: when a wall-clock
    deadline or evaluation budget runs out, callers get *this* — the best
    current estimate with per-row standard errors, ``converged=False``, the
    ``stop_reason``, and an evaluation census — instead of an exception.
    """

    values: np.ndarray
    stderr: np.ndarray
    converged: bool
    #: "completed" | "converged" | "deadline" | "eval_budget"
    stop_reason: str
    census: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.values)


def _scan_orderings(
    evaluate: Callable[[tuple[int, ...]], float],
    orderings: Sequence[np.ndarray],
    weights: np.ndarray,
    truncation_tolerance: float,
    null: float,
    full: float | None,
) -> tuple[np.ndarray, int]:
    """Scan permutations, returning one row of weighted marginals each.

    The incremental-prefix loop replicates the legacy estimators exactly:
    ``prev`` starts at ``v(∅)`` and a scan stops early once the running
    utility is within ``truncation_tolerance`` of ``v(N)`` (the remaining
    points keep a zero marginal for that permutation).
    """
    n = len(weights)
    deltas = np.zeros((len(orderings), n))
    truncated = 0
    for p, order in enumerate(orderings):
        prev = null
        prefix: list[int] = []
        row = deltas[p]
        for step, i in enumerate(order):
            if (
                truncation_tolerance > 0.0
                and step > 0
                and abs(full - prev) <= truncation_tolerance
            ):
                truncated += 1
                break
            i = int(i)
            insort(prefix, i)
            current = evaluate(tuple(prefix))
            row[i] = weights[step] * (current - prev)
            prev = current
    return deltas, truncated


def _worker_evaluator(state: dict) -> tuple[Callable[[tuple[int, ...]], float], dict, list]:
    """Cache-aware ``v(key)`` for a forked worker.

    The worker's cache starts as the parent's snapshot (inherited at fork)
    and grows in place, so it persists across tasks within the process. New
    entries and hit/miss counts are reported back for the parent to merge.
    """
    utility = state["utility"]
    cache: dict = state["cache"]
    new_entries: dict = {}
    counters = [0, 0]  # hits, misses

    def evaluate(key: tuple[int, ...]) -> float:
        if key in cache:
            counters[0] += 1
            return cache[key]
        counters[1] += 1
        value = float(utility.evaluate(np.asarray(key, dtype=np.int64)))
        cache[key] = value
        new_entries[key] = value
        return value

    return evaluate, new_entries, counters


def _permutation_chunk(state: dict, bounds: tuple[int, int]):
    """Worker task: scan ``orderings[start:stop]`` (safe to re-execute)."""
    start, stop = bounds
    utility = state["utility"]
    evals_before = utility.n_evaluations
    evaluate, new_entries, counters = _worker_evaluator(state)
    deltas, truncated = _scan_orderings(
        evaluate,
        state["orderings"][start:stop],
        state["weights"],
        state["truncation_tolerance"],
        state["null"],
        state["full"],
    )
    evals = utility.n_evaluations - evals_before
    return start, deltas, truncated, new_entries, evals, counters


def _subset_chunk(state: dict, bounds: tuple[int, int]):
    """Worker task: evaluate ``keys[start:stop]`` (safe to re-execute)."""
    start, stop = bounds
    utility = state["utility"]
    evals_before = utility.n_evaluations
    evaluate, new_entries, counters = _worker_evaluator(state)
    values = [evaluate(key) for key in state["keys"][start:stop]]
    evals = utility.n_evaluations - evals_before
    return start, values, new_entries, evals, counters


def _chunk_bounds(n_items: int, n_chunks: int) -> list[tuple[int, int]]:
    """Contiguous, near-even (start, stop) partition of ``range(n_items)``."""
    edges = np.linspace(0, n_items, min(n_chunks, n_items) + 1, dtype=int)
    return [
        (int(a), int(b)) for a, b in zip(edges[:-1], edges[1:]) if b > a
    ]


class ValuationEngine:
    """Memoized, supervised, resumable driver for subset-sampling estimators.

    Parameters
    ----------
    utility:
        Any object with the :class:`repro.importance.Utility` protocol
        (``n_train``, ``evaluate(indices)``, ``n_evaluations``).
    n_workers:
        Worker processes for fan-out. ``1`` (the default) runs fully
        serial, in-process. Values > 1 require a fork-capable platform and
        fall back to serial elsewhere with a single ``RuntimeWarning``. The
        returned values are identical for every worker count
        (deterministic utilities).
    cache_size:
        LRU bound of the subset memo; ``0`` disables memoization.
    ledger:
        Optional :class:`repro.obs.RunLedger`; when set, every
        :meth:`run_permutations` call appends a ``"valuation"`` event
        (sampling config + cache/evaluation/supervision accounting) to the
        run store.
    checkpoint:
        Path (or :class:`~repro.importance.checkpoint.CheckpointStore`) for
        wave-boundary accumulator snapshots. With ``resume=True`` a killed
        run restarts from its last snapshot and finishes bit-identical to
        an uninterrupted run; a config-fingerprint mismatch raises instead
        of resuming.
    chunk_timeout_s:
        Hard per-chunk deadline for hang detection. Default None: deadlines
        adapt from observed chunk-latency quantiles (``hang_factor`` × the
        p95 of recent chunk latencies, once enough samples exist).
    hang_factor, max_chunk_retries, max_worker_restarts:
        Supervision knobs: the latency-quantile multiplier, the per-chunk
        retry budget (exhaustion raises
        :class:`~repro.importance.supervision.ChunkFailure`), and the
        engine-lifetime cap on worker restarts.
    chunks_per_worker:
        Chunk granularity of each fan-out: more chunks per worker means
        finer re-queue units and better latency-quantile estimates at
        slightly more dispatch overhead. Does not affect returned values.
    pool:
        Where fan-outs execute. ``None`` (default): lease from the active
        :func:`~repro.importance.pool.valuation_pool` registry when one is
        installed, else fall back to per-call forked fleets. ``True``:
        eagerly create an engine-owned
        :class:`~repro.importance.pool.WorkerPool` (released by
        :meth:`close` / the engine's context manager; raises
        :class:`~repro.importance.pool.PoolUnavailable` if impossible). A
        :class:`~repro.importance.pool.WorkerPool` instance: borrow it
        (caller keeps ownership). ``False``: never use a pool, even under
        an active registry. Returned values are bit-identical in every
        mode.
    chaos:
        Optional :class:`repro.errors.chaos.ChaosMonkey` whose seeded
        *worker-level* faults (crash-on-chunk, hang-on-chunk) are injected
        inside workers — the supervision path's end-to-end test hook.
    """

    def __init__(
        self,
        utility: Any,
        n_workers: int = 1,
        cache_size: int = DEFAULT_CACHE_SIZE,
        ledger: Any | None = None,
        checkpoint: Any | None = None,
        resume: bool = False,
        chunk_timeout_s: float | None = None,
        hang_factor: float = 8.0,
        max_chunk_retries: int = 3,
        max_worker_restarts: int = 32,
        chunks_per_worker: int = 2,
        pool: Any | None = None,
        chaos: Any | None = None,
    ) -> None:
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if chunks_per_worker < 1:
            raise ValueError("chunks_per_worker must be >= 1")
        self.utility = utility
        self.n_workers = int(n_workers)
        self.cache = SubsetCache(cache_size)
        self.ledger = ledger
        if checkpoint is None or isinstance(checkpoint, CheckpointStore):
            self.checkpoint = checkpoint
        else:
            self.checkpoint = CheckpointStore(checkpoint)
        self.resume = bool(resume)
        self.chunk_timeout_s = chunk_timeout_s
        self.hang_factor = float(hang_factor)
        self.max_chunk_retries = int(max_chunk_retries)
        self.max_worker_restarts = int(max_worker_restarts)
        self.chunks_per_worker = int(chunks_per_worker)
        self.chaos = chaos
        #: Lifetime supervision counters (crashes, hangs, retries, restarts).
        self.supervision = SupervisionStats()
        # -- execution substrate ---------------------------------------- #
        self._pool: WorkerPool | None = None
        self._owns_pool = False
        self._pool_disabled = pool is False
        if pool is True:
            self._pool = WorkerPool(
                utility,
                n_workers=self.n_workers,
                ledger=ledger,
                chunk_timeout_s=chunk_timeout_s,
                hang_factor=self.hang_factor,
                max_chunk_retries=self.max_chunk_retries,
                max_worker_restarts=self.max_worker_restarts,
                chaos=chaos,
            )
            self._owns_pool = True
        elif isinstance(pool, WorkerPool):
            self._adopt_pool(pool)

    @property
    def n_train(self) -> int:
        return int(self.utility.n_train)

    @property
    def worker_restarts(self) -> int:
        """Workers restarted over this engine's lifetime (crashes + hangs)."""
        return self.supervision.worker_restarts

    def stats(self) -> dict:
        """Cache + evaluation accounting, in the shape estimators report."""
        pool = self._pool
        return {
            "cache": self.cache.stats(),
            "n_evaluations": int(self.utility.n_evaluations),
            "n_workers": self.n_workers,
            "supervision": self.supervision.to_dict(),
            "pool": pool.stats() if pool is not None and not pool.closed else None,
        }

    def close(self) -> None:
        """Release an engine-owned pool; borrowed/leased pools stay open."""
        if self._owns_pool and self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ValuationEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def use_pool(self, pool: WorkerPool) -> None:
        """Borrow ``pool`` for subsequent fan-outs (caller keeps ownership).

        The hook the service runtime uses to hand sequential jobs over the
        same dataset one warm pool instead of a fleet per job.
        """
        if self._owns_pool and self._pool is not None and not self._pool.closed:
            raise RuntimeError("engine already owns a live pool")
        self._adopt_pool(pool)
        self._owns_pool = False
        self._pool_disabled = False

    def _adopt_pool(self, pool: WorkerPool) -> None:
        """Take ``pool`` as the fan-out substrate and absorb its warmth.

        The pool's journal (every subset value any of its workers ever
        reported) is replayed into this engine's cache, so driver-side
        evaluations — the full-set utility for truncation thresholds,
        point :meth:`evaluate` calls — are as warm as the fleet. The
        engine also registers a weak borrower claim so registry LRU
        eviction cannot close the pool out from under a live run.
        """
        self._pool = pool
        pool.add_borrower(self)
        pool.warm_cache(self.cache)

    # ------------------------------------------------------------------ #
    # observability                                                      #
    # ------------------------------------------------------------------ #

    def _stats_baseline(self) -> tuple[int, int, int] | None:
        """Cache/evaluation counters at entry (None while obs is off)."""
        if not _obs.enabled():
            return None
        return (
            self.cache.hits,
            self.cache.misses,
            int(self.utility.n_evaluations),
        )

    def _record_stats_delta(self, baseline: tuple[int, int, int] | None) -> None:
        """Publish what one engine call contributed to the metric registry."""
        if baseline is None:
            return
        hits0, misses0, evals0 = baseline
        _obs_metrics.counter("engine.cache.hits").inc(self.cache.hits - hits0)
        _obs_metrics.counter("engine.cache.misses").inc(self.cache.misses - misses0)
        _obs_metrics.counter("engine.evaluations").inc(
            int(self.utility.n_evaluations) - evals0
        )
        _obs_metrics.gauge("engine.cache.size").set(len(self.cache._data))
        _obs_metrics.gauge("engine.n_workers").set(self.n_workers)
        _obs.add_attrs(
            cache_hits=self.cache.hits - hits0,
            cache_misses=self.cache.misses - misses0,
            evaluations=int(self.utility.n_evaluations) - evals0,
        )

    def _supervision_event(self, kind: str, chunk_ord: int, attempt: int) -> None:
        """Bridge dispatcher events into obs metrics + chaos ground truth."""
        if _obs.enabled():
            _obs_metrics.counter(f"engine.supervision.{kind}").inc()
        if (
            self.chaos is not None
            and kind in ("crash", "hang")
            and hasattr(self.chaos, "record_worker_fault")
        ):
            planned = self.chaos.worker_fault(chunk_ord, attempt)
            if planned is not None:
                self.chaos.record_worker_fault(planned, chunk_ord)

    # ------------------------------------------------------------------ #
    # point evaluations                                                  #
    # ------------------------------------------------------------------ #

    def evaluate(self, indices: Iterable[int]) -> float:
        """Memoized ``v(S)``; evaluates the utility on the sorted indices."""
        key = SubsetCache.key(indices)
        value = self.cache.lookup(key)
        if value is _MISSING:
            value = float(self.utility.evaluate(np.asarray(key, dtype=np.int64)))
            self.cache.put(key, value)
        return value

    def evaluate_many(
        self,
        subsets: Sequence[Iterable[int]],
        checkpoint_config: Mapping[str, Any] | None = None,
        wave_size: int = 64,
    ) -> np.ndarray:
        """``v(S)`` for many subsets, fanned out across workers, in order.

        Duplicate subsets are evaluated once. The fan-out dispatches only
        cache misses, so a warm engine answers entirely from memory.

        With the engine's ``checkpoint`` set and a ``checkpoint_config``
        identifying the sampling run (the subset-sampling estimators pass
        their own config), evaluated values are snapshotted every
        ``wave_size`` subsets; ``resume=True`` reloads them into the memo,
        so a killed run only pays for subsets not yet evaluated and returns
        values bit-identical to an uninterrupted one.
        """
        keys = [SubsetCache.key(subset) for subset in subsets]
        store = self.checkpoint if checkpoint_config is not None else None
        fingerprint = None
        evals_resumed = 0
        if store is not None:
            fingerprint = config_fingerprint(
                {"kind": "subset", **dict(checkpoint_config)}
            )
            if self.resume:
                snapshot = store.load_matching("subset", fingerprint)
                if snapshot is not None:
                    for key, value in snapshot.get("values", []):
                        self.cache.put(tuple(int(i) for i in key), float(value))
                    evals_resumed = int(snapshot.get("n_evaluations", 0))
        evals_at_entry = int(self.utility.n_evaluations)

        def save(completed: int, finished: bool) -> None:
            if store is None:
                return
            seen = OrderedDict.fromkeys(keys[:completed])
            store.save(
                {
                    "kind": "subset",
                    "fingerprint": fingerprint,
                    "completed": completed,
                    "n_subsets": len(keys),
                    "values": [
                        [list(key), self.cache._data[key]]
                        for key in seen
                        if key in self.cache._data
                    ],
                    "n_evaluations": evals_resumed
                    + int(self.utility.n_evaluations)
                    - evals_at_entry,
                    "finished": finished,
                }
            )

        if store is None:
            return self._evaluate_many(keys)
        out = np.empty(len(keys))
        for start in range(0, len(keys), max(1, int(wave_size))):
            stop = min(start + max(1, int(wave_size)), len(keys))
            out[start:stop] = self._evaluate_many(keys[start:stop])
            save(stop, finished=stop >= len(keys))
        return out

    def _evaluate_many(self, keys: Sequence[tuple[int, ...]]) -> np.ndarray:
        with _obs.span("engine.evaluate_many", n_subsets=len(keys)) as sp:
            stats_before = self._stats_baseline()
            if not self._parallel(len(keys)):
                out = np.asarray([self.evaluate(key) for key in keys])
                self._record_stats_delta(stats_before)
                return out
            values: dict[tuple[int, ...], float] = {}
            pending: list[tuple[int, ...]] = []
            for key in OrderedDict.fromkeys(keys):
                value = self.cache.lookup(key)
                if value is _MISSING:
                    pending.append(key)
                else:
                    values[key] = value
            sp.set(pending=len(pending))
            if pending:
                bounds = _chunk_bounds(
                    len(pending), self.n_workers * self.chunks_per_worker
                )
                self._pool_metrics(bounds)
                pool = self._resolve_pool()
                if pool is not None:
                    pool.sync_cache(self.cache._data)
                    payloads = [
                        {"kind": "subset", "keys": pending[a:b]}
                        for a, b in bounds
                    ]
                    results = pool.dispatch(
                        payloads, on_event=self._pool_event
                    )
                    self.supervision.chunks_completed += len(payloads)
                    for (a, b), result in zip(bounds, results):
                        __, chunk_values, entries, evals, counters, __m = result
                        self._merge_worker(
                            dict(entries), evals, counters, count_lookups=False
                        )
                        # A warm worker may have answered from its local
                        # cache (no new entry); the driver memo still
                        # learns every requested subset.
                        for key, value in zip(pending[a:b], chunk_values):
                            values[key] = value
                            self.cache.put(key, value)
                    pool.sync_cache(self.cache._data)
                else:
                    state = {
                        "utility": self.utility,
                        "cache": self.cache.snapshot(),
                        "keys": pending,
                        "chaos": self.chaos,
                    }
                    with self._make_dispatcher(state, _subset_chunk) as dispatcher:
                        results = dispatcher.dispatch(bounds)
                    for start, chunk_values, new_entries, evals, counters in results:
                        for key, value in zip(
                            pending[start : start + len(chunk_values)], chunk_values
                        ):
                            values[key] = value
                        self._merge_worker(new_entries, evals, counters, count_lookups=False)
            self._record_stats_delta(stats_before)
            return np.asarray([values[key] for key in keys])

    # ------------------------------------------------------------------ #
    # permutation sampling                                               #
    # ------------------------------------------------------------------ #

    def run_permutations(
        self,
        n_permutations: int,
        seed: int = 0,
        weights: np.ndarray | None = None,
        truncation_tolerance: float = 0.0,
        convergence_tolerance: float | None = None,
        check_every: int = 10,
        antithetic: bool = False,
        deadline_s: float | None = None,
        max_evals: int | None = None,
        progress_callback: Callable[[dict], None] | None = None,
    ) -> PermutationRun:
        """Sample permutations and accumulate per-point weighted marginals.

        ``weights[j]`` multiplies the marginal contribution of the point
        inserted at position ``j`` (all-ones = Shapley, Beta weights =
        Beta-Shapley). See the module docstring for the semantics of
        ``truncation_tolerance``, ``convergence_tolerance`` and
        ``antithetic``.

        ``deadline_s`` bounds this call's wall clock and ``max_evals`` the
        run's cumulative utility evaluations (including evaluations
        restored from a resumed checkpoint); both are checked at wave
        boundaries and stop the run with a *partial* accumulator state —
        ``converged=False`` and the appropriate ``stop_reason`` — instead
        of raising. A budget of exactly zero is a valid degenerate case:
        the call returns immediately with a well-formed zero-permutation
        partial result (``stop_reason`` = ``"deadline"`` /
        ``"eval_budget"``) without evaluating the utility at all — the
        admission-control contract the service runtime relies on for jobs
        whose end-to-end deadline expired while queued. Budget knobs are
        deliberately excluded from the checkpoint fingerprint: resuming a
        budget-stopped run with a larger budget is the intended workflow,
        and the accumulator prefix at any watermark does not depend on
        where a previous invocation stopped.

        ``progress_callback`` is invoked at every wave boundary (after the
        wave's checkpoint, so the stream never runs ahead of durable
        state) with a snapshot dict — ``completed``, ``target``,
        ``values``, ``stderr``, ``max_stderr``, ``n_evaluations``,
        ``elapsed_s`` — the hook the service runtime uses to fan streamed
        partial results out to subscribers. The callback must not mutate
        the arrays it receives (they are copies, but treat them as
        read-only telemetry); exceptions it raises propagate.
        """
        if n_permutations < 1:
            raise ValueError("n_permutations must be >= 1")
        if deadline_s is not None and deadline_s < 0:
            raise ValueError("deadline_s must be >= 0 (or None)")
        if max_evals is not None and max_evals < 0:
            raise ValueError("max_evals must be >= 0 (or None)")
        n = self.n_train
        if weights is None:
            weights = np.ones(n)
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.shape != (n,):
                raise ValueError("weights must have one entry per position")
        started = time.perf_counter()
        evals_at_entry = int(self.utility.n_evaluations)
        supervision_before = self.supervision.to_dict()
        orderings = self._draw_orderings(n_permutations, seed, antithetic)

        # -- checkpoint identity + resume ------------------------------- #
        store = self.checkpoint
        fingerprint = None
        totals = np.zeros(n)
        sumsq = np.zeros(n)
        scanned = 0
        truncated = 0
        evals_resumed = 0
        elapsed_prior = 0.0
        resumed_from = 0
        finished_on_load: str | None = None
        if store is not None:
            fingerprint = config_fingerprint(
                {
                    "kind": "permutation",
                    "n_train": n,
                    "seed": seed,
                    "n_permutations": n_permutations,
                    "weights": weights,
                    "truncation_tolerance": truncation_tolerance,
                    "convergence_tolerance": convergence_tolerance,
                    "check_every": check_every,
                    "antithetic": antithetic,
                }
            )
            if self.resume:
                snapshot = store.load_matching("permutation", fingerprint)
                if snapshot is not None:
                    totals = np.asarray(snapshot["totals"], dtype=float)
                    sumsq = np.asarray(snapshot["sumsq"], dtype=float)
                    scanned = int(snapshot["completed"])
                    truncated = int(snapshot["truncated_scans"])
                    evals_resumed = int(snapshot.get("n_evaluations", 0))
                    elapsed_prior = float(snapshot.get("elapsed_s", 0.0))
                    resumed_from = scanned
                    if snapshot.get("finished"):
                        finished_on_load = str(
                            snapshot.get("stop_reason", "completed")
                        )

        def spent_evals() -> int:
            return (
                evals_resumed
                + int(self.utility.n_evaluations)
                - evals_at_entry
            )

        stopped = False
        converged = True
        stop_reason = "completed"
        max_stderr: float | None = None

        if finished_on_load is not None:
            # The checkpointed run already finished — nothing to redo.
            run = PermutationRun(
                totals=totals,
                counts=np.full(n, scanned, dtype=float),
                sumsq=sumsq,
                n_permutations=scanned,
                truncated_scans=truncated,
                stopped_early=finished_on_load == "converged",
                max_stderr=None,
                converged=finished_on_load in ("completed", "converged"),
                stop_reason=finished_on_load,
                n_evaluations=evals_resumed,
                elapsed_s=elapsed_prior,
                resumed_from=resumed_from,
            )
            if convergence_tolerance is not None and scanned >= 2:
                run.max_stderr = float(np.max(run.stderr()))
                if finished_on_load == "completed":
                    # The stored run spent its full budget; whether it
                    # "converged" depends on the tolerance being asked now.
                    run.converged = run.max_stderr <= convergence_tolerance
            return run

        run_span = _obs.span(
            "engine.run_permutations",
            n_train=n,
            n_permutations=n_permutations,
            n_workers=self.n_workers,
            antithetic=antithetic,
            seed=seed,
        )
        run_span.__enter__()
        stats_before = self._stats_baseline()
        # Budgets already spent at entry — zero budgets, or a resumed run
        # handed the max_evals it had already consumed. Skip even the
        # null/full anchor evaluations ("return immediately" means zero
        # utility calls) and let the loop's first boundary check produce
        # the well-formed partial result.
        exhausted_at_entry = (
            max_evals is not None and spent_evals() >= max_evals
        ) or (deadline_s is not None and deadline_s <= 0)
        null = 0.0 if exhausted_at_entry else self.evaluate(())
        full = (
            self.evaluate(range(n))
            if truncation_tolerance > 0.0 and not exhausted_at_entry
            else None
        )
        # Waves exist wherever a boundary decision is needed: convergence
        # checks, budget checks, checkpoint snapshots, or progress streams.
        bounded = (
            convergence_tolerance is not None
            or deadline_s is not None
            or max_evals is not None
            or store is not None
            or progress_callback is not None
        )
        wave = max(1, int(check_every)) if bounded else n_permutations
        # Either a WorkerPool (persistent fleet, shared-memory data plane)
        # or a per-run ChunkDispatcher (legacy fork-per-run) — or None for
        # serial. _scan_range routes on the type.
        executor: WorkerPool | ChunkDispatcher | None = None

        def save_checkpoint(finished: bool) -> None:
            if store is None:
                return
            store.save(
                {
                    "kind": "permutation",
                    "fingerprint": fingerprint,
                    "n_train": n,
                    "seed": seed,
                    "n_permutations": n_permutations,
                    "completed": scanned,
                    "totals": totals.tolist(),
                    "sumsq": sumsq.tolist(),
                    "truncated_scans": truncated,
                    "n_evaluations": spent_evals(),
                    "elapsed_s": elapsed_prior
                    + (time.perf_counter() - started),
                    "finished": finished,
                    "stop_reason": stop_reason if finished else None,
                }
            )

        try:
            if not exhausted_at_entry and self._parallel(n_permutations - scanned):
                executor = self._resolve_pool()
                if executor is None:
                    state = {
                        "utility": self.utility,
                        "cache": self.cache.snapshot(),
                        "orderings": orderings,
                        "weights": weights,
                        "truncation_tolerance": truncation_tolerance,
                        "null": null,
                        "full": full,
                        "chaos": self.chaos,
                    }
                    executor = self._make_dispatcher(state, _permutation_chunk)
            start = scanned
            while start < n_permutations:
                # Budgets already exhausted (e.g. a resumed run handed the
                # same max_evals): stop before paying for another wave.
                if max_evals is not None and spent_evals() >= max_evals:
                    stopped, converged, stop_reason = True, False, "eval_budget"
                    break
                if (
                    deadline_s is not None
                    and time.perf_counter() - started >= deadline_s
                ):
                    stopped, converged, stop_reason = True, False, "deadline"
                    break
                stop = min(start + wave, n_permutations)
                with _obs.span("engine.wave", start=start, stop=stop) as wave_span:
                    deltas, wave_truncated = self._scan_range(
                        orderings, start, stop, weights, truncation_tolerance,
                        null, full, executor,
                    )
                    # Accumulate one permutation at a time so the FP summation
                    # order matches the serial path for every worker count.
                    for row in deltas:
                        totals += row
                        sumsq += row * row
                    truncated += wave_truncated
                    scanned = stop
                    if convergence_tolerance is not None and scanned >= 2:
                        run = PermutationRun(
                            totals, np.full(n, scanned, dtype=float), sumsq,
                            scanned, truncated, False, None,
                        )
                        max_stderr = float(np.max(run.stderr()))
                        if _obs.enabled():
                            # SE trajectory: one observation per wave boundary.
                            wave_span.set(max_stderr=max_stderr)
                            _obs_metrics.histogram("engine.wave_max_stderr").observe(
                                max_stderr
                            )
                        if max_stderr <= convergence_tolerance:
                            stopped = True
                            stop_reason = "converged"
                    if _obs.enabled():
                        wave_span.set(truncated=wave_truncated)
                        _obs_metrics.counter("engine.permutations").inc(stop - start)
                if not stopped:
                    if max_evals is not None and spent_evals() >= max_evals:
                        stopped, converged, stop_reason = True, False, "eval_budget"
                    elif (
                        deadline_s is not None
                        and time.perf_counter() - started >= deadline_s
                    ):
                        stopped, converged, stop_reason = True, False, "deadline"
                save_checkpoint(
                    finished=stop_reason in ("completed", "converged")
                    and (stopped or scanned >= n_permutations)
                )
                if progress_callback is not None:
                    snapshot_run = PermutationRun(
                        totals, np.full(n, scanned, dtype=float), sumsq,
                        scanned, truncated, False, max_stderr,
                    )
                    progress_callback(
                        {
                            "completed": scanned,
                            "target": n_permutations,
                            "values": snapshot_run.values(),
                            "stderr": snapshot_run.stderr(),
                            "max_stderr": max_stderr,
                            "n_evaluations": spent_evals(),
                            "elapsed_s": elapsed_prior
                            + (time.perf_counter() - started),
                        }
                    )
                if stopped:
                    break
                start = stop
            if (
                not stopped
                and convergence_tolerance is not None
                and scanned >= n_permutations
            ):
                # Full budget spent without reaching the tolerance.
                converged = (
                    max_stderr is not None
                    and max_stderr <= convergence_tolerance
                )
        finally:
            # Per-run dispatchers die with the run; a pool outlives it.
            if isinstance(executor, ChunkDispatcher):
                executor.close()
            if _obs.enabled():
                run_span.set(
                    n_permutations_run=scanned,
                    truncated_scans=truncated,
                    stopped_early=stopped,
                    max_stderr=max_stderr,
                )
                self._record_stats_delta(stats_before)
            run_span.__exit__(None, None, None)
        supervision_delta = {
            key: self.supervision.to_dict()[key] - supervision_before[key]
            for key in supervision_before
        }
        if self.ledger is not None:
            self.ledger.record_event(
                "valuation",
                config={
                    "n_train": n,
                    "n_permutations": n_permutations,
                    "seed": seed,
                    "n_workers": self.n_workers,
                    "pool_mode": (
                        executor.mode
                        if isinstance(executor, WorkerPool)
                        else None
                    ),
                    "antithetic": antithetic,
                    "truncation_tolerance": truncation_tolerance,
                    "convergence_tolerance": convergence_tolerance,
                    "deadline_s": deadline_s,
                    "max_evals": max_evals,
                    "checkpoint": str(store.path) if store is not None else None,
                },
                stats={
                    "n_permutations_run": scanned,
                    "resumed_from": resumed_from,
                    "truncated_scans": truncated,
                    "stopped_early": stopped,
                    "converged": converged if stopped or scanned else None,
                    "stop_reason": stop_reason,
                    "max_stderr": max_stderr,
                    "evaluations": int(self.utility.n_evaluations)
                    - evals_at_entry,
                    "cache": self.cache.stats(),
                    "supervision": supervision_delta,
                },
                wall_time_s=time.perf_counter() - started,
            )
        return PermutationRun(
            totals=totals,
            counts=np.full(n, scanned, dtype=float),
            sumsq=sumsq,
            n_permutations=scanned,
            truncated_scans=truncated,
            stopped_early=stopped and stop_reason == "converged",
            max_stderr=max_stderr,
            converged=converged if stop_reason != "converged" else True,
            stop_reason=stop_reason,
            n_evaluations=spent_evals(),
            elapsed_s=elapsed_prior + (time.perf_counter() - started),
            resumed_from=resumed_from,
        )

    def result_from_run(
        self, run: PermutationRun, n_permutations_target: int
    ) -> ValuationResult:
        """Package a :class:`PermutationRun` as a :class:`ValuationResult`."""
        return ValuationResult(
            values=run.values(),
            stderr=run.stderr(),
            converged=run.converged,
            stop_reason=run.stop_reason,
            census={
                "n_permutations_target": int(n_permutations_target),
                "n_permutations_run": run.n_permutations,
                "resumed_from": run.resumed_from,
                "truncated_scans": run.truncated_scans,
                "n_evaluations": run.n_evaluations,
                "elapsed_s": run.elapsed_s,
                "max_stderr": run.max_stderr,
                "cache": self.cache.stats(),
                "supervision": self.supervision.to_dict(),
                "n_workers": self.n_workers,
                "pool": (
                    self._pool.stats()
                    if self._pool is not None and not self._pool.closed
                    else None
                ),
            },
        )

    # ------------------------------------------------------------------ #
    # internals                                                          #
    # ------------------------------------------------------------------ #

    def _parallel(self, n_tasks: int) -> bool:
        if self.n_workers <= 1 or n_tasks <= 1:
            return False
        if self._resolve_pool() is not None:
            return True
        if _FORK_CTX is None:
            _warn_no_fork("engine")
            return False
        return True

    def _resolve_pool(self) -> WorkerPool | None:
        """The pool fan-outs run on: owned, borrowed, or registry-leased."""
        pool = self._pool
        if pool is not None and not pool.closed:
            return pool
        if self._pool_disabled or self._owns_pool:
            # pool=False, or an owned pool this engine already closed.
            return None
        registry = current_registry()
        if registry is not None:
            try:
                self._adopt_pool(registry.lease(self.utility, self.n_workers))
                return self._pool
            except PoolUnavailable:
                _warn_no_fork("pool")
                self._pool_disabled = True
                return None
        return None

    def _pool_event(self, kind: str, chunk_ord: int, attempt: int) -> None:
        """Mirror a pool-run chunk's supervision events into this engine.

        The pool's dispatcher accumulates into the *pool's* stats; engines
        borrowing the fleet still need their own lifetime counters (ledger
        events, census, ``worker_restarts``) to reflect what happened to
        their chunks.
        """
        if kind == "crash":
            self.supervision.crashes += 1
        elif kind == "hang":
            self.supervision.hangs += 1
        elif kind == "retry":
            self.supervision.chunk_retries += 1
        elif kind == "restart":
            self.supervision.worker_restarts += 1
        self.supervision.events.append(
            {"kind": kind, "chunk": chunk_ord, "attempt": attempt}
        )
        self._supervision_event(kind, chunk_ord, attempt)

    def _make_dispatcher(
        self, state: dict, task_fn: Callable[[dict, Any], Any]
    ) -> ChunkDispatcher:
        return ChunkDispatcher(
            _FORK_CTX,
            self.n_workers,
            state,
            task_fn,
            deadline=DeadlinePolicy(
                hard_timeout_s=self.chunk_timeout_s, factor=self.hang_factor
            ),
            max_chunk_retries=self.max_chunk_retries,
            max_worker_restarts=self.max_worker_restarts,
            stats=self.supervision,
            on_event=self._supervision_event,
            telemetry_sink=self._absorb_telemetry,
        )

    def _absorb_telemetry(self, items: Sequence[tuple[int, int, Any]]) -> None:
        """Merge worker telemetry from a fork-dispatcher fan-out: metric
        deltas into the registry, spans adopted under per-slot ``worker[i]``
        groups beneath the open wave span (same shape as the pool path)."""
        groups: dict[int, Any] = {}
        for slot, __chunk_id, delta in items:
            _obs.merge_worker_telemetry(slot, delta, groups)

    def _pool_metrics(self, bounds: Sequence[tuple[int, int]]) -> None:
        if _obs.enabled():
            # Utilization: fraction of the configured pool this fan-out
            # keeps busy (short waves can have fewer chunks than workers).
            _obs_metrics.counter("engine.pool.tasks").inc(len(bounds))
            _obs_metrics.histogram("engine.pool.utilization").observe(
                min(1.0, len(bounds) / self.n_workers)
            )

    def _draw_orderings(
        self, n_permutations: int, seed: int, antithetic: bool
    ) -> list[np.ndarray]:
        """Pre-draw every ordering from the master stream (see module doc)."""
        rng = np.random.default_rng(seed)
        n = self.n_train
        if not antithetic:
            return [rng.permutation(n) for __ in range(n_permutations)]
        orderings: list[np.ndarray] = []
        while len(orderings) < n_permutations:
            base = rng.permutation(n)
            orderings.append(base)
            if len(orderings) < n_permutations:
                orderings.append(base[::-1].copy())
        return orderings

    def _scan_range(
        self,
        orderings: Sequence[np.ndarray],
        start: int,
        stop: int,
        weights: np.ndarray,
        truncation_tolerance: float,
        null: float,
        full: float | None,
        executor: "WorkerPool | ChunkDispatcher | None",
    ) -> tuple[np.ndarray, int]:
        if executor is None:
            return _scan_orderings(
                lambda key: self.evaluate(key),
                orderings[start:stop],
                weights,
                truncation_tolerance,
                null,
                full,
            )
        bounds = _chunk_bounds(
            stop - start, self.n_workers * self.chunks_per_worker
        )
        self._pool_metrics(bounds)
        if isinstance(executor, WorkerPool):
            # Stream chunk descriptors only: the orderings slice plus scan
            # knobs. The dataset crossed once, at pool creation; the
            # driver's cache warmth rides along as journal deltas.
            executor.sync_cache(self.cache._data)
            payloads = [
                {
                    "kind": "permutation",
                    "orderings": orderings[start + a : start + b],
                    "weights": weights,
                    "truncation_tolerance": truncation_tolerance,
                    "null": null,
                    "full": full,
                }
                for a, b in bounds
            ]
            results = executor.dispatch(payloads, on_event=self._pool_event)
            self.supervision.chunks_completed += len(payloads)
            deltas = np.concatenate([item[1] for item in results], axis=0)
            truncated = 0
            for __, __d, chunk_truncated, entries, evals, counters, __m in results:
                truncated += chunk_truncated
                self._merge_worker(
                    dict(entries), evals, counters, count_lookups=True
                )
            # Post-merge sync: entries one worker evaluated reach its peers
            # (and future engines leasing this pool) via the journal, so a
            # warm pool answers from memory fleet-wide, not per process.
            executor.sync_cache(self.cache._data)
            return deltas, truncated
        results = executor.dispatch(
            [(start + a, start + b) for a, b in bounds]
        )
        deltas = np.concatenate([item[1] for item in results], axis=0)
        truncated = 0
        for __, __deltas, chunk_truncated, new_entries, evals, counters in results:
            truncated += chunk_truncated
            self._merge_worker(new_entries, evals, counters, count_lookups=True)
        return deltas, truncated

    def _merge_worker(
        self, new_entries: dict, evals: int, counters: list, count_lookups: bool
    ) -> None:
        """Fold one worker chunk's cache entries and accounting into ours.

        The evaluation census is charged per subset *newly learned by the
        driver*, not per worker-side utility call: two workers holding
        independent caches can both evaluate the same subset in one wave,
        and charging raw worker counts made the parallel census drift from
        serial (the 632-vs-633 ``n_evaluations`` artifact in the old
        benchmark results). Physically duplicated work is still visible as
        the ``engine.pool.duplicate_evals`` counter. Lookup accounting is
        normalized the same way, so hit/miss totals match the serial scan.
        """
        duplicates = 0
        for key, value in new_entries.items():
            if key in self.cache._data:
                duplicates += 1
            self.cache.put(key, value)
        charged = max(0, int(evals) - duplicates)
        self.utility.n_evaluations += charged
        if duplicates and _obs.enabled():
            _obs_metrics.counter("engine.pool.duplicate_evals").inc(duplicates)
        if count_lookups:
            extra_hits = max(0, int(counters[1]) - charged)
            self.cache.hits += int(counters[0]) + extra_hits
            self.cache.misses += int(counters[1]) - extra_hits


# ---------------------------------------------------------------------- #
# generic fan-out                                                        #
# ---------------------------------------------------------------------- #

_MAP_STATE: tuple | None = None


def _map_one(index: int):
    func, items = _MAP_STATE
    return func(items[index])


def parallel_map(func: Callable, items: Sequence, n_workers: int = 1) -> list:
    """``[func(x) for x in items]`` fanned out over worker processes.

    Order-preserving. When a :class:`~repro.importance.pool.WorkerPool` is
    open (e.g. inside a :func:`~repro.importance.pool.valuation_pool`
    block) and ``func`` pickles, the map runs on that persistent fleet —
    no per-call forking at all. Otherwise a forked fleet is created for
    the call; because those workers are forked, ``func`` may then be a
    closure over arbitrary state (frames, fitted models) without being
    picklable — only the *returned* values must pickle. Falls back to a
    serial loop when ``n_workers <= 1``, when neither a pool nor fork is
    available (with a single ``RuntimeWarning`` per process), or for
    trivially small inputs.
    """
    items = list(items)
    if n_workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    pool = active_map_pool()
    if pool is not None:
        try:
            pickle.dumps(func)
        except Exception:
            # Closure over unpicklable state: the persistent fleet cannot
            # receive it; fall through to fork-per-call (or serial).
            pool = None
    if pool is not None:
        try:
            return pool.map(func, items, n_chunks=min(n_workers, len(items)))
        except ChunkFailure:
            # The fleet kept failing on this function (e.g. it unpickles
            # only in the driver); a per-call forked fleet inherits it
            # directly, so fall through rather than give up.
            pool = None
    if _FORK_CTX is None:
        _warn_no_fork("map")
        return [func(item) for item in items]
    global _MAP_STATE
    _MAP_STATE = (func, items)
    try:
        with _FORK_CTX.Pool(processes=min(n_workers, len(items))) as mp_pool:
            return mp_pool.map(_map_one, range(len(items)))
    finally:
        _MAP_STATE = None
