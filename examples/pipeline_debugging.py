"""Pipeline debugging with fine-grained provenance (paper Figure 3).

Builds the tutorial's preprocessing pipeline — two joins onto side tables, a
sector filter, a UDF column, and a multi-encoder feature stage — then:

1. renders the query plan,
2. executes it with why-provenance tracking,
3. computes Datascope (KNN-Shapley over the pipeline) importance of the
   *source* training tuples,
4. removes the worst tuples directly from the encoded matrix via provenance,
5. screens the pipeline ArgusEyes-style for leakage / label errors / joins.

Run with:  python examples/pipeline_debugging.py
"""

import numpy as np

import repro.core as nde
from repro.datasets import generate_hiring_data
from repro.errors import inject_label_errors
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
    clone,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import PipelinePlan, PipelineScreener, execute
from repro.text import SentenceBertTransformer


def build_pipeline():
    plan = PipelinePlan()
    train = plan.source("train_df")
    jobs = plan.source("jobdetail_df")
    social = plan.source("social_df")
    feature_encoder = ColumnTransformer(
        [
            (SentenceBertTransformer(n_features=32), "letter_text"),
            (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
            (StandardScaler(), ["age", "employer_rating"]),
        ]
    )
    return (
        train.join(jobs, on="job_id")
        .join(social, on="person_id")
        .filter(lambda df: df["sector"] == "healthcare", "sector == 'healthcare'")
        .with_column("has_twitter", lambda df: df["twitter"].notnull(), "has_twitter")
        .encode(feature_encoder, label_column="sentiment")
    )


def main() -> None:
    data = generate_hiring_data(n=900, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    train_err, report = inject_label_errors(train, "sentiment", fraction=0.2, seed=5)
    print(f"injected {report.n_errors} label errors into the source training table\n")

    pipeline = build_pipeline()
    print("pipeline query plan:")
    nde.show_query_plan(pipeline)

    sources = {
        "train_df": train_err,
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }
    X_train, result = nde.with_provenance(pipeline, sources)
    print(f"\nencoded training matrix: {X_train.shape}")
    valid_result = execute(pipeline, dict(sources, train_df=valid), fit=False)

    importances = nde.datascope(result, valid_result, source="train_df")
    lowest = importances.lowest(train_err, 25)
    X_clean, y_clean = nde.remove(
        result, "train_df", train_err.row_ids[lowest].tolist()
    )
    model = KNeighborsClassifier(5)
    acc_before = clone(model).fit(result.X, result.y).score(
        valid_result.X, valid_result.y
    )
    acc_after = clone(model).fit(X_clean, y_clean).score(
        valid_result.X, valid_result.y
    )
    print(f"Removal changed accuracy by {acc_after - acc_before:+.3f} "
          f"({acc_before:.3f} → {acc_after:.3f}).")

    screener = PipelineScreener(
        protected_columns=["race"], side_sources=["social_df"], fail_at="error"
    )
    screening = screener.screen(result, source_frames={"train_df": train_err})
    print("\n" + screening.render())


if __name__ == "__main__":
    main()
