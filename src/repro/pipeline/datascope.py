"""Datascope: Shapley importance over end-to-end ML pipelines (Karlaš et al. [39]).

The importance methods of Section 2.1 score rows of the *encoded training
matrix*. Datascope composes them with provenance so the scores land on rows
of the pipeline's *source tables*, where repairs actually happen:

1. run the pipeline with provenance tracking,
2. compute exact KNN-Shapley values on the encoded output (the KNN proxy
   makes this polynomial), and
3. push each output row's value back to the unique source tuple it descends
   from; source tuples filtered out by the pipeline receive zero (they
   cannot influence the model through this pipeline).

``method="exact_knn"`` goes one step further (Karlaš et al., arXiv
2204.11131): the pipeline is compiled to canonical provenance form
(:mod:`repro.pipeline.canonical`) and the Shapley game is played over
*source rows as players* — each player's coalition membership toggles its
whole candidate group — valued exactly in polynomial time by
:mod:`repro.importance.exact_knn`. That is the correct group-removal
semantics for fan-out pipelines, where pushing per-encoded-row values
back (steps 2–3 above) is only an approximation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..frame import DataFrame
from ..importance.engine import DEFAULT_CACHE_SIZE, ValuationEngine
from ..importance.exact_knn import exact_knn_shapley
from ..importance.knn_shapley import knn_shapley
from ..importance.shapley import shapley_mc
from ..importance.utility import Utility
from ..obs import trace as _obs
from .canonical import compile_pipeline, infer_attribution_source
from .execute import PipelineResult

__all__ = ["SourceImportance", "datascope_importance", "ALLOWED_METHODS"]

#: Valuation methods ``datascope_importance`` accepts; error messages
#: enumerate this tuple so it can never drift from the dispatch below.
ALLOWED_METHODS = ("knn", "shapley_mc", "exact_knn")


@dataclass
class SourceImportance:
    """Importance scores attributed to rows of one pipeline source table."""

    source: str
    by_row_id: dict[int, float]
    method: str = "datascope_knn_shapley"
    extras: dict = field(default_factory=dict)

    def for_frame(self, frame: DataFrame) -> np.ndarray:
        """Scores aligned with a frame's row order (0 for unused rows)."""
        return np.asarray(
            [self.by_row_id.get(int(rid), 0.0) for rid in frame.row_ids]
        )

    def lowest(self, frame: DataFrame, k: int) -> np.ndarray:
        """Positions in ``frame`` of the k least beneficial source rows.

        Rows the pipeline filtered out (score exactly 0 and absent from
        ``by_row_id``) are ranked *after* every surviving row: they cannot
        be the cause of a downstream problem through this pipeline.
        """
        scores = self.for_frame(frame)
        used = np.asarray(
            [int(rid) in self.by_row_id for rid in frame.row_ids], dtype=bool
        )
        sort_key = np.where(used, scores, np.inf)
        k = min(k, len(scores))
        return np.argsort(sort_key, kind="stable")[:k]


def datascope_importance(
    train_result: PipelineResult,
    valid_x: Any,
    valid_y: Any,
    source: str | None = None,
    k: int = 5,
    attribution: str = "unique",
    method: str = "knn",
    model: Any = None,
    n_permutations: int = 30,
    truncation_tolerance: float = 0.0,
    convergence_tolerance: float | None = None,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    engine: ValuationEngine | None = None,
    ledger: Any = None,
) -> SourceImportance:
    """KNN-Shapley importance of a pipeline's source tuples.

    Parameters
    ----------
    train_result:
        A provenance-carrying pipeline run (from
        :func:`repro.pipeline.execute.execute`).
    valid_x, valid_y:
        Validation data *in encoded space* — typically obtained by pushing
        the validation sources through the same fitted pipeline.
    source:
        Which source table to attribute to. Defaults to the single source
        for which each output row has exactly one contributing tuple.
    k:
        KNN proxy neighbourhood size.
    attribution:
        ``"unique"`` requires each output row to descend from exactly one
        tuple of the source (the training base table). ``"shared"`` also
        handles *side tables* — one tuple feeding many output rows — by
        crediting a tuple the full value of every output row it contributed
        to (a tuple's total value is then the sum over its fan-out, matching
        the group-removal semantics of deleting that side tuple).
    method:
        ``"knn"`` (default) computes the exact closed-form KNN-Shapley
        values of the encoded output — the polynomial-time proxy that makes
        Datascope practical. ``"exact_knn"`` compiles the pipeline to
        canonical provenance form and values *source rows as players*
        exactly (group-removal semantics; see
        :mod:`repro.importance.exact_knn` for the map/fork forms and the
        fork ``k=1`` restriction). ``"shapley_mc"`` instead runs
        Monte-Carlo Shapley of an *arbitrary* ``model`` over the encoded
        rows on the shared valuation engine
        (:mod:`repro.importance.engine`), so importance can be measured
        under the pipeline's real downstream model, with subset
        memoization, ``n_workers``-way retraining fan-out, optional
        truncation and convergence-based stopping.
    model:
        Estimator prototype for ``method="shapley_mc"``; defaults to the
        facade's logistic-regression classifier.
    engine:
        Pre-built :class:`ValuationEngine` to reuse (and warm) across
        calls; overrides ``model``/``n_workers``/``cache_size``.
    ledger:
        Optional :class:`~repro.obs.ledger.RunLedger`. With
        ``method="exact_knn"`` the compile fingerprint and an
        ``exact_knn`` valuation event are recorded on it.
    """
    if attribution not in ("unique", "shared"):
        raise ValueError(f"unknown attribution mode: {attribution!r}")
    if method not in ALLOWED_METHODS:
        raise ValueError(
            f"unknown method: {method!r}; allowed methods: "
            f"{', '.join(repr(m) for m in ALLOWED_METHODS)}"
        )
    if train_result.X is None or train_result.y is None:
        raise ValueError("train_result has no encoded output")
    if len(train_result.X) == 0:
        raise ValueError(
            "pipeline produced no encoded rows; nothing to value "
            "(every source tuple was filtered out or quarantined)"
        )
    if source is None:
        source = infer_attribution_source(train_result)

    if method == "exact_knn":
        return _exact_knn_importance(
            train_result, valid_x, valid_y, source=source, k=k, ledger=ledger
        )

    with _obs.span(
        "pipeline.datascope",
        method=method,
        source=source,
        n_rows=len(train_result.provenance),
        attribution=attribution,
    ):
        if method == "knn":
            encoded = knn_shapley(
                train_result.X, train_result.y,
                np.asarray(valid_x, float), np.asarray(valid_y), k=k,
            )
        else:
            if engine is None:
                if model is None:
                    from ..learn.models.logistic import LogisticRegression

                    model = LogisticRegression(max_iter=100)
                utility = Utility(
                    model, train_result.X, train_result.y,
                    np.asarray(valid_x, float), np.asarray(valid_y),
                )
                engine = ValuationEngine(
                    utility, n_workers=n_workers, cache_size=cache_size
                )
            encoded = shapley_mc(
                None,
                n_permutations=n_permutations,
                truncation_tolerance=truncation_tolerance,
                convergence_tolerance=convergence_tolerance,
                seed=seed,
                engine=engine,
            )
    by_row_id: dict[int, float] = {}
    if attribution == "unique":
        src_ids = train_result.provenance.source_row_ids(source)
        for value, rid in zip(encoded.values, src_ids):
            by_row_id[int(rid)] = by_row_id.get(int(rid), 0.0) + float(value)
    else:
        for value, row in zip(encoded.values, train_result.provenance.tuples):
            for name, rid in row:
                if name == source:
                    by_row_id[rid] = by_row_id.get(rid, 0.0) + float(value)
        if not by_row_id:
            raise ValueError(f"no output row has provenance from {source!r}")
    return SourceImportance(
        source=source,
        by_row_id=by_row_id,
        method=f"datascope_{encoded.method}",
        extras={
            "k": k,
            "n_output_rows": len(train_result.provenance),
            "encoded": encoded,
            "attribution": attribution,
            "method": method,
        },
    )


def _exact_knn_importance(
    train_result: PipelineResult,
    valid_x: Any,
    valid_y: Any,
    source: str,
    k: int,
    ledger: Any,
) -> SourceImportance:
    """The exact PTIME path: compile to canonical form, value per player.

    Unlike the push-back paths, attribution semantics are fixed: the
    players *are* source rows, so each value already carries the full
    group-removal meaning and no ``attribution`` mode applies.
    """
    started = time.perf_counter()
    with _obs.span(
        "pipeline.datascope",
        method="exact_knn",
        source=source,
        n_rows=len(train_result.provenance),
        attribution="group",
    ):
        compiled = compile_pipeline(train_result, source=source, ledger=ledger)
        valuation = exact_knn_shapley(
            train_result.X,
            train_result.y,
            np.asarray(valid_x, float),
            np.asarray(valid_y),
            groups=compiled.groups,
            k=k,
        )
    if ledger is not None:
        ledger.record_event(
            "exact_knn",
            config={"source": source, "k": k,
                    "compile_fingerprint": compiled.fingerprint},
            stats=dict(valuation.census, stop_reason=valuation.stop_reason),
            wall_time_s=time.perf_counter() - started,
        )
    by_row_id = {
        int(rid): float(value)
        for rid, value in zip(compiled.player_row_ids, valuation.values)
    }
    return SourceImportance(
        source=source,
        by_row_id=by_row_id,
        method=f"datascope_exact_knn(k={k})",
        extras={
            "k": k,
            "n_output_rows": len(train_result.provenance),
            "valuation": valuation,
            "compiled": compiled,
            "form": compiled.form,
            "compile_fingerprint": compiled.fingerprint,
            "attribution": "group",
            "method": "exact_knn",
        },
    )
