"""Property-based invariants for Column.

The mask is the load-bearing state: every operation must keep it aligned
with the values, missing cells must never leak into reductions or
comparisons, and repairs must clear exactly the requested cells.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import Column

cells = st.lists(
    st.one_of(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), st.none()),
    min_size=1,
    max_size=20,
)


@given(values=cells)
@settings(max_examples=60, deadline=None)
def test_mask_always_aligned(values):
    col = Column(values)
    assert len(col.mask) == len(col.values) == len(values)
    assert col.null_count() == sum(v is None for v in values)


@given(values=cells)
@settings(max_examples=60, deadline=None)
def test_to_list_roundtrip(values):
    col = Column(values)
    assert col.to_list() == [None if v is None else pytest.approx(v) for v in values]


@given(values=cells, fill=st.floats(min_value=-10, max_value=10, allow_nan=False))
@settings(max_examples=60, deadline=None)
def test_fillna_clears_all_missing(values, fill):
    filled = Column(values).fillna(fill)
    assert filled.null_count() == 0
    for original, result in zip(values, filled.to_list()):
        assert result == pytest.approx(fill if original is None else original)


@given(values=cells)
@settings(max_examples=60, deadline=None)
def test_comparisons_never_true_on_missing(values):
    col = Column(values)
    for result in (col > -np.inf, col == col.to_list()[0] if values[0] is not None else col > 0):
        result = np.asarray(result)
        assert not result[col.mask].any()


@given(values=cells)
@settings(max_examples=60, deadline=None)
def test_reductions_ignore_missing(values):
    col = Column(values)
    present = [v for v in values if v is not None]
    if present:
        assert col.sum() == pytest.approx(sum(present))
        assert col.mean() == pytest.approx(np.mean(present))
        assert col.min() == pytest.approx(min(present))
        assert col.max() == pytest.approx(max(present))
    else:
        assert np.isnan(col.mean())
        assert col.min() is None


@given(values=cells, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_take_preserves_cells_and_masks(values, seed):
    col = Column(values)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(values), size=len(values))
    taken = col.take(idx)
    expected = [values[i] for i in idx]
    assert taken.to_list() == [
        None if v is None else pytest.approx(v) for v in expected
    ]


@given(values=cells, seed=st.integers(min_value=0, max_value=1000))
@settings(max_examples=60, deadline=None)
def test_set_missing_then_set_values_roundtrip(values, seed):
    col = Column(values)
    rng = np.random.default_rng(seed)
    pos = int(rng.integers(len(values)))
    blanked = col.set_missing([pos])
    assert blanked.to_list()[pos] is None
    repaired = blanked.set_values([pos], [1.5])
    assert repaired.to_list()[pos] == 1.5
    # All other cells untouched through the round trip.
    for i in range(len(values)):
        if i != pos:
            assert repaired.to_list()[i] == col.to_list()[i]


@given(a=cells, b=cells)
@settings(max_examples=60, deadline=None)
def test_concat_preserves_order_and_masks(a, b):
    combined = Column.concat([Column(a), Column(b)])
    expected = [None if v is None else pytest.approx(v) for v in a + b]
    assert combined.to_list() == expected
