"""repro — Navigating Data Errors in Machine Learning Pipelines.

A from-scratch reproduction of the toolkit described in the SIGMOD'25
tutorial *"Navigating Data Errors in Machine Learning Pipelines: Identify,
Debug, and Learn"* (Karlaš, Salimi, Schelter), organised around the
tutorial's three pillars:

- **Identify** (:mod:`repro.importance`): data-importance methods — LOO,
  Monte-Carlo / exact KNN Shapley, Banzhaf, Beta-Shapley, influence
  functions, TracIn, confident learning, AUM, Gopher fairness debugging.
- **Debug** (:mod:`repro.pipeline`): provenance-tracked preprocessing
  pipelines, Datascope importance over pipelines, mlinspect-style
  inspections, ArgusEyes-style screening, complaint-driven debugging.
- **Learn** (:mod:`repro.uncertainty`): Zorro possible-worlds training,
  certain predictions for KNN over incomplete data, certain and
  approximately-certain models, dataset multiplicity.

Substrates (all built in-repo; no pandas / scikit-learn dependency):
:mod:`repro.frame` (DataFrame with stable row ids), :mod:`repro.learn`
(models, preprocessing, metrics), :mod:`repro.text` (offline text
embedding), :mod:`repro.datasets`, :mod:`repro.errors` (ground-truth error
injection), :mod:`repro.cleaning`, :mod:`repro.challenge`, :mod:`repro.viz`.

The paper's hands-on API lives in :mod:`repro.core`::

    import repro.core as nde
    train, valid, test = nde.load_recommendation_letters()
"""

from . import (
    challenge,
    cleaning,
    core,
    datasets,
    errors,
    frame,
    importance,
    learn,
    obs,
    pipeline,
    queries,
    robust,
    service,
    text,
    unlearning,
    uncertainty,
    viz,
)

__version__ = "1.0.0"

__all__ = [
    "challenge",
    "cleaning",
    "core",
    "datasets",
    "errors",
    "frame",
    "importance",
    "learn",
    "obs",
    "pipeline",
    "queries",
    "robust",
    "service",
    "text",
    "unlearning",
    "uncertainty",
    "viz",
    "__version__",
]
