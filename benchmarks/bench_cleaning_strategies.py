"""Experiment F2-task — iterative cleaning, strategy comparison.

The hands-on task asks attendees to build an iterative cleaning loop and
observe that importance-guided cleaning recovers model quality faster than
random cleaning. This bench runs the loop for a panel of strategies and
reports the accuracy-vs-budget curves plus the area-under-curve ranking.
Shape to reproduce: informed strategies dominate random on AUC.
"""

import numpy as np

from repro.cleaning import CleaningOracle, activeclean, iterative_cleaning, make_strategy
from repro.core import default_featurize
from repro.datasets import load_recommendation_letters
from repro.errors import inject_label_errors
from repro.learn import KNeighborsClassifier
from repro.viz import format_records, line_chart

STRATEGIES = ["random", "knn_shapley", "confident_learning", "aum", "influence"]
BATCH = 25
ROUNDS = 4


def run_strategy_panel() -> dict:
    train, valid, __ = load_recommendation_letters(n=420, seed=9)
    dirty, report = inject_label_errors(train, "sentiment", fraction=0.25, seed=2)
    model = KNeighborsClassifier(5)
    curves = {}
    for name in STRATEGIES:
        oracle = CleaningOracle(train)
        curves[name] = iterative_cleaning(
            dirty, valid, default_featurize, "sentiment", oracle,
            make_strategy(name, seed=1), model,
            batch_size=BATCH, n_rounds=ROUNDS, strategy_name=name,
        )
    oracle = CleaningOracle(train)
    curves["activeclean"] = activeclean(
        dirty, valid, default_featurize, "sentiment", oracle,
        batch_size=BATCH, n_rounds=ROUNDS, seed=1,
    )
    return curves


def test_cleaning_strategy_comparison(benchmark, write_report):
    curves = benchmark.pedantic(run_strategy_panel, rounds=1, iterations=1)

    budgets = curves["random"].budgets()
    chart = line_chart(
        budgets,
        {name: curve.accuracies() for name, curve in curves.items()},
        title="Validation accuracy vs cleaning budget (25% label errors)",
        x_label="tuples cleaned",
    )
    table = format_records(
        sorted(
            (
                {
                    "strategy": name,
                    "auc": curve.area_under_curve(),
                    "final_accuracy": curve.final_accuracy,
                }
                for name, curve in curves.items()
            ),
            key=lambda r: -r["auc"],
        )
    )
    write_report("cleaning_strategies", chart + "\n\n" + table)

    random_auc = curves["random"].area_under_curve()
    informed = [n for n in curves if n != "random"]
    # Who wins: importance-guided cleaning dominates random on AUC for the
    # majority of strategies (individual strategies can tie on easy seeds).
    beats = sum(curves[n].area_under_curve() >= random_auc for n in informed)
    assert beats >= len(informed) - 1
    best = max(curves, key=lambda n: curves[n].area_under_curve())
    assert best != "random"
