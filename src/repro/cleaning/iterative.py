"""Iterative prioritised cleaning — the hands-on session's attendee task.

Loop: rank the (remaining dirty) training tuples by a strategy, hand the
most suspicious batch to the cleaning oracle, retrain, measure. The output
is a cleaning *curve* (quality vs repairs spent), the object the tutorial's
Figure 2 distils into "cleaning some records improved accuracy from 0.76 to
0.79" and the benchmarks compare across strategies.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

import numpy as np

from ..frame import DataFrame
from ..learn.base import Estimator, clone
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from .oracle import CleaningOracle
from .strategies import Strategy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.ledger import RunLedger

__all__ = ["CleaningCurve", "iterative_cleaning"]


@dataclass
class CleaningCurve:
    """Records of an iterative cleaning run, one per round (round 0 = dirty)."""

    strategy: str
    records: list[dict] = field(default_factory=list)

    def budgets(self) -> list[int]:
        return [r["n_cleaned"] for r in self.records]

    def accuracies(self, split: str = "valid") -> list[float]:
        return [r[f"{split}_accuracy"] for r in self.records]

    @property
    def initial_accuracy(self) -> float:
        return self.records[0]["valid_accuracy"]

    @property
    def final_accuracy(self) -> float:
        return self.records[-1]["valid_accuracy"]

    def area_under_curve(self, split: str = "valid") -> float:
        """Mean accuracy across rounds — rewards *early* gains, the metric
        that separates prioritised from random cleaning."""
        return float(np.mean(self.accuracies(split)))


def iterative_cleaning(
    dirty_train: DataFrame,
    valid: DataFrame,
    featurize: Callable[[DataFrame], np.ndarray],
    label_column: str,
    oracle: CleaningOracle,
    strategy: Strategy,
    model: Estimator,
    batch_size: int = 25,
    n_rounds: int = 4,
    test: DataFrame | None = None,
    strategy_name: str = "",
    ledger: "RunLedger | None" = None,
) -> CleaningCurve:
    """Run prioritised cleaning for ``n_rounds`` batches.

    ``featurize`` maps any frame with the training schema to a feature
    matrix; it is re-applied after every repair so feature encoders see the
    cleaned values. Already-cleaned rows are excluded from later batches.
    Pass a :class:`repro.obs.RunLedger` to append one ``"cleaning"`` event
    per call (strategy, budget spent, accuracy curve) to the run store.
    """
    started = time.perf_counter()
    def labels_of(frame: DataFrame) -> np.ndarray:
        return np.asarray(frame.column(label_column).to_list())

    def evaluate(frame: DataFrame) -> dict:
        fitted = clone(model).fit(featurize(frame), labels_of(frame))
        record = {
            "valid_accuracy": float(fitted.score(x_valid, y_valid)),
        }
        if test is not None:
            record["test_accuracy"] = float(fitted.score(x_test, y_test))
        return record

    x_valid = featurize(valid)
    y_valid = labels_of(valid)
    if test is not None:
        x_test = featurize(test)
        y_test = labels_of(test)

    current = dirty_train.copy()
    cleaned: set[int] = set()
    curve = CleaningCurve(strategy=strategy_name or getattr(strategy, "__name__", "strategy"))
    with _obs.span(
        "cleaning.iterative",
        strategy=curve.strategy,
        batch_size=batch_size,
        n_rounds=n_rounds,
    ):
        curve.records.append({"round": 0, "n_cleaned": 0, **evaluate(current)})
        for round_no in range(1, n_rounds + 1):
            with _obs.span("cleaning.round", round=round_no) as sp:
                x_train = featurize(current)
                y_train = labels_of(current)
                ranking = strategy(x_train, y_train, x_valid, y_valid)
                batch = [
                    p for p in ranking if int(current.row_ids[p]) not in cleaned
                ][:batch_size]
                if not batch:
                    break
                batch_ids = [int(current.row_ids[p]) for p in batch]
                current = oracle.clean(current, batch_ids)
                cleaned.update(batch_ids)
                record = {
                    "round": round_no, "n_cleaned": len(cleaned), **evaluate(current)
                }
                curve.records.append(record)
                if _obs.enabled():
                    sp.set(
                        n_cleaned=len(cleaned),
                        valid_accuracy=record["valid_accuracy"],
                    )
                    _obs_metrics.counter("cleaning.rows_cleaned").inc(len(batch))
                    _obs_metrics.counter("cleaning.rounds").inc()
    if ledger is not None:
        ledger.record_event(
            "cleaning",
            config={
                "strategy": curve.strategy,
                "batch_size": batch_size,
                "n_rounds": n_rounds,
            },
            stats={
                "rounds_run": len(curve.records) - 1,
                "n_cleaned": curve.records[-1]["n_cleaned"],
                "initial_accuracy": curve.initial_accuracy,
                "final_accuracy": curve.final_accuracy,
                "area_under_curve": curve.area_under_curve(),
            },
            wall_time_s=time.perf_counter() - started,
        )
    return curve
