"""Cleaning-prioritisation strategies.

A *strategy* inspects the current (partially cleaned) training data and
returns a ranking of training positions, most-suspicious first. All
importance methods of :mod:`repro.importance` are wrapped here behind one
callable signature so the iterative cleaner and the benchmarks can compare
them head-to-head, exactly as the hands-on session asks attendees to do.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol

import numpy as np

from ..importance import (
    Utility,
    aum_importance,
    banzhaf_mc,
    confident_learning,
    influence_importance,
    knn_shapley,
    loo_importance,
    shapley_mc,
    tracin_importance,
)
from ..learn.base import Estimator
from ..learn.models.logistic import LogisticRegression

__all__ = ["Strategy", "make_strategy", "STRATEGY_NAMES"]


class Strategy(Protocol):
    """Callable ranking training positions, most suspicious first."""

    def __call__(
        self,
        x_train: np.ndarray,
        y_train: np.ndarray,
        x_valid: np.ndarray,
        y_valid: np.ndarray,
    ) -> np.ndarray: ...


STRATEGY_NAMES = (
    "random",
    "loo",
    "shapley_mc",
    "banzhaf",
    "knn_shapley",
    "influence",
    "tracin",
    "confident_learning",
    "aum",
)


def make_strategy(
    name: str,
    model: Estimator | None = None,
    k: int = 5,
    n_permutations: int = 20,
    n_samples: int = 100,
    seed: int = 0,
) -> Strategy:
    """Build a ranking strategy by name.

    ``model`` is the utility/probe model for the retraining-based and
    gradient-based strategies (defaults to logistic regression).
    """
    if name not in STRATEGY_NAMES:
        raise ValueError(f"unknown strategy {name!r}; have {STRATEGY_NAMES}")

    def probe_model() -> Estimator:
        return model if model is not None else LogisticRegression(max_iter=100)

    def strategy(x_train, y_train, x_valid, y_valid) -> np.ndarray:
        x_train = np.asarray(x_train, dtype=float)
        y_train = np.asarray(y_train)
        n = len(y_train)
        if name == "random":
            return np.random.default_rng(seed).permutation(n)
        if name == "knn_shapley":
            result = knn_shapley(x_train, y_train, x_valid, y_valid, k=k)
        elif name == "confident_learning":
            result = confident_learning(x_train, y_train, model=probe_model(), seed=seed)
        elif name == "aum":
            result = aum_importance(x_train, y_train, seed=seed)
        elif name == "influence":
            fitted = LogisticRegression().fit(x_train, y_train)
            result = influence_importance(fitted, x_train, y_train, x_valid, y_valid)
        elif name == "tracin":
            fitted = LogisticRegression().fit(x_train, y_train)
            result = tracin_importance(fitted, x_train, y_train, x_valid, y_valid)
        else:
            utility = Utility(probe_model(), x_train, y_train, x_valid, y_valid)
            if name == "loo":
                result = loo_importance(utility)
            elif name == "shapley_mc":
                result = shapley_mc(
                    utility,
                    n_permutations=n_permutations,
                    truncation_tolerance=0.01,
                    seed=seed,
                )
            else:  # banzhaf
                result = banzhaf_mc(utility, n_samples=n_samples, seed=seed)
        return np.argsort(result.values, kind="stable")

    strategy.__name__ = f"strategy_{name}"
    return strategy
