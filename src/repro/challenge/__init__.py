"""Data-centric challenges: debugging (clean) and DataPerf-style selection."""

from .challenge import ChallengeSubmission, DebuggingChallenge
from .leaderboard import Leaderboard, LeaderboardEntry
from .selection import SelectionChallenge, SelectionSubmission

__all__ = [
    "ChallengeSubmission",
    "DebuggingChallenge",
    "Leaderboard",
    "LeaderboardEntry",
    "SelectionChallenge",
    "SelectionSubmission",
]
