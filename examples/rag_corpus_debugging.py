"""Debugging a retrieval-augmented generation corpus with data importance.

The survey covers data importance specialised for RAG (Lyu et al. [47]):
in a RAG system the "training data" is the retrieval corpus, and corpus
errors (stale or poisoned documents) corrupt answers. Because retrieval-
then-vote is a KNN model over the embedding space, exact KNN-Shapley
applies directly to corpus entries.

1. build a small fact corpus with contradicting (poisoned) documents,
2. watch answer accuracy degrade,
3. compute per-document KNN-Shapley importance against a query workload,
4. prune the lowest-value documents and watch accuracy recover.

Run with:  python examples/rag_corpus_debugging.py
"""

import numpy as np

from repro.importance import RetrievalCorpus, rag_importance
from repro.text import TextEmbedder
from repro.viz import format_records

FACTS = [
    ("france", "paris"), ("japan", "tokyo"), ("kenya", "nairobi"),
    ("brazil", "brasilia"), ("canada", "ottawa"), ("norway", "oslo"),
    ("egypt", "cairo"), ("india", "delhi"), ("chile", "santiago"),
    ("ghana", "accra"), ("peru", "lima"), ("spain", "madrid"),
]
POISONED = [("france", "lyon"), ("japan", "osaka")]


def main() -> None:
    documents = [f"the capital city of {c} is {cap}" for c, cap in FACTS]
    answers = [cap for __, cap in FACTS]
    for country, wrong in POISONED:
        for suffix in ("", " indeed"):  # two near-duplicate poison copies
            documents.append(f"the capital city of {country} is {wrong}{suffix}")
            answers.append(wrong)

    corpus = RetrievalCorpus(
        documents, np.asarray(answers), embedder=TextEmbedder(n_features=256)
    )
    queries = [f"what is the capital city of {c}" for c, __ in FACTS]
    truth = [cap for __, cap in FACTS]

    accuracy = corpus.accuracy(queries, truth, k=3)
    print(f"corpus of {len(corpus)} documents "
          f"({len(POISONED) * 2} poisoned) → answer accuracy {accuracy:.2f}\n")

    importance = rag_importance(corpus, queries, truth, k=3)
    print("per-document importance (lowest first):")
    order = np.argsort(importance.values)
    rows = [
        {
            "doc": corpus.documents[i][:48],
            "answer": str(corpus.answers[i]),
            "importance": importance.values[i],
        }
        for i in order[:6]
    ]
    print(format_records(rows))

    pruned = corpus.without(importance.lowest(len(POISONED) * 2).tolist())
    recovered = pruned.accuracy(queries, truth, k=3)
    print(
        f"\npruning the {len(POISONED) * 2} lowest-value documents recovers "
        f"accuracy {accuracy:.2f} → {recovered:.2f}"
    )


if __name__ == "__main__":
    main()
