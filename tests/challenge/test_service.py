"""The debugging challenge served through the job runtime."""

from __future__ import annotations

import asyncio

import pytest

from repro.challenge import (
    DebuggingChallenge,
    leaderboard_request,
    register_challenge,
    submission_request,
)
from repro.service import AdmissionPolicy, JobRuntime, JobState


@pytest.fixture(scope="module")
def challenge():
    return DebuggingChallenge(n=80, cleaning_budget=20)


def test_submissions_and_leaderboard_roundtrip(challenge):
    async def main():
        runtime = JobRuntime(policy=AdmissionPolicy(max_queue_depth=16))
        register_challenge(runtime, challenge)
        async with runtime:
            errors = challenge.reveal_errors()[:5].tolist()
            alice = runtime.submit(submission_request("alice", errors))
            bob = runtime.submit(submission_request("bob", [0]))
            alice_out = await alice.wait()
            bob_out = await bob.wait()
            board = await runtime.submit(leaderboard_request()).wait()
        assert alice_out["n_cleaned"] == 5
        assert 0.0 <= alice_out["hidden_test_accuracy"] <= 1.0
        assert bob_out["participant"] == "bob"
        names = [entry["participant"] for entry in board["standings"]]
        assert set(names) == {"alice", "bob"}
        assert board["standings"][0]["rank"] == 1
        assert board["baseline_accuracy"] == challenge.baseline_accuracy

    asyncio.run(main())


def test_submissions_never_dedup_but_leaderboard_reads_do(challenge):
    async def main():
        runtime = JobRuntime(max_concurrency=1)
        register_challenge(runtime, challenge)
        async with runtime:
            first = runtime.submit(submission_request("carol", [1]))
            second = runtime.submit(submission_request("carol", [1]))
            assert first is not second  # every attempt spends real budget
            await first.wait(), await second.wait()

            poll_a = runtime.submit(leaderboard_request(tenant="carol"))
            poll_b = runtime.submit(leaderboard_request(tenant="dave"))
            # Identical pure reads share one execution across tenants.
            assert poll_a is poll_b and poll_a.subscribers == 2
            await poll_a.wait()
        assert all(
            job.state in (JobState.COMPLETED, JobState.DEGRADED)
            for job in runtime.jobs.values()
        )

    asyncio.run(main())


def test_participant_is_the_tenant(challenge):
    request = submission_request("erin", [2], priority=3)
    assert request.tenant == "erin"
    assert request.priority == 3
    assert request.dedup is False
    assert request.params["row_ids"] == [2]
