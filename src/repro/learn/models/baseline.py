"""Trivial baseline models."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..base import Estimator, check_matrix, check_xy

__all__ = ["MajorityClassifier", "RandomClassifier"]


class MajorityClassifier(Estimator):
    """Always predicts the most frequent training label.

    Serves as the floor in benchmark tables: a debugging intervention that
    fails to beat this baseline did not help.
    """

    def fit(self, X: Any, y: Any) -> "MajorityClassifier":
        __, y = check_xy(X, y)
        self.classes_, counts = np.unique(y, return_counts=True)
        self.majority_ = self.classes_[np.argmax(counts)]
        self.prior_ = counts / counts.sum()
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        return np.repeat(np.asarray([self.majority_]), len(check_matrix(X)))

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        return np.tile(self.prior_, (len(check_matrix(X)), 1))


class RandomClassifier(Estimator):
    """Predicts labels uniformly at random from the training classes."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)

    def fit(self, X: Any, y: Any) -> "RandomClassifier":
        __, y = check_xy(X, y)
        self.classes_ = np.unique(y)
        return self

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        rng = np.random.default_rng(self.seed)
        return rng.choice(self.classes_, size=len(check_matrix(X)))
