"""Learning from uncertain and incomplete data (survey Section 2.3).

- :mod:`intervals` / :mod:`zonotope`: sound set-arithmetic substrates.
- :mod:`symbolic`: possible-worlds encodings (``encode_symbolic``).
- :mod:`zorro`: Zorro-style enclosure of all models any world could
  produce, with prediction ranges and worst-case losses.
- :mod:`certain_predictions`: exact certainty checks for KNN over
  incomplete data, plus CPClean-style cleaning-effort ordering.
- :mod:`certain_models`: certain / approximately-certain model checks for
  regression and SVMs.
- :mod:`multiplicity`: dataset-multiplicity robustness under label flips.
"""

from .certain_models import (
    CertainModelVerdict,
    approximately_certain_model,
    certain_model_regression,
    certain_model_svm,
)
from .certain_predictions import (
    CertainPredictionReport,
    certain_prediction,
    certain_prediction_report,
    cpclean_order,
    distance_intervals,
)
from .fairness_range import FairnessRange, demographic_parity_range, group_metric_range
from .intervals import Interval
from .multiplicity import MultiplicityProfile, knn_flip_robustness, sampled_multiplicity
from .symbolic import UncertainDataset, encode_symbolic, from_matrix_with_nans
from .zonotope import Zonotope
from .zorro import (
    RobustLinearModel,
    ZorroTrainer,
    estimate_with_zorro,
    gradient_descent_train,
    ridge_solve,
)

__all__ = [
    "CertainModelVerdict",
    "approximately_certain_model",
    "certain_model_regression",
    "certain_model_svm",
    "CertainPredictionReport",
    "certain_prediction",
    "certain_prediction_report",
    "cpclean_order",
    "distance_intervals",
    "FairnessRange",
    "demographic_parity_range",
    "group_metric_range",
    "Interval",
    "MultiplicityProfile",
    "knn_flip_robustness",
    "sampled_multiplicity",
    "UncertainDataset",
    "encode_symbolic",
    "from_matrix_with_nans",
    "Zonotope",
    "RobustLinearModel",
    "ZorroTrainer",
    "estimate_with_zorro",
    "gradient_descent_train",
    "ridge_solve",
]
