"""CART decision-tree classifier (gini impurity, numeric features).

Decision trees appear in the tutorial twice: as an ordinary model, and as the
model class for which robustness to programmable data bias is certified
(Meyer et al. [54]); :mod:`repro.uncertainty.multiplicity` retrains this tree
across possible worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..base import Estimator, check_matrix, check_xy

__all__ = ["DecisionTreeClassifier"]


@dataclass
class _Node:
    """A binary split (or leaf when ``feature`` is None)."""

    prediction: int  # index into classes_
    proba: np.ndarray  # class distribution at the node
    feature: Optional[int] = None
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


def _gini(counts: np.ndarray) -> float:
    total = counts.sum()
    if total == 0:
        return 0.0
    p = counts / total
    return float(1.0 - np.sum(p * p))


class DecisionTreeClassifier(Estimator):
    """Greedy CART with gini impurity and midpoint thresholds.

    Parameters
    ----------
    max_depth:
        Maximum tree depth (root = depth 0).
    min_samples_split:
        Do not split nodes smaller than this.
    min_impurity_decrease:
        Minimum gini gain required to accept a split.
    """

    def __init__(
        self,
        max_depth: int = 8,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 0.0,
    ) -> None:
        self.max_depth = int(max_depth)
        self.min_samples_split = int(min_samples_split)
        self.min_impurity_decrease = float(min_impurity_decrease)

    def fit(self, X: Any, y: Any) -> "DecisionTreeClassifier":
        X, y = check_xy(X, y)
        self.classes_, y_index = np.unique(y, return_inverse=True)
        self.n_features_ = X.shape[1]
        self.root_ = self._build(X, y_index, depth=0)
        return self

    def _class_counts(self, y_index: np.ndarray) -> np.ndarray:
        return np.bincount(y_index, minlength=len(self.classes_)).astype(float)

    def _best_split(
        self, X: np.ndarray, y_index: np.ndarray
    ) -> tuple[int, float, float] | None:
        """Best (feature, threshold, gain) over all features, or None."""
        n = len(y_index)
        parent_counts = self._class_counts(y_index)
        parent_impurity = _gini(parent_counts)
        best: tuple[int, float, float] | None = None
        for feature in range(X.shape[1]):
            order = np.argsort(X[:, feature], kind="stable")
            xs = X[order, feature]
            ys = y_index[order]
            left_counts = np.zeros_like(parent_counts)
            right_counts = parent_counts.copy()
            for i in range(n - 1):
                left_counts[ys[i]] += 1
                right_counts[ys[i]] -= 1
                if xs[i] == xs[i + 1]:
                    continue
                n_left = i + 1
                n_right = n - n_left
                gain = parent_impurity - (
                    n_left * _gini(left_counts) + n_right * _gini(right_counts)
                ) / n
                if best is None or gain > best[2]:
                    threshold = 0.5 * (xs[i] + xs[i + 1])
                    best = (feature, float(threshold), float(gain))
        return best

    def _build(self, X: np.ndarray, y_index: np.ndarray, depth: int) -> _Node:
        counts = self._class_counts(y_index)
        proba = counts / counts.sum()
        node = _Node(prediction=int(np.argmax(counts)), proba=proba)
        if (
            depth >= self.max_depth
            or len(y_index) < self.min_samples_split
            or len(np.unique(y_index)) == 1
        ):
            return node
        split = self._best_split(X, y_index)
        if split is None or split[2] <= self.min_impurity_decrease:
            return node
        feature, threshold, __ = split
        goes_left = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(X[goes_left], y_index[goes_left], depth + 1)
        node.right = self._build(X[~goes_left], y_index[~goes_left], depth + 1)
        return node

    def _route(self, x: np.ndarray) -> _Node:
        node = self.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        idx = np.asarray([self._route(x).prediction for x in X])
        return self.classes_[idx]

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        return np.vstack([self._route(x).proba for x in X])

    def depth(self) -> int:
        """Realised depth of the fitted tree."""
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self.root_)

    def node_count(self) -> int:
        self._require_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return 1 + walk(node.left) + walk(node.right)

        return walk(self.root_)
