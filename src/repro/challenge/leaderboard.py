"""Live leaderboard for the data-debugging challenge."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Leaderboard", "LeaderboardEntry"]


@dataclass
class LeaderboardEntry:
    participant: str
    score: float
    n_submissions: int
    detail: dict = field(default_factory=dict)


class Leaderboard:
    """Best-score-per-participant ranking with submission history."""

    def __init__(self) -> None:
        self._best: dict[str, LeaderboardEntry] = {}
        self.history: list[tuple[str, float]] = []

    def record(self, participant: str, score: float, detail: dict | None = None) -> None:
        self.history.append((participant, float(score)))
        current = self._best.get(participant)
        n = (current.n_submissions if current else 0) + 1
        if current is None or score > current.score:
            self._best[participant] = LeaderboardEntry(
                participant, float(score), n, dict(detail or {})
            )
        else:
            current.n_submissions = n

    def standings(self) -> list[LeaderboardEntry]:
        """Entries sorted by best score, descending (ties by name)."""
        return sorted(
            self._best.values(), key=lambda e: (-e.score, e.participant)
        )

    def winner(self) -> LeaderboardEntry | None:
        standings = self.standings()
        return standings[0] if standings else None

    def render(self) -> str:
        lines = ["rank  participant          best score  submissions"]
        for rank, entry in enumerate(self.standings(), start=1):
            lines.append(
                f"{rank:>4}  {entry.participant:<20} {entry.score:>9.4f}  {entry.n_submissions:>11}"
            )
        return "\n".join(lines)
