"""Shapley-value data importance: exact enumeration and Monte-Carlo estimators.

Implements the Data Shapley framework of Ghorbani & Zou [21]: the value of a
training point is its average marginal contribution over all orderings.
The permutation sampler includes the *truncated* variant (TMC-Shapley),
which stops scanning a permutation once the running utility is within a
tolerance of the full-data utility — the marginal contributions beyond that
point are statistically indistinguishable from zero.
"""

from __future__ import annotations

from itertools import permutations
from math import factorial

import numpy as np

from .base import ImportanceResult
from .utility import Utility

__all__ = ["shapley_mc", "shapley_brute_force", "banzhaf_brute_force"]


def shapley_brute_force(utility: Utility) -> ImportanceResult:
    """Exact Shapley values by enumerating all ``n!`` permutations.

    Only feasible for tiny games (n ≤ 8); exists to validate the estimators.
    """
    n = utility.n_train
    if n > 9:
        raise ValueError(f"brute force is infeasible for n={n}")
    cache: dict[frozenset, float] = {}

    def value(subset: frozenset) -> float:
        if subset not in cache:
            cache[subset] = utility.evaluate(sorted(subset))
        return cache[subset]

    totals = np.zeros(n)
    for order in permutations(range(n)):
        seen: frozenset = frozenset()
        prev = value(seen)
        for i in order:
            seen = seen | {i}
            current = value(seen)
            totals[i] += current - prev
            prev = current
    values = totals / factorial(n)
    return ImportanceResult(method="shapley_exact", values=values)


def banzhaf_brute_force(utility: Utility) -> ImportanceResult:
    """Exact Banzhaf values by enumerating all subsets (n ≤ 16)."""
    n = utility.n_train
    if n > 16:
        raise ValueError(f"brute force is infeasible for n={n}")
    cache: dict[int, float] = {}

    def value(bits: int) -> float:
        if bits not in cache:
            subset = [i for i in range(n) if bits >> i & 1]
            cache[bits] = utility.evaluate(subset)
        return cache[bits]

    values = np.zeros(n)
    denom = 2 ** (n - 1)
    for i in range(n):
        total = 0.0
        for bits in range(2**n):
            if bits >> i & 1:
                continue
            total += value(bits | (1 << i)) - value(bits)
        values[i] = total / denom
    return ImportanceResult(method="banzhaf_exact", values=values)


def shapley_mc(
    utility: Utility,
    n_permutations: int = 100,
    truncation_tolerance: float = 0.0,
    seed: int = 0,
) -> ImportanceResult:
    """Permutation-sampling Monte-Carlo Shapley (TMC-Shapley).

    Parameters
    ----------
    n_permutations:
        Number of random orderings to average over. The estimator is
        unbiased for any count; variance shrinks as 1/count.
    truncation_tolerance:
        If > 0, stop scanning a permutation once ``|v(S) − v(N)|`` falls
        below this tolerance and credit zero marginal contribution to the
        remaining points (the TMC speed-up of Ghorbani & Zou).
    """
    if n_permutations < 1:
        raise ValueError("n_permutations must be >= 1")
    rng = np.random.default_rng(seed)
    n = utility.n_train
    full = utility.full_score()
    null = utility.evaluate([])
    totals = np.zeros(n)
    counts = np.zeros(n)
    truncated_scans = 0
    for __ in range(n_permutations):
        order = rng.permutation(n)
        prev = null
        prefix: list[int] = []
        for step, i in enumerate(order):
            if (
                truncation_tolerance > 0.0
                and step > 0
                and abs(full - prev) <= truncation_tolerance
            ):
                # Remaining marginals are credited zero (still counted so the
                # mean stays well-defined).
                counts[order[step:]] += 1
                truncated_scans += 1
                break
            prefix.append(int(i))
            current = utility.evaluate(prefix)
            totals[i] += current - prev
            counts[i] += 1
            prev = current
    values = totals / np.maximum(counts, 1)
    return ImportanceResult(
        method="shapley_mc",
        values=values,
        extras={
            "n_permutations": n_permutations,
            "truncated_scans": truncated_scans,
            "full_score": full,
            "null_score": null,
        },
    )
