"""Experiment T-obs — cost and fidelity of the observability layer.

The tracing contract (:mod:`repro.obs`) is "pay only when you look": every
instrumentation site in the hot paths reduces to one module-global flag
check while tracing is off. This bench quantifies that claim on the
valuation-engine workload and pins it with an assertion:

- the *disabled* per-site cost is measured directly (a microbenchmark of
  the ``span()`` fast path), multiplied by a generous over-estimate of the
  number of sites the enabled run actually hit, and asserted to be < 5% of
  the disabled workload's wall-clock;
- enabled and disabled runs must return bit-identical values (observing a
  run must never perturb it);
- the enabled run's span skeleton must be identical across repeats (the
  determinism the obs tests rely on), and its trace is exported to
  ``benchmarks/results/obs_trace.jsonl`` for the CI artifact.

Direct enabled-vs-disabled wall-clock deltas are reported but not asserted:
on shared CI runners the noise floor exceeds the overhead being measured.

The second experiment prices the *worker-span backhaul*: a warm-pool
parallel run with tracing on ships every worker's spans and metric deltas
home over the result pipes. Best-of-N wall-clock for traced vs untraced
pooled runs is asserted to stay within 5% (plus an absolute noise floor
for short smoke-sized runs), with values bit-identical either way and the
merged trace actually containing the workers' chunk spans.
"""

import os
import time

import numpy as np

from repro.datasets import make_classification
from repro.importance import Utility, ValuationEngine, shapley_mc, valuation_pool
from repro.learn import LogisticRegression
from repro.obs import trace as obs
from repro.obs import tracing
from repro.viz import format_records

ENGINE_N = int(os.environ.get("REPRO_BENCH_ENGINE_N", "60"))
ENGINE_PERMUTATIONS = int(os.environ.get("REPRO_BENCH_ENGINE_PERMS", "6"))
N_VALID = 40
MICROBENCH_CALLS = 200_000
#: Every span comes with a handful of ``enabled()``-gated metric updates;
#: 4 flag checks per span over-counts every instrumentation site in tree.
SITES_PER_SPAN = 4
POOL_WORKERS = int(os.environ.get("REPRO_BENCH_OBS_POOL_WORKERS", "2"))
BACKHAUL_REPEATS = int(os.environ.get("REPRO_BENCH_OBS_REPEATS", "3"))
#: Absolute slack added to the 5% bound: smoke-sized runs finish in tens of
#: milliseconds, where scheduler jitter alone exceeds five percent.
BACKHAUL_NOISE_FLOOR_S = 0.05


def _utility() -> Utility:
    X, y = make_classification(n=ENGINE_N + N_VALID, n_features=4, seed=1)
    return Utility(
        LogisticRegression(max_iter=30),
        X[:ENGINE_N], y[:ENGINE_N], X[ENGINE_N:], y[ENGINE_N:],
    )


def _workload(engine: ValuationEngine, seed: int = 0) -> np.ndarray:
    return shapley_mc(
        None, n_permutations=ENGINE_PERMUTATIONS, seed=seed, engine=engine
    ).values


def _disabled_site_cost() -> float:
    """Seconds per instrumentation site while tracing is off."""
    assert not obs.enabled()
    start = time.perf_counter()
    for __ in range(MICROBENCH_CALLS):
        obs.span("bench.noop")
    return (time.perf_counter() - start) / MICROBENCH_CALLS


def run_overhead() -> dict:
    obs.disable()
    obs.get_recorder().reset()

    start = time.perf_counter()
    disabled_values = _workload(ValuationEngine(_utility()))
    disabled_wall = time.perf_counter() - start
    assert len(obs.get_recorder()) == 0  # no stray spans while off

    reports = []
    enabled_wall = []
    for __ in range(2):
        start = time.perf_counter()
        with tracing() as report:
            values = _workload(ValuationEngine(_utility()))
        enabled_wall.append(time.perf_counter() - start)
        reports.append(report)
    assert np.array_equal(values, disabled_values)

    per_site = _disabled_site_cost()
    n_spans = len(reports[0].spans)
    projected = per_site * n_spans * SITES_PER_SPAN
    return {
        "disabled_wall_s": round(disabled_wall, 4),
        "enabled_wall_s": round(min(enabled_wall), 4),
        "n_spans": n_spans,
        "per_site_ns": round(per_site * 1e9, 1),
        "projected_disabled_overhead_s": projected,
        "overhead_fraction": projected / disabled_wall,
        "_reports": reports,
        "_disabled_wall": disabled_wall,
    }


def test_disabled_overhead_under_five_percent(benchmark, write_report, results_dir):
    row = benchmark.pedantic(run_overhead, rounds=1, iterations=1)
    reports = row.pop("_reports")
    disabled_wall = row.pop("_disabled_wall")
    row["overhead_fraction"] = round(row["overhead_fraction"], 6)
    row["projected_disabled_overhead_s"] = round(
        row["projected_disabled_overhead_s"], 6
    )

    trace_path = results_dir / "obs_trace.jsonl"
    reports[0].save_jsonl(trace_path)
    write_report("obs_overhead", format_records([row]), records=row)

    # The disabled instrumentation path must cost < 5% of the workload even
    # when every site is over-counted 4× at the measured per-call price.
    assert row["projected_disabled_overhead_s"] < 0.05 * disabled_wall

    # Observation fidelity: identical skeletons across repeats, and the
    # engine activity actually landed in the window.
    skeletons = [[s.name for s in r.spans] for r in reports]
    assert skeletons[0] == skeletons[1]
    assert "engine.run_permutations" in skeletons[0]
    assert reports[0].metrics["engine.permutations"]["value"] == (
        ENGINE_PERMUTATIONS
    )
    assert trace_path.exists()


def run_pool_backhaul_overhead() -> dict:
    """Best-of-N pooled wall-clock, tracing (and span backhaul) off vs on.

    Every *timed* run gets its own permutation seed: the warm pool's
    subset cache is shared across engines over the same dataset, so a
    repeated seed would be served from cache and the timing would price
    cache-hit dispatch, not the backhaul riding real evaluations.
    Bit-identity is checked untimed on a shared seed at the end.
    """
    obs.disable()
    obs.get_recorder().reset()

    def pooled_run(seed: int) -> np.ndarray:
        return _workload(
            ValuationEngine(_utility(), n_workers=POOL_WORKERS), seed=seed
        )

    with valuation_pool(n_workers=POOL_WORKERS):
        # Warm the fleet (and the per-fingerprint dataset segments) once so
        # neither side of the comparison pays process start-up.
        pooled_run(seed=10_000)

        disabled_wall = []
        for repeat in range(BACKHAUL_REPEATS):
            start = time.perf_counter()
            pooled_run(seed=repeat)
            disabled_wall.append(time.perf_counter() - start)
        assert len(obs.get_recorder()) == 0  # nothing shipped while off

        enabled_wall = []
        worker_span_counts = []
        for repeat in range(BACKHAUL_REPEATS):
            start = time.perf_counter()
            with tracing() as report:
                pooled_run(seed=1_000 + repeat)
            enabled_wall.append(time.perf_counter() - start)
            worker_span_counts.append(sum(
                1 for s in report.spans if s.name.startswith("worker.")
            ))

        # Fidelity, untimed (cache hits are fine here): a traced pooled
        # run returns exactly what the untraced one did.
        untraced = pooled_run(seed=20_000)
        with tracing():
            traced = pooled_run(seed=20_000)
        assert np.array_equal(traced, untraced)

    disabled_best = min(disabled_wall)
    enabled_best = min(enabled_wall)
    return {
        "pool_workers": POOL_WORKERS,
        "repeats": BACKHAUL_REPEATS,
        "disabled_best_s": round(disabled_best, 4),
        "enabled_best_s": round(enabled_best, 4),
        "backhaul_delta_s": round(enabled_best - disabled_best, 4),
        "backhaul_overhead_fraction": round(
            (enabled_best - disabled_best) / disabled_best, 6
        ),
        "worker_spans_merged": worker_span_counts[0],
        "_disabled_best": disabled_best,
        "_enabled_best": enabled_best,
    }


def test_pool_backhaul_overhead_under_five_percent(benchmark, write_report):
    row = benchmark.pedantic(
        run_pool_backhaul_overhead, rounds=1, iterations=1
    )
    disabled_best = row.pop("_disabled_best")
    enabled_best = row.pop("_enabled_best")
    write_report("obs_backhaul", format_records([row]), records=row)

    # Fidelity first: the traced pooled run actually merged worker spans
    # into the driver trace (the backhaul was exercised, not skipped).
    assert row["worker_spans_merged"] > 0

    # Shipping worker spans home over the result pipes must cost < 5% of
    # the pooled run. Best-of-N suppresses scheduler jitter; the absolute
    # floor keeps smoke-sized runs (tens of ms) from failing on noise.
    assert enabled_best <= (
        1.05 * disabled_best + BACKHAUL_NOISE_FLOOR_S
    )
