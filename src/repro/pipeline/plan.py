"""Query-plan rendering (the paper's ``nde.show_query_plan``).

Renders the operator DAG as an indented ASCII tree, expanding the terminal
encode into per-transformer Project→Encode branches joined by a Concat —
matching the plan shape drawn in the paper's Figure 3.
"""

from __future__ import annotations

from .operators import EncodeNode, Node, SourceNode

__all__ = ["render_plan", "show_query_plan", "plan_summary"]


def _label(node: Node) -> str:
    names = {
        "source": "Source",
        "join": "Join",
        "filter": "Filter",
        "map": "Project (UDF)",
        "project": "Project",
        "encode": "Encode",
    }
    return f"{names.get(node.kind, node.kind)} [{node.describe()}]"


def _render(node: Node, prefix: str, is_last: bool, lines: list[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(prefix + connector + _label(node))
    child_prefix = prefix + ("   " if is_last else "│  ")
    children = list(node.inputs)
    if isinstance(node, EncodeNode):
        # Expand the feature encoder into per-column branches + implicit concat.
        branches = [
            f"Project [{cols if isinstance(cols, str) else ', '.join(cols)}]"
            f" → Encode [{type(t).__name__}]"
            for t, cols in node.encoder.transformers
        ]
        lines.append(child_prefix + "├─ Concat")
        for i, branch in enumerate(branches):
            last_branch = (i == len(branches) - 1) and not children
            marker = "└─ " if last_branch else "├─ "
            lines.append(child_prefix + "│  " + marker + branch)
    for i, child in enumerate(children):
        _render(child, child_prefix, i == len(children) - 1, lines)


def render_plan(sink: Node) -> str:
    """ASCII tree of the pipeline rooted (sink-first) at ``sink``."""
    lines: list[str] = []
    _render(sink, "", True, lines)
    return "\n".join(lines)


def show_query_plan(sink: Node) -> None:
    """Print the query plan (paper API)."""
    print(render_plan(sink))


def plan_summary(sink: Node) -> dict[str, int]:
    """Operator counts by kind for the plan feeding ``sink``."""
    counts: dict[str, int] = {}
    for node in sink.plan.topological_order(sink):
        counts[node.kind] = counts.get(node.kind, 0) + 1
    return counts
