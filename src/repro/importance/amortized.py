"""Stochastic amortization of data importance (Covert et al. [14]).

Monte-Carlo Shapley labels are expensive but *unbiased*: training a
regression model on noisy per-point estimates (features → importance) still
converges to the true importance function, because regression targets only
need to be unbiased, not exact. The pay-off is that importance for new or
unlabelled points becomes a single forward pass — the "model-based
estimation" speed-up the survey's computational-challenges section covers.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..learn.models.linear import RidgeRegression
from .base import ImportanceResult
from .shapley import shapley_mc
from .utility import Utility

__all__ = ["AmortizedImportance", "amortized_shapley"]


class AmortizedImportance:
    """A regression model predicting importance from point features.

    The feature map concatenates the raw features with label-aware context
    (one indicator per class), since a point's value depends on both where
    it sits and what it claims to be.
    """

    def __init__(self, alpha: float = 1.0) -> None:
        self.alpha = float(alpha)
        self._model = RidgeRegression(alpha=alpha)

    def _features(self, X: np.ndarray, y: np.ndarray, classes: np.ndarray) -> np.ndarray:
        """Features ⊕ class indicators ⊕ per-class feature interactions.

        The interactions matter: a point's value depends on whether its
        *label* matches its *location*, which a linear model can only
        express through feature × class cross terms.
        """
        indicators = np.zeros((len(y), len(classes)))
        for j, cls in enumerate(classes.tolist()):
            indicators[:, j] = y == cls
        interactions = [X * indicators[:, j : j + 1] for j in range(len(classes))]
        return np.column_stack([X, indicators, *interactions])

    def fit(
        self, X: Any, y: Any, noisy_values: Any, classes: np.ndarray
    ) -> "AmortizedImportance":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.asarray(classes)
        self._model.fit(self._features(X, y, self.classes_), np.asarray(noisy_values, float))
        return self

    def predict(self, X: Any, y: Any) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        return self._model.predict(self._features(X, y, self.classes_))


def amortized_shapley(
    utility: Utility,
    n_labelled: int = 50,
    n_permutations: int = 10,
    alpha: float = 1.0,
    seed: int = 0,
    n_workers: int = 1,
    engine: Any | None = None,
) -> ImportanceResult:
    """Estimate Shapley importance for *all* points from MC labels on a few.

    1. Draw ``n_labelled`` training points and run (truncated-free)
       permutation MC restricted to cheap budgets to obtain noisy, unbiased
       Shapley labels for them.
    2. Fit the amortization regressor on (features, label) → noisy value.
    3. Predict importance for the whole training set.

    Cost: ``n_permutations`` passes over the full set for the labels (the
    estimator reuses one MC run and reads off the labelled subset), plus a
    ridge solve — far below per-point MC for large n.
    """
    rng = np.random.default_rng(seed)
    n = utility.n_train
    n_labelled = min(n_labelled, n)

    mc = shapley_mc(
        utility, n_permutations=n_permutations, seed=seed,
        n_workers=n_workers, engine=engine,
    )
    labelled = rng.choice(n, size=n_labelled, replace=False)

    model = AmortizedImportance(alpha=alpha)
    classes = np.unique(utility.y_train)
    model.fit(
        utility.x_train[labelled],
        utility.y_train[labelled],
        mc.values[labelled],
        classes,
    )
    values = model.predict(utility.x_train, utility.y_train)
    return ImportanceResult(
        method="amortized_shapley",
        values=values,
        extras={
            "n_labelled": n_labelled,
            "n_permutations": n_permutations,
            "mc_values": mc.values,
            "model": model,
        },
    )
