"""Tests for predictive query processing and aggregate complaints."""

import numpy as np
import pytest

from repro.core import default_featurize
from repro.datasets import load_recommendation_letters
from repro.learn import LogisticRegression, PlattCalibrator
from repro.queries import (
    AggregateComplaint,
    PredictiveQuery,
    resolve_aggregate_complaint,
)


@pytest.fixture(scope="module")
def scenario():
    train, valid, test = load_recommendation_letters(n=400, seed=7)
    y_train = np.asarray(train.column("sentiment").to_list())
    model = LogisticRegression(max_iter=80).fit(default_featurize(train), y_train)
    return train, valid, test, model, y_train


class TestPredictiveQuery:
    def test_positive_rate_grouping(self, scenario):
        __, __, test, model, __ = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex",
            aggregate="positive_rate", positive="positive",
        )
        result = query.run(test)
        assert result.table.columns == ["sex", "positive_rate", "support"]
        groups = np.asarray(test.column("sex").to_list())
        for row in result.table.to_rows():
            members = groups == row["sex"]
            expected = float(
                np.mean(result.predictions[members] == "positive")
            )
            assert row["positive_rate"] == pytest.approx(expected)
            assert row["support"] == int(members.sum())

    def test_support_sums_to_frame_size(self, scenario):
        __, __, test, model, __ = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="race",
            aggregate="count_positive", positive="positive",
        )
        result = query.run(test)
        assert sum(r["support"] for r in result.table.to_rows()) == test.num_rows

    def test_mean_probability_uses_calibrator(self, scenario):
        train, valid, test, model, __ = scenario
        y_valid = np.asarray(valid.column("sentiment").to_list())
        calibrator = PlattCalibrator(model, positive="positive").fit(
            default_featurize(valid), y_valid
        )
        query = PredictiveQuery(
            model, default_featurize, group_column="sex",
            aggregate="mean_probability", positive="positive",
            calibrator=calibrator,
        )
        result = query.run(test)
        for row in result.table.to_rows():
            assert 0.0 <= row["mean_probability"] <= 1.0

    def test_decision_map_applied(self, scenario):
        __, __, test, model, __ = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex",
            positive="positive",
            decision_map={"positive": "invite", "negative": "reject"},
        )
        result = query.run(test)
        assert set(result.predictions.tolist()) <= {"invite", "reject"}

    def test_value_for_unknown_group_raises(self, scenario):
        __, __, test, model, __ = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex", positive="positive"
        )
        with pytest.raises(KeyError):
            query.run(test).value_for("x")

    def test_unknown_aggregate_raises(self, scenario):
        __, __, __, model, __ = scenario
        with pytest.raises(ValueError):
            PredictiveQuery(
                model, default_featurize, group_column="sex", aggregate="median"
            )


class TestAggregateComplaints:
    def test_satisfied_complaint_removes_nothing(self, scenario):
        train, __, test, model, y_train = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex", positive="positive"
        )
        current = query.run(test).value_for("f")
        complaint = AggregateComplaint(group="f", target=current + 0.1, direction="at_most")
        resolution = resolve_aggregate_complaint(
            query, default_featurize(train), y_train, test, complaint
        )
        assert resolution.resolved
        assert len(resolution.removed_positions) == 0

    def test_lowering_complaint_resolves(self, scenario):
        train, __, test, model, y_train = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex", positive="positive"
        )
        before = query.run(test).value_for("f")
        complaint = AggregateComplaint(
            group="f", target=before - 0.08, direction="at_most"
        )
        resolution = resolve_aggregate_complaint(
            query, default_featurize(train), y_train, test, complaint,
            max_removals=60, batch_size=10,
        )
        assert resolution.resolved
        assert resolution.value_after <= before - 0.08 + 1e-9
        assert 0 < len(resolution.removed_positions) <= 60

    def test_raising_complaint_direction(self, scenario):
        train, __, test, model, y_train = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex", positive="positive"
        )
        before = query.run(test).value_for("m")
        complaint = AggregateComplaint(
            group="m", target=before + 0.05, direction="at_least"
        )
        resolution = resolve_aggregate_complaint(
            query, default_featurize(train), y_train, test, complaint,
            max_removals=60, batch_size=10,
        )
        if resolution.resolved:
            assert resolution.value_after >= before + 0.05 - 1e-9
        assert resolution.value_after >= resolution.value_before - 0.02

    def test_impossible_complaint_terminates(self, scenario):
        train, __, test, model, y_train = scenario
        query = PredictiveQuery(
            model, default_featurize, group_column="sex", positive="positive"
        )
        complaint = AggregateComplaint(group="f", target=-1.0, direction="at_most")
        resolution = resolve_aggregate_complaint(
            query, default_featurize(train), y_train, test, complaint, max_removals=20
        )
        assert not resolution.resolved
        assert len(resolution.removed_positions) <= 20

    def test_invalid_direction_raises(self):
        with pytest.raises(ValueError):
            AggregateComplaint(group="f", target=0.5, direction="exactly")

    def test_non_logistic_model_raises(self, scenario):
        train, __, test, __, y_train = scenario
        from repro.learn import KNeighborsClassifier

        knn = KNeighborsClassifier(5).fit(default_featurize(train), y_train)
        query = PredictiveQuery(
            knn, default_featurize, group_column="sex", positive="positive"
        )
        with pytest.raises(TypeError):
            resolve_aggregate_complaint(
                query, default_featurize(train), y_train, test,
                AggregateComplaint(group="f", target=0.0, direction="at_most"),
            )
