"""Tests for mlinspect-style inspections and ArgusEyes-style screening."""

import numpy as np
import pytest

from repro.errors import inject_label_errors, inject_typos
from repro.frame import DataFrame
from repro.pipeline import (
    PipelinePlan,
    PipelineScreener,
    execute,
    feature_constant_screen,
    group_shrinkage,
    join_match_rate,
    label_error_screen,
    missing_value_report,
    train_test_overlap,
)
from tests.pipeline.conftest import build_letters_pipeline


class TestGroupShrinkage:
    def test_detects_disappearing_group(self):
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["g"] != "B", "drop B")
        frame = DataFrame({"g": ["A"] * 50 + ["B"] * 50})
        result = execute(node, {"t": frame})
        issues = group_shrinkage(frame, result, "g")
        assert len(issues) == 1
        assert issues[0].details["group"] == "B"

    def test_silent_on_proportional_filter(self):
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["v"] > 0, "v > 0")
        rng = np.random.default_rng(0)
        frame = DataFrame({"g": ["A", "B"] * 50, "v": rng.normal(size=100)})
        result = execute(node, {"t": frame})
        assert group_shrinkage(frame, result, "g") == []


class TestJoinMatchRate:
    def test_flags_typo_broken_join(self, hiring_data, hiring_splits):
        train, __ = hiring_splits
        plan = PipelinePlan()
        node = plan.source("t").join(plan.source("s"), on="name")
        side = DataFrame(
            {
                "name": train["name"].to_list(),
                "bonus": np.ones(train.num_rows),
            }
        )
        broken_side, __ = inject_typos(side, "name", fraction=0.5, seed=3)
        result = execute(node, {"t": train, "s": broken_side})
        issues = join_match_rate(result, "s", threshold=0.9)
        assert issues and issues[0].details["match_rate"] < 0.9

    def test_silent_on_clean_join(self, hiring_data, hiring_splits):
        train, __ = hiring_splits
        plan = PipelinePlan()
        node = plan.source("t").join(plan.source("j"), on="job_id")
        result = execute(node, {"t": train, "j": hiring_data["jobdetail"]})
        assert join_match_rate(result, "j") == []


class TestLeakageAndLabels:
    def test_train_test_overlap_detected(self, hiring_splits):
        train, valid = hiring_splits
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["age"] > 0, "adult")
        leaky = DataFrame.concat_rows([train, valid.head(10)])
        result = execute(node, {"t": leaky})
        issues = train_test_overlap(result, valid, source="t")
        assert issues and issues[0].severity == "error"
        assert issues[0].details["n_overlap"] == 10

    def test_no_overlap_silent(self, hiring_splits):
        train, valid = hiring_splits
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["age"] > 0, "adult")
        result = execute(node, {"t": train})
        assert train_test_overlap(result, valid, source="t") == []

    def test_label_error_screen_fires_on_dirty_labels(self, sources):
        __, sink = build_letters_pipeline()
        dirty, __ = inject_label_errors(sources["train_df"], "sentiment", 0.25, seed=1)
        result = execute(sink, dict(sources, train_df=dirty))
        issues = label_error_screen(result, flag_fraction_threshold=0.05)
        assert issues
        assert issues[0].details["flag_rate"] > 0.05

    def test_missing_value_report(self, sources):
        __, sink = build_letters_pipeline()
        result = execute(sink, sources)
        issues = missing_value_report(result, threshold=0.2)
        assert any(i.details["column"] == "twitter" for i in issues)

    def test_constant_feature_screen(self):
        plan = PipelinePlan()
        from repro.learn import ColumnTransformer, StandardScaler

        node = plan.source("t").encode(
            ColumnTransformer([(StandardScaler(), ["a", "b"])]), label_column="y"
        )
        frame = DataFrame({"a": [1.0, 2.0], "b": [5.0, 5.0], "y": ["p", "n"]})
        result = execute(node, {"t": frame})
        issues = feature_constant_screen(result)
        assert issues and issues[0].details["dead_dimensions"].tolist() == [1]


class TestScreener:
    def test_clean_pipeline_passes(self, sources, hiring_splits):
        __, sink = build_letters_pipeline()
        result = execute(sink, sources)
        screener = PipelineScreener(
            protected_columns=["race"], side_sources=["jobdetail_df"], fail_at="error"
        )
        report = screener.screen(result, source_frames={"train_df": sources["train_df"]})
        assert report.passed

    def test_leaky_pipeline_fails(self, sources, hiring_splits):
        train, valid = hiring_splits
        __, sink = build_letters_pipeline()
        leaky_sources = dict(
            sources, train_df=DataFrame.concat_rows([train, valid.head(20)])
        )
        result = execute(sink, leaky_sources)
        screener = PipelineScreener()
        report = screener.screen(
            result, test_frame=valid, test_source="train_df"
        )
        assert not report.passed
        assert report.by_severity("error")

    def test_render_mentions_status(self, sources):
        __, sink = build_letters_pipeline()
        result = execute(sink, sources)
        report = PipelineScreener().screen(result)
        assert report.render().startswith("screening:")

    def test_extra_checks_run(self, sources):
        from repro.pipeline import Issue

        __, sink = build_letters_pipeline()
        result = execute(sink, sources)
        screener = PipelineScreener(
            extra_checks=[lambda r: [Issue("custom", "error", "boom")]]
        )
        report = screener.screen(result)
        assert not report.passed
        assert any(i.check == "custom" for i in report.issues)
