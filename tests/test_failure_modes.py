"""Failure-injection tests: degenerate inputs across the public surface.

Every public entry point must either handle a degenerate input sensibly or
fail loudly with a clear exception — never return a silently-wrong result.
These tests feed the library empty datasets, single-class labels, constant
features, all-missing columns, NaN-laced matrices, and zero budgets.
"""

import numpy as np
import pytest

import repro.core as nde
from repro.cleaning import CleaningOracle
from repro.datasets import make_classification
from repro.errors import inject_label_errors, inject_missing
from repro.frame import Column, DataFrame
from repro.importance import (
    Utility,
    aum_importance,
    confident_learning,
    knn_shapley,
    loo_importance,
)
from repro.learn import (
    KNeighborsClassifier,
    LogisticRegression,
    OneHotEncoder,
    SimpleImputer,
    StandardScaler,
)
from repro.pipeline import PipelinePlan, execute
from repro.uncertainty import ZorroTrainer, from_matrix_with_nans


class TestDegenerateFrames:
    def test_empty_frame_roundtrips(self):
        frame = DataFrame({})
        assert frame.shape == (0, 0)
        assert frame.copy().equals(frame)

    def test_zero_row_frame_operations(self):
        frame = DataFrame({"a": np.asarray([], dtype=float)})
        assert frame.filter(np.asarray([], dtype=bool)).num_rows == 0
        assert frame.head().num_rows == 0
        assert frame.describe().num_rows == 1

    def test_all_missing_column(self):
        col = Column([None, None, None])
        assert col.null_count() == 3
        assert np.isnan(col.mean())
        assert col.unique() == []

    def test_join_empty_right(self):
        left = DataFrame({"k": ["a"], "v": [1]})
        right = DataFrame({"k": np.asarray([], dtype=str), "w": np.asarray([], dtype=float)})
        out = left.join(right, on="k", how="left")
        assert out.num_rows == 1
        assert out["w"].to_list() == [None]

    def test_groupby_empty_frame(self):
        frame = DataFrame({"g": np.asarray([], dtype=str), "v": np.asarray([], dtype=float)})
        assert frame.groupby("g").agg({"v": "mean"}).num_rows == 0


class TestDegenerateLearning:
    def test_constant_features_do_not_crash(self):
        X = np.ones((20, 3))
        y = np.asarray([0, 1] * 10)
        for model in (LogisticRegression(max_iter=20), KNeighborsClassifier(3)):
            fitted = model.fit(X, y)
            assert len(fitted.predict(X)) == 20

    def test_single_sample_fit(self):
        model = KNeighborsClassifier(5).fit(np.asarray([[1.0]]), np.asarray([7]))
        assert model.predict(np.asarray([[0.0]]))[0] == 7

    def test_nan_features_scaler_passthrough(self):
        X = np.asarray([[1.0, np.nan], [3.0, 2.0]])
        Z = StandardScaler().fit_transform(X)
        assert np.isnan(Z[0, 1])
        assert np.isfinite(Z[:, 0]).all()

    def test_imputer_then_model_on_heavily_missing_data(self):
        rng = np.random.default_rng(0)
        X, y = make_classification(n=80, seed=0)
        X[rng.random(X.shape) < 0.5] = np.nan
        clean = SimpleImputer("mean").fit_transform(X)
        assert np.isfinite(clean).all()
        LogisticRegression(max_iter=20).fit(clean, y)

    def test_onehot_all_missing_column(self):
        enc = OneHotEncoder().fit([None, None])
        assert enc.categories_ == []
        assert enc.transform([None]).shape == (1, 0)


class TestDegenerateImportance:
    def test_knn_shapley_single_training_point(self):
        result = knn_shapley(
            np.asarray([[0.0]]), np.asarray([1]),
            np.asarray([[0.0]]), np.asarray([1]), k=3,
        )
        assert result.values[0] == pytest.approx(1.0 / 3.0)  # v(N) = 1/k

    def test_confident_learning_tiny_dataset(self):
        X = np.asarray([[0.0], [1.0], [2.0], [3.0]])
        y = np.asarray([0, 0, 1, 1])
        result = confident_learning(X, y, n_splits=2, seed=0)
        assert len(result) == 4

    def test_aum_two_points(self):
        result = aum_importance(np.asarray([[0.0], [1.0]]), np.asarray([0, 1]))
        assert len(result) == 2

    def test_loo_two_points_defined(self):
        X = np.asarray([[0.0], [1.0]])
        y = np.asarray([0, 1])
        utility = Utility(KNeighborsClassifier(1), X, y, X, y)
        result = loo_importance(utility)
        assert len(result) == 2

    def test_utility_all_points_same_class_subset(self):
        X, y = make_classification(n=30, seed=1)
        utility = Utility(LogisticRegression(max_iter=10), X[:20], y[:20], X[20:], y[20:])
        same_class = np.flatnonzero(y[:20] == y[0])
        value = utility.evaluate(same_class)
        assert 0.0 <= value <= 1.0


class TestDegeneratePipelines:
    def test_filter_everything_away(self):
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["v"] > 1e9, "impossible")
        result = execute(node, {"t": DataFrame({"v": [1.0, 2.0]})})
        assert result.n_rows == 0
        assert len(result.provenance) == 0

    def test_encode_empty_output_fails_loudly_or_empty(self):
        from repro.learn import ColumnTransformer

        plan = PipelinePlan()
        node = (
            plan.source("t")
            .filter(lambda df: df["v"] > 1e9, "impossible")
            .encode(
                ColumnTransformer([(StandardScaler(), ["v"])]), label_column="y"
            )
        )
        frame = DataFrame({"v": [1.0], "y": ["a"]})
        result = execute(node, {"t": frame})
        assert result.X.shape[0] == 0

    def test_remove_nonexistent_source_rows_noop(self):
        from repro.learn import ColumnTransformer

        plan = PipelinePlan()
        node = plan.source("t").encode(
            ColumnTransformer([(StandardScaler(), ["v"])]), label_column="y"
        )
        frame = DataFrame({"v": [1.0, 2.0], "y": ["a", "b"]})
        result = execute(node, {"t": frame})
        X, y = result.remove_source_rows("t", [999])
        assert len(X) == 2


class TestDegenerateCleaning:
    def test_oracle_with_empty_request(self):
        train, __, __ = nde.load_recommendation_letters(n=100, seed=0)
        oracle = CleaningOracle(train, budget=5)
        out = oracle.clean(train, [])
        assert out.equals(train)
        assert oracle.spent == 0

    def test_zero_budget_oracle_rejects_everything(self):
        from repro.cleaning import BudgetExhausted

        train, __, __ = nde.load_recommendation_letters(n=100, seed=0)
        oracle = CleaningOracle(train, budget=0)
        with pytest.raises(BudgetExhausted):
            oracle.clean(train, [int(train.row_ids[0])])


class TestDegenerateUncertainty:
    def test_zorro_fully_missing_column(self):
        """An entirely-missing feature: the enclosure must stay sound for
        corner worlds even with maximal per-column uncertainty."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(40, 2))
        y = X[:, 0] * 2.0
        X_nan = X.copy()
        X_nan[:, 1] = np.nan
        # All-missing column: bounds collapse to [0, 0] (no observed range).
        ds = from_matrix_with_nans(X_nan, y)
        model = ZorroTrainer(l2=0.5).fit(ds)
        assert np.all(np.isfinite(model.theta_bounds().hi))

    def test_zorro_single_row(self):
        ds = from_matrix_with_nans(np.asarray([[1.0, np.nan]]), np.asarray([1.0]))
        model = ZorroTrainer(l2=1.0).fit(ds)
        assert np.all(np.isfinite(model.theta_bounds().width))


class TestErrorInjectionEdges:
    def test_inject_on_tiny_frame(self):
        frame = DataFrame({"label": ["a", "b"], "v": [1.0, 2.0]})
        dirty, report = inject_label_errors(frame, "label", fraction=0.5, seed=0)
        assert report.n_errors == 1

    def test_inject_missing_on_fully_missing_column(self):
        frame = DataFrame({"v": Column([None, None, None]), "w": [1.0, 2.0, 3.0]})
        dirty, report = inject_missing(frame, "v", fraction=0.5, seed=0)
        assert report.n_errors == 0  # nothing left to blank

    def test_fraction_one_flips_everything(self):
        frame = DataFrame({"label": ["a", "b"] * 10})
        dirty, report = inject_label_errors(frame, "label", fraction=1.0, seed=0)
        assert report.n_errors == 20
        for a, b in zip(dirty["label"].to_list(), frame["label"].to_list()):
            assert a != b
