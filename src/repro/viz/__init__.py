"""Text-based visualisation: tables, charts, query-plan, trace and run-diff
rendering."""

from .ascii_chart import bar_chart, histogram, line_chart, reliability_chart
from .diff_view import format_run_diff
from .table import format_records, format_table, pretty_print
from .trace_view import format_metrics, format_span_summary, format_trace

__all__ = [
    "bar_chart",
    "histogram",
    "line_chart",
    "reliability_chart",
    "format_records",
    "format_table",
    "pretty_print",
    "format_trace",
    "format_span_summary",
    "format_metrics",
    "format_run_diff",
]
