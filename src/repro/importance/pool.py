"""Persistent worker pool for the valuation engine.

The engine's original fan-out forked a fresh fleet per call: every
``run_permutations`` / ``evaluate_many`` paid process creation, a subset
cache snapshot, and (on worker restart) re-inheriting the whole driver
address space. ``benchmarks/results/engine_speedup.json`` recorded the
bill — a cold "speedup" *below 1×*. This module replaces that with the
amortized substrate the Datascope line of work presupposes:

:class:`WorkerPool`
    A long-lived, supervised fleet created **once**. The training and
    validation arrays are published a single time into a
    :class:`~repro.importance.shm.SharedArrayBundle`; workers rebuild the
    utility around zero-copy read-only views and keep a process-local
    subset cache that persists across waves, runs, and even across
    engines sharing the pool. After creation, the driver streams only
    small *chunk descriptors* — ordering slices, subset keys, seeds/knobs
    — over the existing :class:`~repro.importance.supervision.ChunkDispatcher`
    pipes. A crashed or hung worker is replaced by a process that
    *re-attaches* to the shared segments instead of re-copying the
    dataset, and the driver replays its subset-cache journal so the
    replacement warms straight back up.

:class:`PoolRegistry` and :func:`valuation_pool`
    Pools keyed by utility fingerprint (dataset bytes + model + metric), so
    sequential jobs on the same dataset — the service runtime's common
    case — reuse one warm pool instead of paying setup per job. The
    context manager installs a process-wide registry that
    :class:`~repro.importance.engine.ValuationEngine` (and therefore every
    ``nde.*_values`` facade) leases from automatically.

Cache coherence keeps the driver's cache the single source of truth:
workers report every newly evaluated subset back with their chunk results,
the driver merges them (charging the evaluation census only for subsets it
did not already know — so the census stays bit-identical to serial), and a
monotone journal of merged entries is replayed to each worker via per-slot
watermarks piggybacked on chunk descriptors. Results are merged in chunk
order, so values are bit-identical to serial for any worker count, any
start method, and any crash/retry history.

Start methods: ``fork`` is preferred (cheap worker replacement). On
spawn-only platforms the pool still runs — shared memory plus picklable
chunk descriptors need no fork — provided the utility's model/metric
pickle; otherwise pool construction raises :class:`PoolUnavailable` and
the engine degrades loudly (see ``_warn_no_fork`` in the engine module).

Thread safety: one pool is routinely shared across threads — the service
runtime runs handlers concurrently and :class:`PoolRegistry` hands every
job on a dataset fingerprint the same pool — but the dispatcher's pipes,
per-dispatch chunk ids, and the cache journal's watermarks are all
single-fan-out state. A per-pool re-entrant lock therefore serializes
:meth:`dispatch` (and the journal mutators) so concurrent fan-outs queue
instead of consuming each other's chunk results; see ``_lock``.
"""

from __future__ import annotations

import pickle
import threading
import time
import weakref
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from .checkpoint import config_fingerprint
from .shm import SHM_AVAILABLE, SharedArrayBundle, shareable_arrays
from .supervision import ChunkDispatcher, DeadlinePolicy, SupervisionStats

__all__ = [
    "PoolUnavailable",
    "WorkerPool",
    "PoolRegistry",
    "valuation_pool",
    "current_registry",
    "active_map_pool",
    "utility_fingerprint",
]

#: Journal compaction threshold: when the merged-entry journal exceeds
#: this, the oldest half is dropped (workers that never received those
#: entries simply re-evaluate on demand; the census stays correct because
#: the driver charges per *newly learned* subset, not per worker call).
_JOURNAL_CAP = 65536

#: Arrays a standard :class:`~repro.importance.utility.Utility` carries.
_UTILITY_ARRAYS = ("x_train", "y_train", "x_valid", "y_valid")


class PoolUnavailable(RuntimeError):
    """A worker pool cannot run this utility on this platform."""


# --------------------------------------------------------------------- #
# worker-side task execution                                            #
# --------------------------------------------------------------------- #


def _rebuild_utility(state: dict) -> Any:
    """Worker-side utility: inherited (fork mode) or rebuilt over SHM views."""
    if state.get("utility") is not None:
        return state["utility"], None
    spec = state["spec"]
    attach_started = time.perf_counter()
    with _obs.span("worker.attach", bundle=spec["bundle"].get("name")):
        bundle = SharedArrayBundle.attach(spec["bundle"])
        views = bundle.arrays
    from .utility import Utility

    utility = Utility.__new__(Utility)
    utility.model = spec["model"]
    utility.x_train = views["x_train"]
    utility.y_train = views["y_train"]
    utility.x_valid = views["x_valid"]
    utility.y_valid = views["y_valid"]
    utility.metric = spec["metric"]
    utility.null_score = float(spec["null_score"])
    utility.n_evaluations = 0
    # The bundle must outlive the views: park it on the utility.
    utility._shm_bundle = bundle
    return utility, time.perf_counter() - attach_started


def _pool_local(state: dict) -> dict:
    """Per-worker-process mutable context, built lazily on the first task.

    ``state`` is this process's private copy (fork COW or spawn pickle),
    so mutating it never leaks across workers or back to the driver. The
    local subset cache persists for the worker's lifetime — the warm-pool
    effect — and the one-shot ``meta`` records attach latency for the
    driver's observability satellite.
    """
    local = state.get("_pool_local")
    if local is None:
        utility, attach_s = _rebuild_utility(state)
        local = {
            "utility": utility,
            "cache": {},
            "meta": {"attach_s": attach_s},
        }
        state["_pool_local"] = local
    return local


def _pool_task(state: dict, payload: Mapping[str, Any]):
    """Execute one chunk descriptor; safe to re-execute after crash/hang.

    Every result tuple ends with ``meta`` — None except on a worker's
    first completed chunk, where it carries the attach latency.
    """
    local = _pool_local(state)
    cache: dict = local["cache"]
    for key, value in payload.get("cache", ()):
        cache[tuple(key)] = value
    meta = local["meta"]
    if meta is not None:
        local["meta"] = None
    kind = payload["kind"]
    if kind == "ping":
        return ("ping", meta)
    if kind == "map":
        func = pickle.loads(payload["func"])
        return ("map", [func(item) for item in payload["items"]], meta)

    utility = local["utility"]
    new_entries: dict = {}
    counters = [0, 0]  # hits, misses

    def evaluate(key: tuple[int, ...]) -> float:
        if key in cache:
            counters[0] += 1
            return cache[key]
        counters[1] += 1
        value = float(utility.evaluate(np.asarray(key, dtype=np.int64)))
        cache[key] = value
        new_entries[key] = value
        return value

    evals_before = utility.n_evaluations
    if kind == "permutation":
        from .engine import _scan_orderings

        deltas, truncated = _scan_orderings(
            evaluate,
            payload["orderings"],
            payload["weights"],
            payload["truncation_tolerance"],
            payload["null"],
            payload["full"],
        )
        evals = utility.n_evaluations - evals_before
        _note_worker_counters(evals, counters)
        return (
            "permutation",
            deltas,
            truncated,
            list(new_entries.items()),
            evals,
            counters,
            meta,
        )
    if kind == "subset":
        values = [evaluate(tuple(key)) for key in payload["keys"]]
        evals = utility.n_evaluations - evals_before
        _note_worker_counters(evals, counters)
        return (
            "subset",
            values,
            list(new_entries.items()),
            evals,
            counters,
            meta,
        )
    raise ValueError(f"unknown pool task kind: {kind!r}")  # pragma: no cover


def _note_worker_counters(evals: int, counters: Sequence[int]) -> None:
    """Worker-local metric emission; reaches the driver via telemetry
    backhaul (the driver separately charges ``engine.*`` counters from the
    result census, so these are namespaced ``worker.*`` to avoid
    double-counting one evaluation in the same series)."""
    if not _obs.enabled():
        return
    if counters[0]:
        _obs_metrics.counter("worker.cache.hits").inc(counters[0])
    if counters[1]:
        _obs_metrics.counter("worker.cache.misses").inc(counters[1])
    if evals:
        _obs_metrics.counter("worker.evaluations").inc(evals)


# --------------------------------------------------------------------- #
# fingerprinting                                                        #
# --------------------------------------------------------------------- #


def utility_fingerprint(utility: Any) -> str:
    """Stable identity of the (dataset, model, metric) a pool serves.

    Standard utilities hash their arrays, pickled model prototype, metric
    qualname, and null score — two independently constructed utilities
    over the same data share a pool. Anything unhashable falls back to
    object identity: correct, never shared. Memoized on the utility (its
    arrays are immutable by the engine's contract), so warm-pool leases
    pay the hash once.
    """
    cached = getattr(utility, "_pool_fingerprint", None)
    if cached is not None:
        return cached
    try:
        payload = {
            key: np.ascontiguousarray(getattr(utility, key))
            for key in _UTILITY_ARRAYS
        }
        payload["model"] = config_fingerprint(
            {"pickle": pickle.dumps(utility.model).hex()}
        )
        metric = getattr(utility, "metric", None)
        payload["metric"] = getattr(metric, "__qualname__", repr(metric))
        payload["null_score"] = float(utility.null_score)
        fingerprint = config_fingerprint(payload)
    except Exception:
        return f"id:{id(utility)}"
    try:
        utility._pool_fingerprint = fingerprint
    except Exception:  # pragma: no cover - slotted/frozen utilities
        pass
    return fingerprint


def _utility_spec(utility: Any) -> dict | None:
    """Picklable rebuild recipe for a standard utility, or None.

    Requires the four dataset arrays to be shareable (fixed-itemsize numpy)
    and the model/metric/chaos-free remainder to pickle. Non-standard
    utilities (closures over arbitrary state) return None and ride on fork
    inheritance instead.
    """
    if not all(hasattr(utility, key) for key in _UTILITY_ARRAYS):
        return None
    if not hasattr(utility, "model") or not hasattr(utility, "metric"):
        return None
    arrays = {key: getattr(utility, key) for key in _UTILITY_ARRAYS}
    if not shareable_arrays(arrays):
        return None
    try:
        small = {
            "model": utility.model,
            "metric": utility.metric,
            "null_score": float(utility.null_score),
        }
        pickle.dumps(small)
    except Exception:
        return None
    return {"arrays": arrays, **small}


# --------------------------------------------------------------------- #
# the pool                                                              #
# --------------------------------------------------------------------- #

#: Open pools, newest last — :func:`active_map_pool`'s lookup order.
_OPEN_POOLS: list["weakref.ref[WorkerPool]"] = []
_OPEN_POOLS_LOCK = threading.Lock()


class WorkerPool:
    """Long-lived supervised fleet with a shared-memory data plane.

    Parameters
    ----------
    utility:
        The utility game workers will evaluate. Standard utilities (the
        four dataset arrays + picklable model/metric) are published into
        shared memory and rebuilt in each worker; anything else requires a
        fork-capable platform (workers inherit the object).
    n_workers:
        Fleet size (>= 1).
    start_method:
        ``"fork"``, ``"spawn"``, or None for the platform preference
        (fork where available).
    warmup:
        Dispatch one ping per worker at construction so processes start,
        attach to the segments, and report attach latency before the
        first real chunk arrives. Setup cost is paid here, once, instead
        of inside the first valuation call.
    ledger:
        Optional :class:`repro.obs.RunLedger`; the pool appends a
        ``"pool"`` lifecycle event at close (workers, chunks, shm bytes,
        restarts).
    chunk_timeout_s, hang_factor, max_chunk_retries, max_worker_restarts:
        Supervision knobs, exactly as on the engine.
    hang_floor_s:
        Minimum adaptive hang deadline. A persistent pool observes wildly
        heterogeneous chunk latencies — sub-millisecond warmup pings and
        warm-cache chunks next to multi-second cold model fits — so the
        per-run default floor would flag ordinary cold chunks as hung
        whenever the recent window happens to be fast. Five seconds keeps
        genuine infinite hangs detected without ever tripping on the
        warm-to-cold latency cliff.
    chaos:
        Optional ChaosMonkey forwarded into workers (fork mode, or spawn
        when picklable) for fault-injection tests.
    """

    def __init__(
        self,
        utility: Any,
        n_workers: int,
        start_method: str | None = None,
        warmup: bool = True,
        ledger: Any | None = None,
        chunk_timeout_s: float | None = None,
        hang_factor: float = 8.0,
        hang_floor_s: float = 5.0,
        max_chunk_retries: int = 3,
        max_worker_restarts: int = 32,
        chaos: Any | None = None,
    ) -> None:
        import multiprocessing as mp

        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        available = mp.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in available else "spawn"
        if start_method not in available:
            raise PoolUnavailable(
                f"start method {start_method!r} unavailable on this platform"
            )
        self.n_workers = int(n_workers)
        self.start_method = start_method
        self.ledger = ledger
        self.utility = utility
        self.fingerprint = utility_fingerprint(utility)
        self.supervision = SupervisionStats()
        self._closed = False
        self._created_at = time.perf_counter()
        # Fan-outs are serialized: the dispatcher's pipes and chunk ids are
        # single-dispatch state, so concurrent borrowers (service jobs on
        # one dataset, parallel_map from another thread) queue here rather
        # than stealing each other's results. RLock, so a borrower's
        # nested dispatch (map inside a fan-out callback) cannot deadlock.
        self._lock = threading.RLock()
        # Live borrowers (engines adopting this pool). Weak: a finished
        # job's engine falling out of scope releases its claim without an
        # explicit hand-back, letting the registry evict the pool.
        self._borrower_refs: "weakref.WeakSet[Any]" = weakref.WeakSet()

        spec = _utility_spec(utility)
        self.bundle: SharedArrayBundle | None = None
        if spec is not None and SHM_AVAILABLE:
            self.bundle = SharedArrayBundle.create(spec.pop("arrays"))
            state: dict = {
                "spec": {"bundle": self.bundle.spec(), **spec},
                "utility": None,
            }
            self.mode = f"shm-{start_method}"
        elif start_method == "fork":
            # Closure utilities ride on fork inheritance; still long-lived.
            state = {"spec": None, "utility": utility}
            self.mode = "fork"
        else:
            raise PoolUnavailable(
                "utility cannot cross a spawn boundary (arrays not "
                "shareable or model/metric not picklable) and fork is "
                "unavailable"
            )
        if chaos is not None:
            if start_method == "fork":
                state["chaos"] = chaos
            else:
                try:
                    pickle.dumps(chaos)
                    state["chaos"] = chaos
                except Exception:
                    state["chaos"] = None

        self.shm_bytes = self.bundle.nbytes if self.bundle is not None else 0
        # Cache-coherence journal: every subset the driver has merged, in
        # merge order; per-slot watermarks of what each worker has seen.
        self._journal: list[tuple[tuple[int, ...], float]] = []
        self._known: set[tuple[int, ...]] = set()
        self._journal_dropped = 0
        self._watermarks: dict[int, int] = {}
        self._workers_alive = 0
        self._spawns = 0
        self.chunks_dispatched = 0
        self.chunks_requeued = 0
        self.attach_latencies: list[float] = []
        self._on_event_extra: Callable[[str, int, int], None] | None = None

        self._span = None
        if _obs.enabled():
            self._span = _obs.span(
                "engine.pool.lifecycle",
                n_workers=self.n_workers,
                mode=self.mode,
                shm_bytes=self.shm_bytes,
                fingerprint=self.fingerprint,
            )
            self._span.__enter__()

        self.dispatcher = ChunkDispatcher(
            mp.get_context(start_method),
            self.n_workers,
            state,
            _pool_task,
            deadline=DeadlinePolicy(
                hard_timeout_s=chunk_timeout_s,
                factor=hang_factor,
                floor_s=hang_floor_s,
            ),
            max_chunk_retries=max_chunk_retries,
            max_worker_restarts=max_worker_restarts,
            stats=self.supervision,
            on_event=self._on_event,
            payload_hook=self._payload_hook,
            on_worker_start=self._on_worker_start,
            telemetry_sink=self._absorb_telemetry,
        )
        setup_started = time.perf_counter()
        if warmup:
            self._collect_meta(
                self.dispatcher.dispatch(
                    [{"kind": "ping"} for __ in range(self.n_workers)]
                )
            )
        self.setup_s = time.perf_counter() - setup_started
        with _OPEN_POOLS_LOCK:
            _OPEN_POOLS.append(weakref.ref(self))
        self._finalizer = weakref.finalize(self, _close_pool_resources, self)

    # ------------------------------------------------------------------ #
    # cache coherence                                                    #
    # ------------------------------------------------------------------ #

    def sync_cache(self, entries: Mapping[tuple[int, ...], float]) -> int:
        """Queue driver-cache entries workers have not been told about.

        Called by the engine before each fan-out (and after merging worker
        results) with its full cache; only entries the journal has never
        seen are appended. Returns how many were new.
        """
        added = 0
        with self._lock:
            for key, value in entries.items():
                if key not in self._known:
                    self._known.add(key)
                    self._journal.append((key, value))
                    added += 1
            if len(self._journal) > _JOURNAL_CAP:
                drop = len(self._journal) - _JOURNAL_CAP // 2
                dropped_keys = self._journal[:drop]
                self._journal = self._journal[drop:]
                self._journal_dropped += drop
                for key, __ in dropped_keys:
                    self._known.discard(key)
                for slot in self._watermarks:
                    self._watermarks[slot] = max(
                        0, self._watermarks[slot] - drop
                    )
        return added

    def warm_cache(self, cache: Any) -> int:
        """Replay the journal into an adopting engine's subset cache.

        A fresh engine borrowing a warm pool starts with an empty driver
        cache, but the driver evaluates a few subsets itself (the full
        set for truncation thresholds, ad-hoc :meth:`ValuationEngine.evaluate`
        calls) — without this replay those would re-fit models the pool's
        workers already paid for. ``cache`` is a
        :class:`~repro.importance.engine.SubsetCache`; returns the number
        of entries replayed.
        """
        with self._lock:
            entries = list(self._journal)
        for key, value in entries:
            cache.put(key, value)
        return len(entries)

    def _payload_hook(self, slot: int, payload: Any) -> Any:
        """Attach this worker's journal delta — and, when tracing is on,
        the telemetry flag — to an outgoing descriptor. Spawn-mode workers
        share no globals with the driver, so the flag on the wire copy is
        how they learn that spans/metrics should be captured and shipped
        back. Only the wire copy is touched; the queued payload stays
        pristine for potential re-queues."""
        if not isinstance(payload, dict):  # pragma: no cover - defensive
            return payload
        watermark = self._watermarks.get(slot, 0)
        delta = self._journal[watermark:]
        self._watermarks[slot] = len(self._journal)
        extra: dict[str, Any] = {}
        if delta:
            extra["cache"] = delta
        if _obs.enabled():
            extra["telemetry"] = True
        if not extra:
            return payload
        return {**payload, **extra}

    def _absorb_telemetry(self, items: Sequence[tuple[int, int, Any]]) -> None:
        """Merge worker telemetry shipped with one fan-out's results:
        metric deltas into the registry, spans adopted under per-slot
        ``worker[i]`` group spans beneath the currently open driver span
        (the engine's wave span, or the pool lifecycle span at warmup)."""
        groups: dict[int, Any] = {}
        for slot, __chunk_id, delta in items:
            _obs.merge_worker_telemetry(slot, delta, groups)

    def _on_worker_start(self, slot: int) -> None:
        """A process now occupies ``slot`` with an empty local cache.

        Fired for first spawns and replacements alike: a replacement
        re-attaches to the existing shared segments, so only its cache
        warmth needs replaying — resetting the watermark to zero makes the
        next descriptor carry the full journal.
        """
        self._watermarks[slot] = 0
        self._spawns += 1
        self._workers_alive = len(self._watermarks)
        if _obs.enabled():
            _obs_metrics.gauge("engine.pool.workers_alive").set(
                self._workers_alive
            )
            _obs_metrics.counter("engine.pool.worker_starts").inc()

    def _on_event(self, kind: str, chunk_ord: int, attempt: int) -> None:
        if kind == "retry":
            self.chunks_requeued += 1
            if _obs.enabled():
                _obs_metrics.counter("engine.pool.chunks_requeued").inc()
        if _obs.enabled() and kind in ("crash", "hang", "restart"):
            _obs_metrics.counter(f"engine.pool.{kind}s").inc()
        if self._on_event_extra is not None:
            self._on_event_extra(kind, chunk_ord, attempt)

    # ------------------------------------------------------------------ #
    # borrowers                                                          #
    # ------------------------------------------------------------------ #

    def add_borrower(self, borrower: Any) -> None:
        """Record ``borrower`` (an engine) as a live user of this pool.

        Claims are weak references: when the borrower is garbage-collected
        its claim vanishes, so finished jobs need no explicit hand-back.
        The registry refuses to evict-close a pool while any claim is
        live (see :meth:`PoolRegistry.lease`).
        """
        try:
            self._borrower_refs.add(borrower)
        except TypeError:  # pragma: no cover - non-weakrefable borrower
            pass

    @property
    def borrowed(self) -> bool:
        """Whether any registered borrower is still alive."""
        return len(self._borrower_refs) > 0

    # ------------------------------------------------------------------ #
    # dispatch                                                           #
    # ------------------------------------------------------------------ #

    def dispatch(
        self,
        payloads: Sequence[Mapping[str, Any]],
        on_event: Callable[[str, int, int], None] | None = None,
    ) -> list[Any]:
        """Run chunk descriptors on the fleet; results in payload order.

        ``on_event`` lets the borrowing engine bridge supervision events
        into its own metrics/chaos accounting for the duration of one
        fan-out. Thread-safe: concurrent callers queue on the pool lock —
        one fan-out owns the pipes (and the ``on_event`` slot) at a time.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("worker pool is closed")
            self.chunks_dispatched += len(payloads)
            if _obs.enabled():
                _obs_metrics.counter("engine.pool.chunks_dispatched").inc(
                    len(payloads)
                )
            self._on_event_extra = on_event
            try:
                results = self.dispatcher.dispatch(list(payloads))
            finally:
                self._on_event_extra = None
            self._collect_meta(results)
            return results

    def _collect_meta(self, results: Sequence[Any]) -> None:
        """Harvest first-chunk worker meta (attach latency) from results."""
        for result in results:
            meta = result[-1]
            if meta is not None and meta.get("attach_s") is not None:
                self.attach_latencies.append(float(meta["attach_s"]))
                if _obs.enabled():
                    _obs_metrics.histogram(
                        "engine.pool.attach_latency_s"
                    ).observe(float(meta["attach_s"]))

    def map(self, func: Callable, items: Sequence, n_chunks: int) -> list:
        """Order-preserving ``[func(x) for x in items]`` on the fleet.

        ``func`` must pickle (workers are pre-existing processes, so fork
        inheritance cannot carry a fresh closure); callers should fall
        back to their own fan-out when it does not.
        """
        func_bytes = pickle.dumps(func)
        items = list(items)
        edges = np.linspace(
            0, len(items), min(max(1, n_chunks), len(items)) + 1, dtype=int
        )
        payloads = [
            {"kind": "map", "func": func_bytes, "items": items[a:b]}
            for a, b in zip(edges[:-1], edges[1:])
            if b > a
        ]
        results = self.dispatch(payloads)
        out: list = []
        for result in results:
            out.extend(result[1])
        return out

    # ------------------------------------------------------------------ #
    # lifecycle                                                          #
    # ------------------------------------------------------------------ #

    @property
    def closed(self) -> bool:
        return self._closed

    def stats(self) -> dict:
        attach = self.attach_latencies
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "workers_alive": self._workers_alive,
            "worker_starts": self._spawns,
            "chunks_dispatched": self.chunks_dispatched,
            "chunks_requeued": self.chunks_requeued,
            "shm_bytes": self.shm_bytes,
            "setup_s": round(self.setup_s, 6),
            "attach_latency_s": {
                "count": len(attach),
                "mean": float(np.mean(attach)) if attach else None,
                "max": float(np.max(attach)) if attach else None,
            },
            "journal_entries": len(self._journal),
            "journal_dropped": self._journal_dropped,
            "borrowers": len(self._borrower_refs),
            "supervision": self.supervision.to_dict(),
        }

    def close(self) -> None:
        """Shut workers down and unlink the shared segments. Idempotent.

        Serializes with :meth:`dispatch`: a close racing an in-flight
        fan-out waits for it to drain instead of terminating workers
        under it.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            stats = self.stats()
            self._finalizer.detach()
            _close_pool_resources(self)
        if _obs.enabled():
            _obs_metrics.gauge("engine.pool.workers_alive").set(0)
        if self._span is not None:
            self._span.set(**{"final." + k: v for k, v in stats.items()
                              if not isinstance(v, dict)})
            self._span.__exit__(None, None, None)
            self._span = None
        if self.ledger is not None:
            self.ledger.record_event(
                "pool",
                config={
                    "n_workers": self.n_workers,
                    "mode": self.mode,
                    "fingerprint": self.fingerprint,
                },
                stats=stats,
                wall_time_s=time.perf_counter() - self._created_at,
            )

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _close_pool_resources(pool: WorkerPool) -> None:
    """Terminate workers and unlink segments (finalizer-safe)."""
    pool._closed = True
    try:
        pool.dispatcher.close()
    except Exception:  # pragma: no cover - teardown best effort
        pass
    if pool.bundle is not None:
        pool.bundle.close()


# --------------------------------------------------------------------- #
# registry + context manager                                            #
# --------------------------------------------------------------------- #


class PoolRegistry:
    """Warm pools keyed by utility fingerprint, LRU-bounded.

    ``lease`` returns an existing open pool when the fingerprint matches
    (same dataset bytes, model, metric — sequential service jobs on one
    dataset hit this) and otherwise creates one, evicting and closing the
    least-recently-used pool beyond ``max_pools``. Eviction never closes
    a pool with live borrowers (engines that adopted it register a weak
    claim via :meth:`WorkerPool.add_borrower`): a concurrent job
    mid-dispatch on an LRU pool would otherwise have its workers
    terminated under it. Borrowed pools are skipped — the registry may
    briefly hold more than ``max_pools`` — and become evictable on a
    later lease once their borrowers are garbage-collected.
    Registry-owned pools are closed by :meth:`close_all` (the
    :func:`valuation_pool` context manager's exit), never by the engines
    borrowing them.
    """

    def __init__(
        self,
        n_workers: int = 4,
        max_pools: int = 2,
        start_method: str | None = None,
        ledger: Any | None = None,
        **pool_knobs: Any,
    ) -> None:
        if max_pools < 1:
            raise ValueError("max_pools must be >= 1")
        self.n_workers = int(n_workers)
        self.max_pools = int(max_pools)
        self.start_method = start_method
        self.ledger = ledger
        self.pool_knobs = pool_knobs
        self._pools: dict[str, WorkerPool] = {}
        self._lock = threading.Lock()
        self.leases = 0
        self.reuses = 0

    def lease(
        self, utility: Any, n_workers: int | None = None
    ) -> WorkerPool:
        """An open pool for ``utility`` — warm when the dataset matches.

        A matching warm pool is reused even if its fleet size differs from
        ``n_workers``: warm worker caches beat an exact fleet size.
        """
        workers = (
            int(n_workers) if n_workers and n_workers > 1 else self.n_workers
        )
        fingerprint = utility_fingerprint(utility)
        with self._lock:
            self.leases += 1
            pool = self._pools.get(fingerprint)
            if pool is not None and not pool.closed:
                self.reuses += 1
                self._pools[fingerprint] = self._pools.pop(fingerprint)  # LRU
                return pool
            pool = WorkerPool(
                utility,
                n_workers=workers,
                start_method=self.start_method,
                ledger=self.ledger,
                **self.pool_knobs,
            )
            self._pools[fingerprint] = pool
            if len(self._pools) > self.max_pools:
                # Evict oldest-first, but never a pool with live
                # borrowers (a job may be mid-dispatch on it) and never
                # the pool just leased. Skipped pools overshoot the bound
                # until their borrowers are collected; close_all still
                # reaps everything.
                for key in list(self._pools):
                    if len(self._pools) <= self.max_pools:
                        break
                    candidate = self._pools[key]
                    if candidate is pool or candidate.borrowed:
                        continue
                    self._pools.pop(key).close()
            return pool

    def stats(self) -> dict:
        with self._lock:
            return {
                "pools": len(self._pools),
                "leases": self.leases,
                "reuses": self.reuses,
                "fingerprints": list(self._pools),
            }

    def close_all(self) -> None:
        with self._lock:
            pools = list(self._pools.values())
            self._pools.clear()
        for pool in pools:
            pool.close()


_REGISTRY_STACK: list[PoolRegistry] = []
_REGISTRY_LOCK = threading.Lock()


def current_registry() -> PoolRegistry | None:
    """The innermost active :func:`valuation_pool` registry, if any."""
    with _REGISTRY_LOCK:
        return _REGISTRY_STACK[-1] if _REGISTRY_STACK else None


class valuation_pool:
    """Context manager installing a process-wide warm-pool registry.

    Inside the block, every :class:`ValuationEngine` built with
    ``n_workers > 1`` (including via the ``nde.*_values`` facades and the
    service runtime) leases its fleet from the registry instead of forking
    per run — and engines over the same dataset share one warm pool::

        with nde.valuation_pool(n_workers=4):
            shap = nde.shapley_values(train_df, validation=valid_df,
                                      n_workers=4)
            banz = nde.banzhaf_values(train_df, validation=valid_df,
                                      n_workers=4)   # reuses the warm pool

    Exiting closes every registry-owned pool and unlinks their segments.
    Usable directly as ``valuation_pool(...)`` or via the ``nde`` facade.
    """

    def __init__(self, n_workers: int = 4, **registry_kwargs: Any) -> None:
        self.registry = PoolRegistry(n_workers=n_workers, **registry_kwargs)

    def __enter__(self) -> PoolRegistry:
        with _REGISTRY_LOCK:
            _REGISTRY_STACK.append(self.registry)
        return self.registry

    def __exit__(self, *exc_info) -> None:
        with _REGISTRY_LOCK:
            if self.registry in _REGISTRY_STACK:
                _REGISTRY_STACK.remove(self.registry)
        self.registry.close_all()


def active_map_pool() -> WorkerPool | None:
    """Newest open pool, for :func:`~repro.importance.engine.parallel_map`.

    ``parallel_map`` carries no utility, so any open pool's fleet will do —
    map chunks ship their own pickled function. Dead references are pruned
    as a side effect.
    """
    with _OPEN_POOLS_LOCK:
        alive: list[weakref.ref[WorkerPool]] = []
        found: WorkerPool | None = None
        for ref in _OPEN_POOLS:
            pool = ref()
            if pool is not None and not pool.closed:
                alive.append(ref)
                found = pool
        _OPEN_POOLS[:] = alive
        return found
