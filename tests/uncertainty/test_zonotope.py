"""Tests for the zonotope abstraction."""

import numpy as np
import pytest

from repro.uncertainty import Interval, Zonotope


def members(z: Zonotope, rng: np.random.Generator, n: int = 50):
    """Sample concrete members of a zonotope."""
    for __ in range(n):
        eps = rng.uniform(-1, 1, size=z.n_generators)
        delta = rng.uniform(-1, 1, size=z.dim)
        yield z.center + (eps @ z.generators if z.n_generators else 0) + delta * z.box


class TestBasics:
    def test_point_zonotope(self):
        z = Zonotope([1.0, 2.0])
        assert z.dim == 2
        assert np.allclose(z.radius(), 0.0)

    def test_bounds(self):
        z = Zonotope([0.0], generators=[[1.0]], box=[0.5])
        bounds = z.bounds()
        assert bounds.lo[0] == -1.5 and bounds.hi[0] == 1.5

    def test_negative_box_raises(self):
        with pytest.raises(ValueError):
            Zonotope([0.0], box=[-1.0])

    def test_box_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            Zonotope([0.0, 1.0], box=[1.0])


class TestOperationsSound:
    @pytest.mark.parametrize("seed", range(3))
    def test_linear_map_contains_mapped_members(self, seed):
        rng = np.random.default_rng(seed)
        z = Zonotope(rng.normal(size=3), rng.normal(size=(4, 3)), np.abs(rng.normal(size=3)))
        M = rng.normal(size=(2, 3))
        mapped = z.linear_map(M)
        for x in members(z, rng, 30):
            assert mapped.contains(M @ x, atol=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_add_contains_sums(self, seed):
        rng = np.random.default_rng(seed)
        a = Zonotope(rng.normal(size=2), rng.normal(size=(2, 2)))
        b = Zonotope(rng.normal(size=2), rng.normal(size=(3, 2)))
        total = a.add(b)
        for x, y in zip(members(a, rng, 20), members(b, rng, 20)):
            assert total.contains(x + y, atol=1e-9)

    def test_scale(self):
        z = Zonotope([1.0], [[2.0]], [0.5])
        scaled = z.scale(-2.0)
        assert scaled.center[0] == -2.0
        assert scaled.box[0] == 1.0

    @pytest.mark.parametrize("seed", range(3))
    def test_projection_contains_dot_products(self, seed):
        rng = np.random.default_rng(seed)
        z = Zonotope(rng.normal(size=3), rng.normal(size=(5, 3)), np.abs(rng.normal(size=3)))
        w = rng.normal(size=3)
        rng_range = z.project(w)
        for x in members(z, rng, 40):
            value = float(w @ x)
            assert rng_range.lo <= value + 1e-9
            assert value <= rng_range.hi + 1e-9

    def test_projection_exact_without_box(self):
        z = Zonotope([0.0, 0.0], [[1.0, 0.0], [0.0, 2.0]])
        proj = z.project([1.0, 1.0])
        assert float(proj.lo) == -3.0 and float(proj.hi) == 3.0


class TestReduction:
    def test_reduce_keeps_enclosure(self):
        rng = np.random.default_rng(1)
        z = Zonotope(rng.normal(size=2), rng.normal(size=(10, 2)))
        reduced = z.reduce(3)
        assert reduced.n_generators == 3
        # Reduction may only grow the bounds, never shrink them.
        assert np.all(reduced.bounds().lo <= z.bounds().lo + 1e-12)
        assert np.all(reduced.bounds().hi >= z.bounds().hi - 1e-12)

    def test_reduce_noop_when_small(self):
        z = Zonotope([0.0], [[1.0]])
        assert z.reduce(5) is z
