"""Tests for fault-tolerant pipeline execution (policies + quarantine)."""

import numpy as np
import pytest

from repro.frame import DataFrame
from repro.learn import ColumnTransformer, StandardScaler
from repro.pipeline import (
    ErrorPolicy,
    ExecutionPolicy,
    OperatorError,
    OperatorTimeoutError,
    PipelinePlan,
    Quarantine,
    TransientError,
    execute,
    execute_robust,
)
from repro.pipeline.resilience import (
    call_with_timeout,
    deviant_cell_positions,
    retry_call,
)
from tests.pipeline.conftest import build_letters_pipeline


def small_frame(n: int = 10) -> DataFrame:
    return DataFrame(
        {
            "value": np.linspace(0.0, 1.0, n),
            "label": ["pos" if i % 2 else "neg" for i in range(n)],
        }
    )


def encoded_pipeline(func, description="udf"):
    plan = PipelinePlan()
    sink = (
        plan.source("t")
        .with_column("feat", func, description)
        .encode(
            ColumnTransformer([(StandardScaler(), ["feat"])]), label_column="label"
        )
    )
    return plan, sink


def brittle_udf(df):
    """Doubles ``value`` but refuses rows with value > 0.75."""
    values = df["value"].to_numpy()
    if np.any(values > 0.75):
        raise ValueError("cannot process large values")
    return values * 2.0


class TestErrorPolicy:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ErrorPolicy(on_error="explode")
        with pytest.raises(ValueError):
            ErrorPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            ErrorPolicy(timeout=0.0)

    def test_constructors(self):
        assert ErrorPolicy.fail_fast().is_fail_fast
        assert not ErrorPolicy.skip().is_fail_fast
        sub = ErrorPolicy.substitute(42)
        assert sub.keeps_row_on_error and sub.default == 42

    def test_resolution_precedence(self):
        plan = PipelinePlan()
        node = plan.source("t").filter(lambda df: df["value"] > 0, "positive")
        policy = ExecutionPolicy(
            default=ErrorPolicy.fail_fast(),
            per_kind={"filter": ErrorPolicy.skip()},
            per_node={node.id: ErrorPolicy.substitute(True)},
        )
        assert policy.resolve(node).on_error == "substitute_default"
        del policy.per_node[node.id]
        assert policy.resolve(node).on_error == "skip_and_quarantine"
        del policy.per_kind["filter"]
        assert policy.resolve(node).is_fail_fast


class TestGuards:
    def test_retry_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientError("flaky")
            return "done"

        delays = []
        policy = ErrorPolicy.skip(max_retries=2, backoff=0.1, backoff_factor=2.0)
        value, attempts = retry_call(flaky, policy, sleep=delays.append)
        assert value == "done"
        assert attempts == 3
        assert delays == [0.1, 0.2]

    def test_retry_budget_exhausted_reraises(self):
        policy = ErrorPolicy.skip(max_retries=1, backoff=0.0)
        with pytest.raises(TransientError):
            retry_call(lambda: (_ for _ in ()).throw(TransientError("x")), policy,
                       sleep=lambda _: None)

    def test_non_retryable_errors_propagate_immediately(self):
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise ValueError("hard")

        policy = ErrorPolicy.skip(max_retries=5, backoff=0.0)
        with pytest.raises(ValueError):
            retry_call(broken, policy, sleep=lambda _: None)
        assert calls["n"] == 1

    def test_timeout_guard(self):
        import time

        with pytest.raises(OperatorTimeoutError):
            call_with_timeout(lambda: time.sleep(0.5), timeout=0.05)
        assert call_with_timeout(lambda: 7, timeout=1.0) == 7
        with pytest.raises(KeyError):
            call_with_timeout(lambda: {}["missing"], timeout=1.0)


class TestTypeGuard:
    def test_deviant_minority_cells_flagged(self):
        cells = [1.0, 2.0, "#CORRUPT#", 3.0, None, 4.0]
        assert deviant_cell_positions(cells).tolist() == [2]

    def test_uniform_and_empty_columns_pass(self):
        assert deviant_cell_positions([]).size == 0
        assert deviant_cell_positions([1.0, 2.0, None]).size == 0
        assert deviant_cell_positions(["a", "b"]).size == 0


class TestQuarantine:
    def test_records_and_queries(self):
        plan = PipelinePlan()
        node = plan.source("t").with_column("c", lambda df: df["a"], "c")
        quarantine = Quarantine()
        quarantine.add(node, "error", ValueError("bad"), frozenset({("t", 3)}))
        quarantine.add(node, "timeout", None, frozenset({("t", 5), ("side", 1)}))
        assert len(quarantine) == 2 and bool(quarantine)
        assert quarantine.sources() == {"t", "side"}
        assert quarantine.row_ids("t").tolist() == [3, 5]
        assert quarantine.row_ids("side").tolist() == [1]
        assert quarantine.by_reason() == {"error": 1, "timeout": 1}
        assert node.id in quarantine.by_node()
        assert "2 rows" in quarantine.summary()

    def test_to_error_report(self):
        plan = PipelinePlan()
        node = plan.source("t").with_column("c", lambda df: df["a"], "c")
        quarantine = Quarantine()
        quarantine.add(node, "error", ValueError("bad"), frozenset({("t", 7)}))
        report = quarantine.to_error_report("t")
        assert report.kind == "quarantined"
        assert report.row_ids.tolist() == [7]
        assert report.affected_mask(np.asarray([6, 7, 8])).tolist() == [
            False, True, False,
        ]

    def test_merge(self):
        merged = Quarantine.merge([Quarantine(), Quarantine()])
        assert len(merged) == 0
        assert merged.summary() == "quarantine: empty"


class TestMapPolicies:
    def test_fail_fast_raises(self):
        __, sink = encoded_pipeline(brittle_udf)
        with pytest.raises(ValueError):
            execute(sink, {"t": small_frame()}, fit=True)

    def test_skip_quarantines_only_bad_rows(self):
        frame = small_frame(10)
        __, sink = encoded_pipeline(brittle_udf)
        result = execute_robust(sink, {"t": frame})
        bad = frame.row_ids[frame["value"].to_numpy() > 0.75]
        assert result.quarantine.row_ids("t").tolist() == sorted(bad.tolist())
        assert result.n_rows == frame.num_rows - len(bad)
        survivors = result.provenance.source_row_ids("t")
        assert not set(survivors.tolist()) & set(bad.tolist())
        # Surviving rows carry the correct UDF output.
        expected = frame["value"].to_numpy()[frame["value"].to_numpy() <= 0.75] * 2.0
        assert np.allclose(np.sort(result.frame["feat"].to_numpy()), np.sort(expected))

    def test_substitute_default_keeps_rows(self):
        frame = small_frame(10)
        __, sink = encoded_pipeline(brittle_udf)
        policy = ExecutionPolicy(default=ErrorPolicy.substitute(0.0))
        result = execute(sink, {"t": frame}, policy=policy)
        assert result.n_rows == frame.num_rows
        bad = frame.row_ids[frame["value"].to_numpy() > 0.75]
        assert result.quarantine.row_ids("t").tolist() == sorted(bad.tolist())
        assert all(r.substituted for r in result.quarantine)
        positions = result.frame.positions_of(bad.tolist())
        assert np.allclose(result.frame["feat"].to_numpy()[positions], 0.0)

    def test_type_guard_quarantines_corrupt_cells(self):
        frame = small_frame(8)

        def corrupting(df):
            cells = list(df["value"].to_numpy() * 2.0)
            out = []
            for rid, cell in zip(df.row_ids.tolist(), cells):
                out.append("#CORRUPT#" if rid == 2 else cell)
            return out

        __, sink = encoded_pipeline(corrupting)
        result = execute_robust(sink, {"t": frame})
        assert result.quarantine.row_ids("t").tolist() == [2]
        assert result.quarantine.records[0].reason == "corrupt_type"
        assert result.n_rows == frame.num_rows - 1


class TestFilterPolicies:
    @staticmethod
    def brittle_predicate(df):
        values = df["value"].to_numpy()
        if np.any(values > 0.75):
            raise ValueError("cannot compare large values")
        return values >= 0.25

    def test_skip_drops_bad_rows(self):
        frame = small_frame(10)
        plan = PipelinePlan()
        sink = plan.source("t").filter(self.brittle_predicate, "brittle")
        result = execute_robust(sink, {"t": frame})
        values = frame["value"].to_numpy()
        bad = frame.row_ids[values > 0.75]
        expected_survivors = frame.row_ids[(values >= 0.25) & (values <= 0.75)]
        assert result.quarantine.row_ids("t").tolist() == sorted(bad.tolist())
        assert sorted(result.frame.row_ids.tolist()) == sorted(
            expected_survivors.tolist()
        )

    def test_substitute_true_keeps_bad_rows(self):
        frame = small_frame(10)
        plan = PipelinePlan()
        sink = plan.source("t").filter(self.brittle_predicate, "brittle")
        policy = ExecutionPolicy(default=ErrorPolicy.substitute(True))
        result = execute(sink, {"t": frame}, policy=policy)
        values = frame["value"].to_numpy()
        expected = frame.row_ids[(values >= 0.25) | (values > 0.75)]
        assert sorted(result.frame.row_ids.tolist()) == sorted(expected.tolist())


class TestJoinPolicies:
    def test_poisonous_key_quarantined_row_wise(self, monkeypatch):
        left = DataFrame({"k": [1, 2, 3, 4], "a": [10, 20, 30, 40]})
        right = DataFrame({"k": [1, 2, 3, 4], "b": [5, 6, 7, 8]})
        poison_id = 2
        original_join = DataFrame.join

        def poisoned_join(self, other, **kwargs):
            if poison_id in set(self.row_ids.tolist()):
                raise RuntimeError("poisonous join key")
            return original_join(self, other, **kwargs)

        monkeypatch.setattr(DataFrame, "join", poisoned_join)
        plan = PipelinePlan()
        sink = plan.source("left").join(plan.source("right"), on="k", how="inner")
        with pytest.raises(RuntimeError):
            execute(sink, {"left": left, "right": right})
        result = execute_robust(sink, {"left": left, "right": right})
        assert result.quarantine.row_ids("left").tolist() == [poison_id]
        assert sorted(result.frame.row_ids.tolist()) == [0, 1, 3]
        # Joined provenance still carries both sides for the survivors.
        assert all(len(row) == 2 for row in result.provenance.tuples)


class TestEncodeGuards:
    def test_missing_labels_quarantined(self):
        frame = DataFrame(
            {
                "value": [0.1, 0.2, 0.3, 0.4],
                "label": ["pos", None, "neg", None],
            }
        )
        __, sink = encoded_pipeline(lambda df: df["value"] * 1.0)
        result = execute_robust(sink, {"t": frame})
        assert result.quarantine.row_ids("t").tolist() == [1, 3]
        assert {r.reason for r in result.quarantine} == {"missing_label"}
        assert result.n_rows == 2
        assert set(result.y.tolist()) == {"pos", "neg"}

    def test_nonfinite_features_quarantined(self):
        frame = small_frame(6)

        def nan_udf(df):
            values = df["value"].to_numpy() * 2.0
            values[df.row_ids == 4] = np.nan
            return values

        __, sink = encoded_pipeline(nan_udf)
        result = execute_robust(sink, {"t": frame})
        assert result.quarantine.row_ids("t").tolist() == [4]
        assert {r.reason for r in result.quarantine} == {"nonfinite"}
        assert np.isfinite(result.X).all()


class TestFailFastEquivalence:
    def test_policyless_and_fail_fast_policy_match_on_clean_data(
        self, hiring_data, sources
    ):
        __, sink_a = build_letters_pipeline()
        baseline = execute(sink_a, sources, fit=True)
        __, sink_b = build_letters_pipeline()
        strict = execute(
            sink_b, sources, fit=True,
            policy=ExecutionPolicy(default=ErrorPolicy.fail_fast()),
        )
        __, sink_c = build_letters_pipeline()
        robust = execute_robust(sink_c, sources)
        for other in (strict, robust):
            assert np.array_equal(baseline.X, other.X)
            assert np.array_equal(baseline.y, other.y)
            assert baseline.frame.equals(other.frame)
            assert baseline.provenance.tuples == other.provenance.tuples
        assert len(robust.quarantine) == 0

    def test_execute_robust_rejects_policy_plus_overrides(self, sources):
        __, sink = build_letters_pipeline()
        with pytest.raises(TypeError):
            execute_robust(
                sink, sources, policy=ExecutionPolicy.robust(), max_retries=3
            )

    def test_unencoded_sink_carries_quarantine(self):
        frame = small_frame(6)
        plan = PipelinePlan()
        sink = plan.source("t").with_column("feat", brittle_udf, "brittle")
        result = execute_robust(sink, {"t": frame})
        assert result.X is None
        assert len(result.quarantine) > 0
