"""Provenance-tracking pipeline execution.

:func:`execute` walks an operator DAG, carrying a
:class:`~repro.pipeline.provenance.Provenance` alongside every intermediate
frame. The result bundles the encoded training matrix, labels, pre-encode
frame, and the output-row-to-source-tuple provenance — everything the
debugging tools of Section 2.2 consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

from ..frame import DataFrame
from .operators import (
    EncodeNode,
    FilterNode,
    JoinNode,
    MapNode,
    Node,
    PipelinePlan,
    ProjectNode,
    SourceNode,
)
from .provenance import Provenance

__all__ = ["PipelineResult", "execute", "with_provenance", "incremental_append"]


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run.

    Attributes
    ----------
    X, y:
        Encoded feature matrix and label vector (None if the sink is not an
        :class:`EncodeNode`).
    frame:
        The relational output immediately before encoding.
    provenance:
        Why-provenance of each output row (aligned with ``X`` / ``frame``).
    sink:
        The executed sink node; ``sink.encoder`` holds the *fitted* feature
        encoder after a ``fit=True`` run.
    """

    frame: DataFrame
    provenance: Provenance
    sink: Node
    X: np.ndarray | None = None
    y: np.ndarray | None = None
    intermediates: dict[int, int] = field(default_factory=dict)  # node id -> rows

    @property
    def n_rows(self) -> int:
        return self.frame.num_rows

    def remove_source_rows(
        self, source: str, row_ids: Any
    ) -> tuple[np.ndarray, np.ndarray]:
        """Training matrix with every output row descending from the given
        source tuples dropped — *without re-running the pipeline*.

        This is the provenance shortcut (the paper's ``nde.remove``): because
        our operators are monotone (select-project-join), deleting a source
        tuple simply deletes the output rows whose why-provenance contains
        it, so the encoded matrix can be edited in place.
        """
        if self.X is None or self.y is None:
            raise RuntimeError("pipeline result has no encoded output")
        affected = self.provenance.outputs_of(source, np.asarray(row_ids).tolist())
        keep = np.ones(len(self.X), dtype=bool)
        keep[affected] = False
        return self.X[keep], self.y[keep]

    def source_positions(self, source: str) -> np.ndarray:
        """Source row id contributing to each output row (one per row)."""
        return self.provenance.source_row_ids(source)


def _run_node(
    node: Node,
    sources: Mapping[str, DataFrame],
    fit: bool,
    cache: dict[int, tuple[DataFrame, Provenance]],
) -> tuple[DataFrame, Provenance]:
    if node.id in cache:
        return cache[node.id]

    if isinstance(node, SourceNode):
        if node.name not in sources:
            raise KeyError(
                f"no input bound for source {node.name!r}; have {sorted(sources)}"
            )
        frame = sources[node.name]
        result = (frame, Provenance.for_source(node.name, frame.row_ids))
    elif isinstance(node, JoinNode):
        left_frame, left_prov = _run_node(node.inputs[0], sources, fit, cache)
        right_frame, right_prov = _run_node(node.inputs[1], sources, fit, cache)
        joined, lpos, rpos = left_frame.join(
            right_frame,
            on=node.on,
            how=node.how,
            suffix=node.suffix,
            fuzzy=node.fuzzy,
            return_indices=True,
        )
        out_prov_rows = []
        for lp, rp in zip(lpos, rpos):
            row = left_prov.tuples[int(lp)]
            if rp >= 0:
                row = row | right_prov.tuples[int(rp)]
            out_prov_rows.append(row)
        result = (joined, Provenance(out_prov_rows))
    elif isinstance(node, FilterNode):
        frame, prov = _run_node(node.inputs[0], sources, fit, cache)
        mask = np.asarray(node.predicate(frame), dtype=bool)
        positions = np.flatnonzero(mask)
        result = (frame.take(positions), prov.take(positions))
    elif isinstance(node, MapNode):
        frame, prov = _run_node(node.inputs[0], sources, fit, cache)
        out = frame.copy()
        out[node.name] = node.func(frame)
        result = (out, prov)
    elif isinstance(node, ProjectNode):
        frame, prov = _run_node(node.inputs[0], sources, fit, cache)
        result = (frame.select(node.columns), prov)
    elif isinstance(node, EncodeNode):
        # Handled by the caller (needs to produce X/y, not a frame).
        raise TypeError("EncodeNode must be the sink; execute() handles it")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown node type: {type(node).__name__}")

    cache[node.id] = result
    return result


def execute(
    sink: Node,
    sources: Mapping[str, DataFrame],
    fit: bool = True,
    cache: dict[int, tuple[DataFrame, Provenance]] | None = None,
) -> PipelineResult:
    """Run the pipeline ending at ``sink`` over concrete source frames.

    Parameters
    ----------
    fit:
        When True, feature encoders are (re)fitted on this run's data; when
        False they must already be fitted (used to push validation/test data
        through a pipeline fitted on training data).
    cache:
        Optional node-result cache keyed by node id. Passing the same dict
        across several ``execute`` calls shares the work of common subplans —
        the mechanism behind what-if analysis (:mod:`repro.pipeline.whatif`).
        Only valid when the calls bind the *same* source frames.
    """
    if cache is None:
        cache = {}
    if isinstance(sink, EncodeNode):
        frame, prov = _run_node(sink.inputs[0], sources, fit, cache)
        if fit:
            X = sink.encoder.fit_transform(frame)
        else:
            X = sink.encoder.transform(frame)
        y = np.asarray(frame.column(sink.label_column).to_list())
        result = PipelineResult(frame=frame, provenance=prov, sink=sink, X=X, y=y)
    else:
        frame, prov = _run_node(sink, sources, fit, cache)
        result = PipelineResult(frame=frame, provenance=prov, sink=sink)
    reachable = {node.id for node in sink.plan.topological_order(sink)}
    result.intermediates = {
        nid: len(entry[1]) for nid, entry in cache.items() if nid in reachable
    }
    return result


def with_provenance(
    sink: Node, sources: Mapping[str, DataFrame]
) -> tuple[np.ndarray, np.ndarray, Provenance, PipelineResult]:
    """Paper-style convenience: ``X, y, prov = nde.with_provenance(pipeline(...))``."""
    result = execute(sink, sources, fit=True)
    if result.X is None:
        raise TypeError("with_provenance requires a pipeline ending in encode()")
    return result.X, result.y, result.provenance, result


def incremental_append(
    result: PipelineResult, delta_sources: Mapping[str, DataFrame]
) -> PipelineResult:
    """Maintain a pipeline output when new rows arrive at a source.

    The survey's Debug take-away points at incremental view maintenance:
    because every relational operator here is monotone (select-project-join),
    appending rows to a source only *adds* output rows. The delta is computed
    by pushing just the new rows through the fitted pipeline (``fit=False``)
    and concatenating — no re-processing of the existing data.

    Parameters
    ----------
    result:
        A previous run whose encoders are already fitted.
    delta_sources:
        The same source bindings as the original run, except the appended
        source(s) contain *only the new rows* (with fresh row ids).

    Returns a result equal to re-running the pipeline over the concatenated
    sources with ``fit=False`` (a property the tests verify).
    """
    if result.X is None or result.y is None:
        raise ValueError("incremental_append requires an encoded pipeline result")
    delta = execute(result.sink, delta_sources, fit=False)
    combined_frame = DataFrame.concat_rows([result.frame, delta.frame])
    combined_prov = Provenance.concat([result.provenance, delta.provenance])
    return PipelineResult(
        frame=combined_frame,
        provenance=combined_prov,
        sink=result.sink,
        X=np.vstack([result.X, delta.X]),
        y=np.concatenate([result.y, delta.y]),
        intermediates=dict(result.intermediates),
    )
