"""Beta Shapley importance (Kwon & Zou [43]).

Beta(α, β)-Shapley generalises Data Shapley by re-weighting marginal
contributions by the cardinality of the subset they are measured against.
Beta(1, 1) recovers the Shapley value exactly; β > α emphasises *small*
subsets, which de-noises the signal because marginal contributions against
large subsets are dominated by retraining variance.
"""

from __future__ import annotations

from math import lgamma

import numpy as np

from .base import ImportanceResult
from .utility import Utility

__all__ = ["beta_shapley_mc", "beta_weights"]


def beta_weights(n: int, alpha: float = 1.0, beta: float = 16.0) -> np.ndarray:
    """Normalised weight for each preceding-subset size j = 0..n-1.

    ``w(j) ∝ C(n−1, j) · B(j + α, n − 1 − j + β)`` expressed via log-gamma
    for stability and normalised to sum to 1, so the estimator is a weighted
    mean of per-size marginal contributions. The convention matches the
    library docs: **β > α concentrates weight on small subsets** (marginal
    contributions measured early in the permutation), β = α = 1 is uniform
    (ordinary Shapley).
    """
    if alpha <= 0 or beta <= 0:
        raise ValueError("alpha and beta must be positive")
    js = np.arange(n)
    log_w = np.empty(n)
    for j in js:
        log_w[j] = (
            lgamma(j + alpha)
            + lgamma(n - 1 - j + beta)
            - lgamma(n - 1 + alpha + beta)
            + lgamma(n)  # C(n-1, j) numerator part
            - lgamma(j + 1)
            - lgamma(n - j)
        )
    log_w -= log_w.max()
    w = np.exp(log_w)
    return w / w.sum()


def beta_shapley_mc(
    utility: Utility,
    alpha: float = 1.0,
    beta: float = 16.0,
    n_permutations: int = 100,
    seed: int = 0,
) -> ImportanceResult:
    """Permutation-sampling Beta(α, β)-Shapley estimator.

    Samples permutations exactly like TMC-Shapley but weights the marginal
    contribution of a point inserted at position j by the Beta weight of
    subset size j. With α = β = 1 this degenerates to uniform weights and
    estimates the ordinary Shapley value (a property the tests rely on).
    """
    rng = np.random.default_rng(seed)
    n = utility.n_train
    weights = beta_weights(n, alpha, beta) * n  # scale: mean weight 1
    null = utility.evaluate([])
    totals = np.zeros(n)
    counts = np.zeros(n)
    for __ in range(n_permutations):
        order = rng.permutation(n)
        prev = null
        prefix: list[int] = []
        for position, i in enumerate(order):
            prefix.append(int(i))
            current = utility.evaluate(prefix)
            totals[i] += weights[position] * (current - prev)
            counts[i] += 1
            prev = current
    values = totals / np.maximum(counts, 1)
    return ImportanceResult(
        method=f"beta_shapley({alpha:g},{beta:g})",
        values=values,
        extras={"alpha": alpha, "beta": beta, "n_permutations": n_permutations},
    )
