"""Valuation as a service: a crash-safe, multi-tenant asyncio job runtime.

The ROADMAP's production story — millions of users querying importance
scores — needs more than a fast engine: it needs a *server* that admits,
schedules, deduplicates, degrades, and survives crashes. This package is
that layer, built entirely on the primitives grown in earlier PRs:

- :mod:`repro.service.job` — the JSON-able :class:`JobRequest`, the
  :class:`Job` lifecycle state machine (every accepted job reaches exactly
  one terminal state), and :class:`JobRejected` backpressure.
- :mod:`repro.service.journal` — the write-ahead :class:`JobJournal`
  (atomic, cross-process-locked JSONL) that lets a SIGKILL'd runtime
  replay and resume every in-flight job.
- :mod:`repro.service.admission` — bounded fair-share queueing, priority
  load shedding, per-tenant circuit breakers, retry backoff.
- :mod:`repro.service.runtime` — the asyncio :class:`JobRuntime` tying it
  together: handler registry, worker fleet, dedup fan-out with streamed
  partial results, deadline propagation, chaos hooks.
- :mod:`repro.service.handlers` — the valuation adapter mapping jobs onto
  :class:`~repro.importance.engine.ValuationEngine` runs.
- :mod:`repro.service.telemetry` — the zero-dependency HTTP endpoint
  (:class:`TelemetryServer`) exposing ``/metrics`` (OpenMetrics),
  ``/healthz``, ``/jobs``, and ``/slo`` for scrapers and load balancers.

Quickstart::

    from repro.service import JobRequest, JobRuntime, register_valuation

    runtime = JobRuntime(journal="svc/journal.jsonl", checkpoint_dir="svc/ck")
    register_valuation(runtime, lambda params: make_engine(params["dataset"]))
    async with runtime:
        job = runtime.submit(JobRequest(
            kind="valuation",
            params={"dataset": "imdb", "n_permutations": 200, "seed": 0},
            tenant="alice", deadline_s=60.0,
            dataset_fingerprint=fp,
        ))
        values = (await job.wait()).values()
"""

from .admission import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    CircuitBreaker,
    FairShareQueue,
    RetryPolicy,
)
from .handlers import make_valuation_handler, register_valuation
from .job import TERMINAL_STATES, Job, JobRejected, JobRequest, JobState
from .journal import JOURNAL_SCHEMA_VERSION, JobJournal, JournalEntry
from .runtime import JobContext, JobRuntime
from .telemetry import TelemetryServer

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "BreakerPolicy",
    "CircuitBreaker",
    "FairShareQueue",
    "JOURNAL_SCHEMA_VERSION",
    "Job",
    "JobContext",
    "JobJournal",
    "JobRejected",
    "JobRequest",
    "JobRuntime",
    "JobState",
    "JournalEntry",
    "RetryPolicy",
    "TERMINAL_STATES",
    "TelemetryServer",
    "make_valuation_handler",
    "register_valuation",
]
