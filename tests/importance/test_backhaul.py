"""Worker telemetry backhaul: merged traces, metric deltas, flight dumps.

The tentpole contract: a parallel valuation under ``tracing()`` yields ONE
merged trace — driver spans plus every worker's spans, chunk spans parented
under per-worker ``worker[i]`` groups — while values stay bit-identical to
serial, whatever the transport (fork pipes or shm-spawn pool). Crashes
leave a flight dump naming the in-flight chunk and the worker's last
shipped spans; forked processes that record spans with no backhaul say so
instead of dropping them silently.
"""

from __future__ import annotations

import json
import os
import warnings

import numpy as np
import pytest

import repro.importance.engine as engine_mod
from repro.datasets import make_classification
from repro.errors.chaos import ChaosMonkey
from repro.importance import (
    SubsetUtility,
    Utility,
    ValuationEngine,
    valuation_pool,
)
from repro.learn import LogisticRegression
from repro.obs import flight as obs_flight
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

needs_fork = pytest.mark.skipif(
    engine_mod._FORK_CTX is None, reason="requires a fork-capable platform"
)


@pytest.fixture(autouse=True)
def clean_observability():
    """Observability is process-global; restore every backhaul flag."""

    def scrub():
        obs_trace.disable()
        recorder = obs_trace.get_recorder()
        recorder.reset()
        recorder._forked = False
        recorder._fork_warned = False
        obs_trace._BACKHAUL_ACTIVE = False
        obs_metrics.registry().clear()
        flight = obs_flight.flight_recorder()
        flight.clear()
        flight.dump_dir = None

    scrub()
    yield
    scrub()


def small_utility(seed: int = 11) -> Utility:
    X, y = make_classification(n=48, n_features=3, seed=seed)
    return Utility(
        LogisticRegression(max_iter=20), X[:36], y[:36], X[36:], y[36:]
    )


def tanh_game(n: int = 10, seed: int = 3) -> SubsetUtility:
    rng = np.random.default_rng(seed)
    w = rng.normal(size=n)

    def func(indices):
        idx = np.asarray(indices, dtype=int)
        return float(np.tanh(w[idx].sum())) if len(idx) else 0.0

    return SubsetUtility(func, n)


def span_names(spans):
    return [s.name for s in spans]


def worker_groups(spans):
    return [s for s in spans if s.name.startswith("worker[")]


def chunk_spans(spans):
    return [s for s in spans if s.name == "worker.chunk"]


# ---------------------------------------------------------------------- #
# WorkerTelemetry / merge units (in-process, no fork needed)             #
# ---------------------------------------------------------------------- #


class TestWorkerTelemetryUnit:
    def test_collect_returns_none_when_idle(self):
        capture = obs_trace.WorkerTelemetry()
        assert capture.collect() is None

    def test_collect_ships_finished_spans_and_metric_deltas(self):
        obs_trace.enable()
        obs_metrics.counter("pre.existing").inc(5)
        capture = obs_trace.WorkerTelemetry()
        with obs_trace.span("worker.chunk", chunk=0):
            obs_metrics.counter("worker.evaluations").inc(3)
        delta = capture.collect()
        assert delta["pid"] == os.getpid()
        assert span_names_from_dicts(delta["spans"]) == ["worker.chunk"]
        assert delta["metrics"]["worker.evaluations"]["value"] == 3
        assert "pre.existing" not in delta["metrics"]  # delta, not snapshot
        # drained: a second collect ships nothing
        assert capture.collect() is None

    def test_collect_keeps_unfinished_spans_for_next_drain(self):
        obs_trace.enable()
        capture = obs_trace.WorkerTelemetry()
        outer = obs_trace.span("outer")
        outer.__enter__()
        with obs_trace.span("inner"):
            pass
        delta = capture.collect()
        assert span_names_from_dicts(delta["spans"]) == ["inner"]
        outer.__exit__(None, None, None)
        delta = capture.collect()
        assert span_names_from_dicts(delta["spans"]) == ["outer"]

    def test_merge_adopts_under_worker_group_and_rebases_clock(self):
        obs_trace.enable()
        delta = {
            "pid": 4242,
            "clock": 100.0,
            "spans": [
                {"span_id": 7, "parent_id": None, "name": "worker.chunk",
                 "start": 99.0, "duration": 0.5, "attrs": {"chunk": 1}},
                {"span_id": 8, "parent_id": 7, "name": "utility.eval",
                 "start": 99.1, "duration": 0.2, "attrs": {}},
            ],
            "metrics": {"worker.evaluations": {"type": "counter", "value": 2}},
            "dropped": 0,
        }
        groups: dict = {}
        obs_trace.merge_worker_telemetry(3, delta, groups)
        spans = obs_trace.get_recorder().spans
        group = worker_groups(spans)[0]
        assert group.name == "worker[3]" and group.attrs["pid"] == 4242
        chunk = next(s for s in spans if s.name == "worker.chunk")
        child = next(s for s in spans if s.name == "utility.eval")
        assert chunk.parent_id == group.span_id  # batch root under group
        assert child.parent_id == chunk.span_id  # intra-batch link remapped
        # clock rebased: worker start 99.0 at worker-now 100.0 is ~1s ago
        assert chunk.start < group.start + 10.0
        # group stretched to cover its children
        assert group.duration >= 0.5
        assert obs_metrics.snapshot()["worker.evaluations"]["value"] == 2
        assert obs_metrics.snapshot()["obs.trace.worker_spans"]["value"] == 2

    def test_merge_reuses_group_across_chunks_of_one_wave(self):
        obs_trace.enable()
        groups: dict = {}
        for chunk in range(3):
            obs_trace.merge_worker_telemetry(
                0,
                {"pid": 1, "clock": 0.0, "metrics": {}, "dropped": 0,
                 "spans": [{"span_id": chunk, "parent_id": None,
                            "name": "worker.chunk", "start": float(chunk),
                            "duration": 0.1, "attrs": {}}]},
                groups,
            )
        spans = obs_trace.get_recorder().spans
        assert len(worker_groups(spans)) == 1
        assert len(chunk_spans(spans)) == 3

    def test_merge_metrics_flow_even_with_tracing_disabled(self):
        assert not obs_trace.enabled()
        obs_trace.merge_worker_telemetry(
            0,
            {"pid": 1, "clock": 0.0, "dropped": 2,
             "spans": [{"span_id": 0, "parent_id": None, "name": "x",
                        "start": 0.0, "duration": 0.1, "attrs": {}}],
             "metrics": {"worker.evaluations": {"type": "counter",
                                                "value": 4}}},
        )
        snap = obs_metrics.snapshot()
        assert snap["worker.evaluations"]["value"] == 4
        assert snap["obs.trace.dropped_fork_spans"]["value"] == 2
        assert len(obs_trace.get_recorder()) == 0  # no spans adopted

    def test_merged_spans_land_in_flight_recorder(self):
        obs_trace.enable()
        obs_trace.merge_worker_telemetry(
            1,
            {"pid": 1, "clock": 0.0, "metrics": {}, "dropped": 0,
             "spans": [{"span_id": 0, "parent_id": None,
                        "name": "worker.chunk", "start": 0.0,
                        "duration": 0.1, "attrs": {"chunk": 9}}]},
        )
        events = obs_flight.flight_recorder().snapshot()
        span_events = [e for e in events if e["kind"] == "span"]
        assert span_events and span_events[-1]["origin"] == "worker[1]"
        assert span_events[-1]["attrs"]["chunk"] == 9


def span_names_from_dicts(span_dicts):
    return [s["name"] for s in span_dicts]


# ---------------------------------------------------------------------- #
# fork dispatcher end-to-end                                             #
# ---------------------------------------------------------------------- #


@needs_fork
class TestForkBackhaul:
    def test_single_merged_trace_with_bit_identical_values(self):
        serial = ValuationEngine(tanh_game()).run_permutations(16, seed=5)
        engine = ValuationEngine(tanh_game(), n_workers=2)
        obs_trace.enable()
        run = engine.run_permutations(16, seed=5)
        spans = obs_trace.get_recorder().spans
        obs_trace.disable()

        assert np.array_equal(run.values(), serial.values())
        assert np.array_equal(run.stderr(), serial.stderr())
        groups = worker_groups(spans)
        chunks = chunk_spans(spans)
        assert groups and chunks
        group_ids = {g.span_id for g in groups}
        assert all(c.parent_id in group_ids for c in chunks)
        # groups hang beneath the driver's dispatch span (one trace tree)
        by_id = {s.span_id: s for s in spans}
        for group in groups:
            assert group.parent_id in by_id
        assert obs_metrics.snapshot()["obs.trace.worker_spans"]["value"] >= len(
            chunks
        )

    def test_disabled_tracing_ships_nothing(self):
        engine = ValuationEngine(tanh_game(), n_workers=2)
        engine.run_permutations(8, seed=1)
        assert len(obs_trace.get_recorder()) == 0
        assert "obs.trace.worker_spans" not in obs_metrics.snapshot()


# ---------------------------------------------------------------------- #
# shm pool end-to-end (fork and spawn transports)                        #
# ---------------------------------------------------------------------- #


class TestPoolBackhaul:
    @pytest.mark.parametrize(
        "start_method",
        [
            pytest.param("fork", marks=needs_fork),
            "spawn",
        ],
    )
    def test_pooled_run_backhauls_spans_bit_identically(self, start_method):
        serial = ValuationEngine(small_utility()).run_permutations(8, seed=5)
        with valuation_pool(n_workers=2, start_method=start_method):
            engine = ValuationEngine(small_utility(), n_workers=2)
            obs_trace.enable()
            run = engine.run_permutations(8, seed=5)
            spans = obs_trace.get_recorder().spans
            obs_trace.disable()

        assert np.array_equal(run.values(), serial.values())
        assert np.array_equal(run.stderr(), serial.stderr())
        chunks = chunk_spans(spans)
        assert chunks, f"no worker.chunk spans over {start_method} transport"
        group_ids = {g.span_id for g in worker_groups(spans)}
        assert all(c.parent_id in group_ids for c in chunks)
        snap = obs_metrics.snapshot()
        assert snap["obs.trace.worker_spans"]["value"] >= len(chunks)
        # worker-side counters rode the same delta home
        assert "worker.evaluations" in snap


# ---------------------------------------------------------------------- #
# crash flight dumps                                                     #
# ---------------------------------------------------------------------- #


@needs_fork
class TestCrashFlightDump:
    def test_worker_crash_dumps_flight_naming_chunk_and_last_span(
        self, tmp_path
    ):
        # Crash the LAST chunk of the wave: its worker necessarily completed
        # (and shipped telemetry for) an earlier chunk first, so the dump
        # deterministically holds that worker's last span.
        obs_flight.configure(dump_dir=tmp_path)
        chaos = ChaosMonkey(worker_crash_chunks=[3])
        engine = ValuationEngine(tanh_game(), n_workers=2, chaos=chaos)
        obs_trace.enable()
        run = engine.run_permutations(16, seed=5)
        obs_trace.disable()

        assert run is not None  # recovered despite the crash
        dumps = sorted(tmp_path.glob("flight-*worker-crash*.jsonl"))
        assert dumps, "crash produced no flight dump"
        header, events = obs_flight.load_dump(dumps[0])
        assert header["kind"] == "flight_dump"
        assert header["reason"] == "worker-crash"
        crashes = [e for e in events if e["kind"] == "supervision.crash"]
        assert crashes, "dump does not record the supervision event"
        assert crashes[-1]["chunk"] == 3  # names the in-flight chunk
        crash_slot = crashes[-1]["slot"]
        # the crashed worker's last backhauled span is in the ring too
        span_events = [e for e in events if e["kind"] == "span"]
        assert any(
            e["origin"] == f"worker[{crash_slot}]" and e["name"] == "worker.chunk"
            for e in span_events
        ), f"no span from crashed worker[{crash_slot}] in {span_events}"

    def test_no_dump_without_configured_dir(self):
        chaos = ChaosMonkey(worker_crash_chunks=[0])
        engine = ValuationEngine(tanh_game(), n_workers=2, chaos=chaos)
        engine.run_permutations(8, seed=2)
        # events were recorded (cheap, always-on) but nothing hit disk
        kinds = [e["kind"] for e in obs_flight.flight_recorder().snapshot()]
        assert "supervision.crash" in kinds


# ---------------------------------------------------------------------- #
# fork-drop accounting                                                   #
# ---------------------------------------------------------------------- #


class TestForkDropWarning:
    def test_forked_recorder_without_backhaul_warns_once_and_counts(self):
        obs_trace.enable()
        recorder = obs_trace.get_recorder()
        recorder._forked = True  # simulate inheriting tracing across fork
        assert not obs_trace._BACKHAUL_ACTIVE
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with obs_trace.span("lost.work"):
                pass
            with obs_trace.span("more.lost.work"):
                pass
        runtime_warnings = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(runtime_warnings) == 1  # once per process, not per span
        assert "backhaul" in str(runtime_warnings[0].message)
        assert recorder._fork_dropped == 2

    def test_backhaul_capture_silences_the_warning(self):
        obs_trace.enable()
        recorder = obs_trace.get_recorder()
        recorder._forked = True
        obs_trace.WorkerTelemetry()  # marks backhaul active
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            with obs_trace.span("captured.work"):
                pass
        assert not [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert recorder._fork_dropped == 0

    def test_dropped_count_ships_with_the_next_capture(self):
        obs_trace.enable()
        recorder = obs_trace.get_recorder()
        recorder._forked = True
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with obs_trace.span("pre.capture"):
                pass
        capture = obs_trace.WorkerTelemetry()
        delta = capture.collect()
        assert delta["dropped"] == 1
        obs_trace.merge_worker_telemetry(0, delta)
        snap = obs_metrics.snapshot()
        assert snap["obs.trace.dropped_fork_spans"]["value"] == 1
