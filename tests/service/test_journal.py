"""Write-ahead job journal: durability, replay folding, recovery set."""

from __future__ import annotations

import json

from repro.service import JobJournal, JobRequest


def submit(journal: JobJournal, job_id: str, **kwargs) -> JobRequest:
    request = JobRequest(kind="v", **kwargs)
    journal.record("submitted", job_id, {"request": request.to_dict()})
    return request


class TestRecordAndReplay:
    def test_events_in_append_order(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        submit(journal, "a")
        journal.record("queued", "a")
        journal.record("started", "a", {"attempt": 0})
        assert [e["event"] for e in journal.events()] == [
            "submitted", "queued", "started",
        ]
        assert len(journal) == 3

    def test_replay_folds_to_latest_state(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        request = submit(journal, "a", params={"n": 3}, tenant="t")
        journal.record("queued", "a")
        journal.record("started", "a", {"attempt": 0})
        journal.record("progress", "a", {"completed": 4, "target": 10})
        journal.record("retrying", "a", {"attempt": 0})
        journal.record("started", "a", {"attempt": 1})
        entry = journal.replay()["a"]
        assert entry.request == request
        assert entry.state == "running"
        assert entry.attempts == 2
        assert entry.progress_completed == 4
        assert not entry.terminal and entry.recoverable

    def test_terminal_events_close_the_entry(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        for job_id, terminal in [
            ("a", "completed"), ("b", "degraded"),
            ("c", "failed"), ("d", "rejected"),
        ]:
            submit(journal, job_id)
            journal.record(terminal, job_id, {"latency_s": 0.1})
        entries = journal.replay()
        assert all(entry.terminal for entry in entries.values())
        assert journal.in_flight() == []
        assert entries["a"].result_summary == {"latency_s": 0.1}

    def test_in_flight_returns_only_recoverable_jobs(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        submit(journal, "done")
        journal.record("completed", "done")
        submit(journal, "queued-at-crash")
        journal.record("queued", "queued-at-crash")
        submit(journal, "running-at-crash")
        journal.record("started", "running-at-crash", {"attempt": 0})
        # A stray event without its submission record (truncated journal):
        journal.record("queued", "orphan")
        in_flight = [entry.job_id for entry in journal.in_flight()]
        assert in_flight == ["queued-at-crash", "running-at-crash"]

    def test_malformed_and_foreign_lines_are_skipped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = JobJournal(path)
        submit(journal, "a")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": \n')
            handle.write("not json at all\n")
            handle.write('{"event": "", "job_id": "x"}\n')  # empty event
        journal.record("completed", "a")
        assert [e["event"] for e in journal.events()] == ["submitted", "completed"]
        assert journal.replay()["a"].terminal

    def test_records_are_framed_schema_versioned_sorted_json(self, tmp_path):
        from repro.obs.atomicio import ENVELOPE_SCHEMA_VERSION, unframe

        path = tmp_path / "j.jsonl"
        JobJournal(path).record("submitted", "a", {"z": 1, "a": 2})
        envelope = json.loads(path.read_text().strip())
        assert envelope["_env"] == ENVELOPE_SCHEMA_VERSION
        record, reason = unframe(envelope)
        assert reason is None
        assert record["schema_version"] == 1
        assert list(record) == sorted(record)
        assert record["payload"] == {"z": 1, "a": 2}


class TestCompaction:
    def _lifecycle(self, journal, job_id, terminal="completed"):
        submit(journal, job_id)
        journal.record("queued", job_id)
        journal.record("started", job_id, {"attempt": 0})
        journal.record("progress", job_id, {"completed": 5})
        journal.record(terminal, job_id, {"n_evals": 5})

    def test_terminal_jobs_collapse_to_one_record(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        self._lifecycle(journal, "done-1")
        self._lifecycle(journal, "done-2", terminal="failed")
        stats = journal.compact()
        assert stats["events_before"] == 10
        assert stats["events_after"] == 2
        assert stats["jobs_terminal"] == 2 and stats["jobs_active"] == 0
        assert stats["bytes_after"] < stats["bytes_before"]
        replayed = journal.replay()
        assert replayed["done-1"].state == "completed"
        assert replayed["done-2"].state == "failed"
        summary = journal.events()[0]
        assert summary["payload"]["compacted_events"] == 5
        assert summary["payload"]["n_evals"] == 5  # result summary kept

    def test_non_terminal_chains_survive_verbatim(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        self._lifecycle(journal, "done")
        submit(journal, "crashed")
        journal.record("started", "crashed", {"attempt": 0})
        journal.record("progress", "crashed", {"completed": 3})
        before = [e.job_id for e in journal.in_flight()]
        journal.compact()
        after_events = journal.events()
        crashed = [e for e in after_events if e["job_id"] == "crashed"]
        assert [e["event"] for e in crashed] == [
            "submitted", "started", "progress",
        ]
        assert [e.job_id for e in journal.in_flight()] == before
        entry = journal.replay()["crashed"]
        assert entry.recoverable and entry.progress_completed == 3

    def test_maybe_compact_triggers_on_event_count(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        for i in range(12):
            self._lifecycle(journal, f"job-{i}")
        assert journal.maybe_compact(max_events=10, max_bytes=1 << 30)
        assert len(journal.events()) == 12  # one summary per terminal job
        # under both bounds now: no further compaction
        assert journal.maybe_compact(max_events=50, max_bytes=1 << 30) is None

    def test_maybe_compact_triggers_on_bytes(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        self._lifecycle(journal, "a")
        assert journal.maybe_compact(max_events=1 << 30, max_bytes=64)
        assert journal.maybe_compact(max_events=1 << 30, max_bytes=1 << 30) is None

    def test_compact_missing_file_is_noop(self, tmp_path):
        stats = JobJournal(tmp_path / "absent.jsonl").compact()
        assert stats["events_before"] == 0 and stats["events_after"] == 0

    def test_compacted_journal_stays_framed_and_valid(self, tmp_path):
        from repro.obs.atomicio import read_jsonl

        journal = JobJournal(tmp_path / "j.jsonl")
        self._lifecycle(journal, "a")
        journal.compact()
        _, report = read_jsonl(journal.path, artifact="journal")
        assert report.clean and report.n_loaded == 1

    def test_audit_records_keep_only_newest(self, tmp_path):
        journal = JobJournal(tmp_path / "j.jsonl")
        journal.record("recovery_audit", "-", {"recovered_jobs": 0, "gen": 1})
        self._lifecycle(journal, "a")
        journal.record("recovery_audit", "-", {"recovered_jobs": 2, "gen": 2})
        journal.compact()
        audits = [e for e in journal.events() if e["event"] == "recovery_audit"]
        assert len(audits) == 1 and audits[0]["payload"]["gen"] == 2
