"""Certain and approximately certain models (Zhen et al. [92]).

A model is *certain* when one parameter vector is optimal for **every**
possible world of the incomplete training data — then imputation is
provably unnecessary. When exact certainty fails, an *approximately
certain* model is one whose worst-case optimality gap over all worlds is at
most ε.

Both checks here are sound (no false "certain" verdicts):

- exact certainty uses the structural sufficient condition — incomplete
  rows must contribute zero loss and zero gradient at the candidate optimum
  in every world — which makes the candidate a global optimum of every
  world's convex objective;
- approximate certainty bounds the gap via strong convexity:
  ``gap_w ≤ ‖∇L_w(θ)‖² / (2λ)`` for the λ-strongly-convex ridge objective,
  with the gradient norm bounded over worlds by interval arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .intervals import Interval
from .symbolic import UncertainDataset

__all__ = [
    "CertainModelVerdict",
    "certain_model_regression",
    "certain_model_svm",
    "approximately_certain_model",
]


@dataclass
class CertainModelVerdict:
    """Outcome of a certain-model check."""

    certain: bool
    theta: np.ndarray | None
    reason: str
    gap_bound: float | None = None
    extras: dict = field(default_factory=dict)


def _split_rows(X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    incomplete = np.isnan(X).any(axis=1)
    return np.flatnonzero(~incomplete), np.flatnonzero(incomplete)


def certain_model_regression(
    X: Any, y: Any, tol: float = 1e-8
) -> CertainModelVerdict:
    """Does one least-squares model fit every completion of the data?

    Sufficient (and under mild genericity necessary) condition: the OLS
    optimum θ̂ of the *complete* rows must give every incomplete row zero
    residual in every world — which holds iff the observed part of the row
    already has zero residual under θ̂ **and** θ̂ is zero on the row's
    missing features. Then every world's total loss at θ̂ equals the
    complete-row loss, which no θ can beat in any world (each world's loss
    is ≥ its complete-row part, minimised by θ̂ when the incomplete rows fit
    exactly), so θ̂ is optimal everywhere.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    complete, incomplete = _split_rows(X)
    if len(incomplete) == 0:
        theta, *__ = np.linalg.lstsq(X, y, rcond=None)
        return CertainModelVerdict(True, theta, "no missing values")
    if len(complete) == 0:
        return CertainModelVerdict(False, None, "every row has missing values")
    theta, *__ = np.linalg.lstsq(X[complete], y[complete], rcond=None)
    # θ̂ must be the *unique* complete-row optimum for the argument to close.
    gram = X[complete].T @ X[complete]
    if np.linalg.matrix_rank(gram) < X.shape[1]:
        return CertainModelVerdict(
            False, None, "complete rows do not determine a unique optimum"
        )
    complete_residual = X[complete] @ theta - y[complete]
    if np.max(np.abs(complete_residual)) > tol:
        return CertainModelVerdict(
            False,
            None,
            "complete rows are not exactly fit; missing cells can shift the optimum",
        )
    for i in incomplete:
        missing = np.isnan(X[i])
        if np.max(np.abs(theta[missing])) > tol:
            return CertainModelVerdict(
                False,
                None,
                f"row {i} misses features with non-zero coefficients",
            )
        observed_residual = float(
            np.nansum(X[i][~missing] * theta[~missing]) - y[i]
        )
        if abs(observed_residual) > tol:
            return CertainModelVerdict(
                False, None, f"row {i} has non-zero residual on observed features"
            )
    return CertainModelVerdict(True, theta, "certain model exists")


def certain_model_svm(
    X: Any, y_signed: Any, C: float = 1.0, tol: float = 1e-8
) -> CertainModelVerdict:
    """Does one (squared-hinge) SVM fit every completion of the data?

    Sufficient condition: fit the SVM on the complete rows; if every
    incomplete row has margin strictly greater than 1 in **every** world
    (interval lower bound of ``y·(wᵀx + b)`` above 1), those rows contribute
    zero loss and zero gradient everywhere, so the complete-row optimum is a
    global optimum of every world.
    """
    from ..learn.models.linear import LinearSVC

    X = np.asarray(X, dtype=float)
    y_signed = np.asarray(y_signed, dtype=float)
    complete, incomplete = _split_rows(X)
    if len(incomplete) == 0:
        model = LinearSVC(C=C).fit(X, np.where(y_signed > 0, 1, 0))
        theta = np.append(model.coef_, model.intercept_)
        return CertainModelVerdict(True, theta, "no missing values")
    if len(complete) == 0:
        return CertainModelVerdict(False, None, "every row has missing values")
    labels = np.where(y_signed > 0, 1, 0)
    if len(np.unique(labels[complete])) < 2:
        return CertainModelVerdict(False, None, "complete rows are single-class")
    model = LinearSVC(C=C).fit(X[complete], labels[complete])
    w, b = model.coef_, model.intercept_
    for i in incomplete:
        missing = np.isnan(X[i])
        lo = X[i].copy()
        hi = X[i].copy()
        # Missing cells range over the observed column extent.
        for j in np.flatnonzero(missing):
            col = X[:, j]
            present = col[~np.isnan(col)]
            lo[j] = float(present.min()) if present.size else 0.0
            hi[j] = float(present.max()) if present.size else 0.0
        row = Interval(lo, hi)
        margin = (row * w).sum() * y_signed[i] + y_signed[i] * b
        if float(margin.lo) <= 1.0 + tol:
            return CertainModelVerdict(
                False,
                None,
                f"row {i} can become a support vector in some world",
            )
    theta = np.append(w, b)
    return CertainModelVerdict(True, theta, "incomplete rows are never support vectors")


def approximately_certain_model(
    dataset: UncertainDataset, l2: float = 0.1, epsilon: float = 0.05
) -> CertainModelVerdict:
    """ε-certainty for ridge regression via a strong-convexity gap bound.

    Fits θ on the center world and bounds, over all worlds w,
    ``L_w(θ) − min L_w ≤ ‖∇L_w(θ)‖² / (2λ)`` where the gradient
    ``∇L_w(θ) = A(w)θ − b(w) + λθ`` is evaluated in interval arithmetic.
    Verdict ``certain`` means θ is within ε of optimal in every world.
    """
    if l2 <= 0:
        raise ValueError("l2 must be positive")
    n, d = dataset.X.shape
    Xc = dataset.X.center
    A_c = Xc.T @ Xc / n
    b_c = Xc.T @ dataset.y / n
    theta = np.linalg.solve(A_c + l2 * np.eye(d), b_c)

    X_int = dataset.X
    A_int = X_int.T.matmul(X_int) * (1.0 / n)
    b_int = X_int.T.matmul(dataset.y.reshape(-1, 1)) * (1.0 / n)
    grad = A_int.matmul(theta.reshape(-1, 1)) - b_int + (l2 * theta).reshape(-1, 1)
    grad_sup = np.maximum(np.abs(grad.lo), np.abs(grad.hi)).reshape(-1)
    gap_bound = float(grad_sup @ grad_sup) / (2.0 * l2)
    return CertainModelVerdict(
        certain=gap_bound <= epsilon,
        theta=theta,
        reason=f"worst-case optimality gap ≤ {gap_bound:.4g} (ε = {epsilon:g})",
        gap_bound=gap_bound,
        extras={"epsilon": epsilon, "l2": l2},
    )
