"""Fairness debugging with Gopher-style explanations.

A hiring model trained on data with systematic label bias against group B
becomes unfair. Gopher explains *why*: it searches for compact predicates
over the training data whose removal most reduces the fairness violation
(per removed tuple) without destroying accuracy.

Run with:  python examples/fairness_debugging.py
"""

import numpy as np

from repro.datasets import make_biased_hiring
from repro.importance import gopher_explanations
from repro.learn import LogisticRegression, clone
from repro.learn.metrics import demographic_parity_difference, group_rates
from repro.viz import format_records


def featurize(frame):
    numeric = frame.to_numpy(["skill", "experience"])
    indicator = (frame["group"] == "B").astype(float).reshape(-1, 1)
    return np.column_stack([numeric, indicator])


def main() -> None:
    train = make_biased_hiring(n=500, bias_strength=0.7, seed=1)
    test = make_biased_hiring(n=300, bias_strength=0.0, seed=2)  # unbiased truth
    x_test = featurize(test)
    y_test = np.asarray(test["hired"].to_list())
    groups = np.asarray(test["group"].to_list())

    model = LogisticRegression(max_iter=80).fit(
        featurize(train), np.asarray(train["hired"].to_list())
    )
    predictions = model.predict(x_test)
    print("per-group behaviour of the model trained on biased data:")
    for group, rates in group_rates(y_test, predictions, groups, positive="yes").items():
        print(
            f"  group {group}: selection rate {rates['selection_rate']:.2f}, "
            f"TPR {rates['tpr']:.2f} (n={rates['size']})"
        )
    bias = demographic_parity_difference(y_test, predictions, groups, positive="yes")
    print(f"demographic parity violation: {bias:.3f}\n")

    explanations = gopher_explanations(
        train,
        LogisticRegression(max_iter=80),
        featurize,
        label_column="hired",
        bias_metric=lambda m: demographic_parity_difference(
            y_test, m.predict(x_test), groups, positive="yes"
        ),
        accuracy_metric=lambda m: float(np.mean(m.predict(x_test) == y_test)),
        explain_columns=["group", "hired"],
        top_k=5,
    )
    print("top Gopher explanations (remove subset → bias drops):")
    rows = [
        {
            "predicate": str(e.predicate),
            "support": e.support,
            "bias_before": e.bias_before,
            "bias_after": e.bias_after,
            "accuracy_cost": e.accuracy_cost,
        }
        for e in explanations
    ]
    print(format_records(rows))

    best = explanations[0]
    print(
        f"\nrepair: dropping `{best.predicate}` ({best.support} tuples) cuts the "
        f"violation from {best.bias_before:.3f} to {best.bias_after:.3f} "
        f"at {best.accuracy_cost:+.3f} accuracy cost."
    )


if __name__ == "__main__":
    main()
