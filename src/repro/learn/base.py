"""Estimator and transformer base classes (scikit-learn-style contract).

Every model in :mod:`repro.learn.models` implements ``fit(X, y)``,
``predict(X)``, and ``score(X, y)``; probabilistic classifiers add
``predict_proba(X)``. The data-importance and uncertainty modules are written
against this contract only, so swapping the model under study is a one-line
change, exactly as in the tutorial's hands-on notebooks.
"""

from __future__ import annotations

import copy
from typing import Any

import numpy as np

__all__ = ["Estimator", "Transformer", "clone", "check_xy", "check_matrix"]


def check_matrix(X: Any) -> np.ndarray:
    """Validate and convert features into a dense 2-D float matrix."""
    X = np.asarray(X, dtype=float)
    if X.ndim == 1:
        X = X.reshape(-1, 1)
    if X.ndim != 2:
        raise ValueError(f"expected 2-D feature matrix, got shape {X.shape}")
    return X


def check_xy(X: Any, y: Any) -> tuple[np.ndarray, np.ndarray]:
    """Validate an (X, y) training pair."""
    X = check_matrix(X)
    y = np.asarray(y)
    if y.ndim != 1:
        raise ValueError(f"expected 1-D target, got shape {y.shape}")
    if len(X) != len(y):
        raise ValueError(f"X has {len(X)} rows but y has {len(y)}")
    if len(X) == 0:
        raise ValueError("cannot fit on an empty dataset")
    return X, y


def clone(estimator: "Estimator") -> "Estimator":
    """Fresh unfitted copy with the same hyper-parameters."""
    return copy.deepcopy(estimator).reset()


class Estimator:
    """Base class for predictive models."""

    def fit(self, X: Any, y: Any) -> "Estimator":
        raise NotImplementedError

    def predict(self, X: Any) -> np.ndarray:
        raise NotImplementedError

    def reset(self) -> "Estimator":
        """Drop fitted state; hyper-parameters survive."""
        for name in list(vars(self)):
            if name.endswith("_") and not name.startswith("_"):
                delattr(self, name)
        return self

    @property
    def is_fitted(self) -> bool:
        return any(
            name.endswith("_") and not name.startswith("_") for name in vars(self)
        )

    def _require_fitted(self) -> None:
        if not self.is_fitted:
            raise RuntimeError(f"{type(self).__name__} is not fitted")

    def score(self, X: Any, y: Any) -> float:
        """Mean accuracy for classifiers (regressors override with R²)."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = {
            k: v for k, v in vars(self).items()
            if not k.endswith("_") and not k.startswith("_")
        }
        args = ", ".join(f"{k}={v!r}" for k, v in params.items())
        return f"{type(self).__name__}({args})"


class Transformer:
    """Base class for feature transformers (``fit`` / ``transform``)."""

    def fit(self, X: Any, y: Any = None) -> "Transformer":
        raise NotImplementedError

    def transform(self, X: Any) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, X: Any, y: Any = None) -> np.ndarray:
        return self.fit(X, y).transform(X)

    def reset(self) -> "Transformer":
        for name in list(vars(self)):
            if name.endswith("_") and not name.startswith("_"):
                delattr(self, name)
        return self
