"""Predictive models implementing the scikit-learn-style contract."""

from .baseline import MajorityClassifier, RandomClassifier
from .forest import RandomForestClassifier
from .knn import KNeighborsClassifier, pairwise_distances
from .linear import LinearRegression, LinearSVC, RidgeRegression
from .logistic import LogisticRegression, sigmoid
from .naive_bayes import GaussianNB
from .tree import DecisionTreeClassifier

__all__ = [
    "MajorityClassifier",
    "RandomForestClassifier",
    "RandomClassifier",
    "KNeighborsClassifier",
    "pairwise_distances",
    "LinearRegression",
    "LinearSVC",
    "RidgeRegression",
    "LogisticRegression",
    "sigmoid",
    "GaussianNB",
    "DecisionTreeClassifier",
]
