"""Unit tests for splitting and cross-validation."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.frame import DataFrame
from repro.learn import KFold, LogisticRegression, cross_val_score, split_frame, train_test_split


class TestTrainTestSplit:
    def test_sizes(self):
        X = np.zeros((100, 2))
        y = np.zeros(100)
        Xtr, Xte, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0)
        assert len(Xte) == 25 and len(Xtr) == 75
        assert len(ytr) == 75 and len(yte) == 25

    def test_deterministic_by_seed(self):
        X = np.arange(20).reshape(-1, 1)
        y = np.arange(20)
        a = train_test_split(X, y, seed=3)
        b = train_test_split(X, y, seed=3)
        assert np.array_equal(a[0], b[0])

    def test_different_seeds_differ(self):
        X = np.arange(50).reshape(-1, 1)
        y = np.arange(50)
        a = train_test_split(X, y, seed=1)
        b = train_test_split(X, y, seed=2)
        assert not np.array_equal(a[1], b[1])

    def test_no_overlap_and_full_coverage(self):
        X = np.arange(30).reshape(-1, 1)
        y = np.arange(30)
        Xtr, Xte, *__ = train_test_split(X, y, seed=0)
        combined = sorted(Xtr.ravel().tolist() + Xte.ravel().tolist())
        assert combined == list(range(30))

    def test_stratified_preserves_class_ratio(self):
        y = np.asarray([0] * 80 + [1] * 20)
        X = np.zeros((100, 1))
        __, __, ytr, yte = train_test_split(X, y, test_size=0.25, seed=0, stratify=y)
        assert np.isclose(np.mean(yte == 1), 0.2, atol=0.02)

    def test_bad_test_size_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(4), test_size=1.5)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split(np.zeros((4, 1)), np.zeros(3))


class TestSplitFrame:
    def test_partition_sizes(self):
        df = DataFrame({"v": list(range(100))})
        a, b, c = split_frame(df, (0.6, 0.2, 0.2), seed=0)
        assert (a.num_rows, b.num_rows, c.num_rows) == (60, 20, 20)

    def test_partitions_disjoint_by_row_id(self):
        df = DataFrame({"v": list(range(50))})
        parts = split_frame(df, (0.5, 0.5), seed=1)
        ids = [set(p.row_ids.tolist()) for p in parts]
        assert ids[0] & ids[1] == set()
        assert ids[0] | ids[1] == set(range(50))

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            split_frame(DataFrame({"v": [1]}), (0.5, 0.2))


class TestKFold:
    def test_folds_partition_data(self):
        folds = list(KFold(4, seed=0).split(20))
        assert len(folds) == 4
        all_test = sorted(np.concatenate([test for __, test in folds]).tolist())
        assert all_test == list(range(20))

    def test_train_test_disjoint(self):
        for train, test in KFold(3, seed=0).split(12):
            assert set(train) & set(test) == set()

    def test_too_few_examples_raises(self):
        with pytest.raises(ValueError):
            list(KFold(5).split(3))

    def test_invalid_n_splits_raises(self):
        with pytest.raises(ValueError):
            KFold(1)


class TestCrossValScore:
    def test_scores_reasonable_on_separable_data(self):
        X, y = make_classification(n=150, seed=0)
        scores = cross_val_score(LogisticRegression(max_iter=50), X, y, n_splits=3)
        assert len(scores) == 3
        assert scores.mean() > 0.8
