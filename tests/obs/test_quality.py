"""Streaming per-column quality collectors and the pipeline monitor.

Pins the collector's core contract — chunked updates aggregate exactly
like one pass over the concatenation — plus the KMV distinctness switch,
frozen histogram edges, bounded top-k, and the executor integration
(``monitor=`` never changes what a pipeline computes).
"""

import numpy as np
import pytest

from repro.frame import Column, DataFrame
from repro.learn import ColumnTransformer, StandardScaler
from repro.obs.quality import (
    DISTINCT_CAP,
    TOP_K,
    TRACKED_CATEGORIES,
    ColumnProfile,
    ColumnQualityCollector,
    NodeQualityProfile,
    PipelineMonitor,
    fingerprint_frame,
    profile_frame,
)
from repro.pipeline import PipelinePlan, execute


def build_pipeline(n: int = 80):
    frame = DataFrame(
        {
            "value": np.linspace(0.0, 1.0, n),
            "group": ["a" if i % 3 else "b" for i in range(n)],
            "label": ["pos" if i % 2 else "neg" for i in range(n)],
        }
    )
    plan = PipelinePlan()
    sink = (
        plan.source("t")
        .filter(lambda df: df["value"] <= 0.95, "value <= 0.95")
        .with_column("feat", lambda df: df["value"] * 2.0, "feat")
        .encode(
            ColumnTransformer([(StandardScaler(), ["feat"])]), label_column="label"
        )
    )
    return frame, sink


class TestColumnCollector:
    def test_chunked_updates_equal_single_pass(self):
        rng = np.random.default_rng(7)
        values = rng.normal(3.0, 2.0, size=500)
        column = Column(values)
        whole = ColumnQualityCollector("x").update(column).snapshot()
        chunked = ColumnQualityCollector("x")
        for start in (0, 130, 260, 390):
            chunked.update(Column(values[start : start + 130]))
        merged = chunked.snapshot()
        assert merged.count == whole.count
        assert merged.mean == pytest.approx(whole.mean)
        assert merged.std == pytest.approx(whole.std)
        assert merged.min == whole.min
        assert merged.max == whole.max
        assert merged.distinct == whole.distinct

    def test_completeness_counts_masked_cells(self):
        column = Column(
            np.asarray([1.0, 2.0, 3.0, 4.0]),
            mask=np.asarray([False, True, True, False]),
        )
        profile = ColumnQualityCollector("x").update(column).snapshot()
        assert profile.count == 4
        assert profile.missing == 2
        assert profile.completeness == pytest.approx(0.5)
        # Masked cells never contribute to the moments.
        assert profile.mean == pytest.approx(2.5)

    def test_all_missing_column_profiles_without_stats(self):
        column = Column(np.asarray([np.nan, np.nan]))
        profile = ColumnQualityCollector("x").update(column).snapshot()
        assert profile.completeness == 0.0
        assert profile.mean is None
        assert profile.histogram is None

    def test_distinct_exact_until_cap_then_kmv_estimate(self):
        collector = ColumnQualityCollector("x")
        collector.update(Column(np.arange(DISTINCT_CAP, dtype=float)))
        assert collector._distinct_exact
        assert collector.distinct == DISTINCT_CAP
        collector.update(Column(np.arange(5 * DISTINCT_CAP, dtype=float)))
        profile = collector.snapshot()
        assert not profile.distinct_exact
        # KMV over crc32 is coarse; demand the right order of magnitude.
        assert 0.5 * 5 * DISTINCT_CAP < profile.distinct < 2.0 * 5 * DISTINCT_CAP

    def test_histogram_edges_freeze_and_clip(self):
        collector = ColumnQualityCollector("x", bins=4)
        collector.update(Column(np.asarray([0.0, 1.0, 2.0, 3.0, 4.0])))
        edges_first = list(collector.snapshot().histogram["edges"])
        collector.update(Column(np.asarray([100.0, -50.0])))
        profile = collector.snapshot()
        assert profile.histogram["edges"] == edges_first  # frozen on first batch
        assert sum(profile.histogram["counts"]) == 7  # clipped, not dropped
        assert profile.histogram["counts"][0] >= 2  # -50 piled into the low bin
        assert profile.max == 100.0  # true extremes still tracked

    def test_constant_column_widens_degenerate_edges(self):
        profile = (
            ColumnQualityCollector("x").update(Column(np.full(10, 7.0))).snapshot()
        )
        edges = profile.histogram["edges"]
        assert edges[0] < 7.0 < edges[-1]
        assert sum(profile.histogram["counts"]) == 10
        assert profile.std == pytest.approx(0.0)

    def test_categorical_top_k_is_bounded_with_other_overflow(self):
        values = [f"cat{i:03d}" for i in range(TRACKED_CATEGORIES)] * 2
        overflow = [f"extra{i:03d}" for i in range(20)]
        collector = ColumnQualityCollector("x")
        collector.update(Column(np.asarray(values + overflow, dtype=object)))
        profile = collector.snapshot()
        assert len(profile.top_k) == TOP_K
        assert all(count == 2 for __, count in profile.top_k)
        # Everything beyond the reported top-k lands in other_count.
        total = sum(count for __, count in profile.top_k) + profile.other_count
        assert total == len(values) + len(overflow)

    def test_profile_roundtrips_through_dict_ignoring_unknown_keys(self):
        profile = (
            ColumnQualityCollector("x")
            .update(Column(np.asarray(["a", "b", "a"], dtype=object)))
            .snapshot()
        )
        payload = profile.to_dict()
        payload["a_future_field"] = {"nested": True}
        restored = ColumnProfile.from_dict(payload)
        assert restored.name == profile.name
        assert restored.distinct == profile.distinct
        assert restored.top_k == [["a", 2], ["b", 1]]


class TestFrameProfiles:
    def test_profile_frame_covers_every_column(self):
        frame = DataFrame(
            {"x": np.asarray([1.0, 2.0]), "s": ["u", "v"]}
        )
        profiles = profile_frame(frame)
        assert set(profiles) == {"x", "s"}
        assert profiles["x"].kind == "float"
        assert profiles["s"].kind == "string"

    def test_fingerprint_changes_with_schema_not_with_copy(self):
        frame = DataFrame({"x": np.asarray([1.0, 2.0]), "s": ["u", "v"]})
        fp = fingerprint_frame(frame)
        assert fp == fingerprint_frame(frame.copy())
        renamed = DataFrame({"y": np.asarray([1.0, 2.0]), "s": ["u", "v"]})
        assert fingerprint_frame(renamed)["schema_hash"] != fp["schema_hash"]


class TestPipelineMonitor:
    def test_monitor_profiles_every_node(self):
        frame, sink = build_pipeline(60)
        monitor = PipelineMonitor()
        result = execute(sink, {"t": frame}, monitor=monitor)
        profiles = result.quality_profiles
        kinds = sorted(p.node_kind for p in profiles.values())
        assert kinds == ["encode", "filter", "map", "source"]
        source = next(p for p in profiles.values() if p.node_kind == "source")
        assert source.rows_out == frame.num_rows
        assert set(source.columns) == {"value", "group", "label"}
        map_node = next(p for p in profiles.values() if p.node_kind == "map")
        assert "feat" in map_node.columns
        assert all(p.wall_time_s >= 0.0 for p in profiles.values())

    def test_monitor_true_attaches_throwaway_profiles(self):
        frame, sink = build_pipeline(30)
        result = execute(sink, {"t": frame}, monitor=True)
        assert result.quality_profiles

    def test_monitoring_never_changes_outputs(self):
        frame, sink = build_pipeline(60)
        plain = execute(sink, {"t": frame})
        monitored = execute(sink, {"t": frame}, monitor=True)
        np.testing.assert_array_equal(plain.X, monitored.X)
        np.testing.assert_array_equal(plain.y, monitored.y)
        assert plain.frame.num_rows == monitored.frame.num_rows
        assert not plain.quality_profiles  # default stays profile-free

    def test_shared_monitor_streams_across_runs(self):
        frame, sink = build_pipeline(40)
        monitor = PipelineMonitor()
        execute(sink, {"t": frame}, monitor=monitor)
        execute(sink, {"t": frame}, monitor=monitor)
        source = next(
            p for p in monitor.profiles().values() if p.node_kind == "source"
        )
        assert source.rows_out == 2 * frame.num_rows
        assert source.columns["value"].count == 2 * frame.num_rows

    def test_max_rows_samples_wide_outputs(self):
        frame, sink = build_pipeline(80)
        monitor = PipelineMonitor(max_rows=10)
        execute(sink, {"t": frame}, monitor=monitor)
        source = next(
            p for p in monitor.profiles().values() if p.node_kind == "source"
        )
        assert source.rows_out == frame.num_rows  # row accounting stays exact
        assert source.columns["value"].count == 10  # stats are sampled

    def test_node_profile_dict_roundtrip(self):
        frame, sink = build_pipeline(25)
        monitor = PipelineMonitor()
        execute(sink, {"t": frame}, monitor=monitor)
        for key, profile in monitor.profiles().items():
            payload = profile.to_dict()
            payload["future"] = 1
            restored = NodeQualityProfile.from_dict(payload)
            assert restored.key == key == profile.key
            assert set(restored.columns) == set(profile.columns)
