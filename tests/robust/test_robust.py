"""Tests for certified-robustness defences (partition ensembles, smoothing)."""

import numpy as np
import pytest

from repro.datasets import make_blobs, make_classification
from repro.learn import KNeighborsClassifier, LogisticRegression
from repro.robust import PartitionEnsemble, SmoothedClassifier


@pytest.fixture(scope="module")
def task():
    X, y = make_classification(n=400, n_features=4, seed=2)
    return X[:300], y[:300], X[300:], y[300:]


class TestPartitionEnsemble:
    def test_accuracy_reasonable(self, task):
        Xtr, ytr, Xv, yv = task
        ensemble = PartitionEnsemble(
            LogisticRegression(max_iter=40), n_partitions=9
        ).fit(Xtr, ytr)
        assert ensemble.score(Xv, yv) > 0.8

    def test_partitions_disjoint_and_complete(self, task):
        Xtr, ytr, *__ = task
        ensemble = PartitionEnsemble(
            LogisticRegression(max_iter=30), n_partitions=7
        ).fit(Xtr, ytr)
        assert sum(ensemble.partition_sizes_) == len(ytr)
        assert len(ensemble.models_) == 7

    def test_certificate_semantics(self, task):
        """radius = floor((v1 - v2 - 1)/2) against the vote counts."""
        Xtr, ytr, Xv, __ = task
        ensemble = PartitionEnsemble(
            LogisticRegression(max_iter=30), n_partitions=9
        ).fit(Xtr, ytr)
        for cp in ensemble.certified_predict(Xv[:20]):
            counts = sorted(cp.votes.values(), reverse=True)
            v1, v2 = counts[0], counts[1] if len(counts) > 1 else 0
            assert cp.certified_radius == max((v1 - v2 - 1) // 2, 0)

    def test_certificate_sound_against_actual_poisoning(self):
        """Flipping ≤ radius labels must not change certified predictions."""
        X, y = make_blobs(n=240, centers=2, spread=0.8, seed=3)
        Xtr, ytr = X[:200], y[:200].copy()
        Xv = X[200:220]
        ensemble = PartitionEnsemble(
            KNeighborsClassifier(3), n_partitions=11, seed=1
        ).fit(Xtr, ytr)
        certs = ensemble.certified_predict(Xv)
        rng = np.random.default_rng(0)
        for trial in range(5):
            budget = 2
            poisoned = ytr.copy()
            victims = rng.choice(len(ytr), size=budget, replace=False)
            poisoned[victims] = 1 - poisoned[victims]
            attacked = PartitionEnsemble(
                KNeighborsClassifier(3), n_partitions=11, seed=1
            ).fit(Xtr, poisoned)
            new_preds = attacked.predict(Xv)
            for i, cp in enumerate(certs):
                if cp.certified_radius >= budget:
                    assert new_preds[i] == cp.label

    def test_more_partitions_larger_max_radius(self, task):
        Xtr, ytr, Xv, __ = task
        small = PartitionEnsemble(LogisticRegression(max_iter=30), n_partitions=3).fit(Xtr, ytr)
        large = PartitionEnsemble(LogisticRegression(max_iter=30), n_partitions=15).fit(Xtr, ytr)
        max_small = max(c.certified_radius for c in small.certified_predict(Xv))
        max_large = max(c.certified_radius for c in large.certified_predict(Xv))
        assert max_large > max_small

    def test_certified_accuracy_monotone_in_budget(self, task):
        Xtr, ytr, Xv, yv = task
        ensemble = PartitionEnsemble(
            LogisticRegression(max_iter=30), n_partitions=9
        ).fit(Xtr, ytr)
        accs = [ensemble.certified_accuracy(Xv, yv, b) for b in (0, 1, 2, 3, 4)]
        assert all(b <= a + 1e-12 for a, b in zip(accs, accs[1:]))

    def test_invalid_params(self, task):
        Xtr, ytr, *__ = task
        with pytest.raises(ValueError):
            PartitionEnsemble(LogisticRegression(), n_partitions=0)
        with pytest.raises(ValueError):
            PartitionEnsemble(LogisticRegression(), n_partitions=10).fit(
                Xtr[:5], ytr[:5]
            )


class TestSmoothedClassifier:
    def test_predicts_reasonably(self, task):
        Xtr, ytr, Xv, yv = task
        smoothed = SmoothedClassifier(
            LogisticRegression(max_iter=30), noise=0.1, n_samples=7, seed=0
        ).fit(Xtr, ytr)
        assert smoothed.score(Xv, yv) > 0.75

    def test_high_noise_enables_certificates(self, task):
        """With noise ≥ 0.3, a unanimous smoothed vote certifies ≥ 1 flip."""
        Xtr, ytr, Xv, __ = task
        smoothed = SmoothedClassifier(
            LogisticRegression(max_iter=30), noise=0.3, n_samples=9, seed=0
        ).fit(Xtr, ytr)
        certs = smoothed.certified_predict(Xv)
        unanimous = [c for c in certs if c.top_share == 1.0]
        assert unanimous, "expected some unanimous votes"
        assert all(c.certified_flips >= 1 for c in unanimous)

    def test_low_noise_certifies_nothing(self, task):
        """Binary TV = 1 − 2·noise: below 0.25 noise, margin 1 < 2·TV."""
        Xtr, ytr, Xv, __ = task
        smoothed = SmoothedClassifier(
            LogisticRegression(max_iter=30), noise=0.1, n_samples=5, seed=0
        ).fit(Xtr, ytr)
        assert all(c.certified_flips == 0 for c in smoothed.certified_predict(Xv))

    def test_invalid_noise_raises(self):
        with pytest.raises(ValueError):
            SmoothedClassifier(LogisticRegression(), noise=0.6)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            SmoothedClassifier(LogisticRegression(), noise=0.1).fit(
                np.zeros((5, 2)), np.zeros(5)
            )
