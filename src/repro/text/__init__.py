"""Deterministic offline text features (SentenceBERT stand-in)."""

from .embedder import SentenceBertTransformer, TextEmbedder
from .hashing import HashingVectorizer, stable_hash
from .lexicon import HEDGE_WORDS, NEGATIVE_WORDS, POSITIVE_WORDS, SentimentLexicon

__all__ = [
    "SentenceBertTransformer",
    "TextEmbedder",
    "HashingVectorizer",
    "stable_hash",
    "SentimentLexicon",
    "POSITIVE_WORDS",
    "NEGATIVE_WORDS",
    "HEDGE_WORDS",
]
