"""Value-noise injectors: gaussian noise, outliers, categorical typos."""

from __future__ import annotations

import numpy as np

from ..frame import DataFrame
from .report import ErrorReport

__all__ = ["inject_gaussian_noise", "inject_outliers", "inject_typos", "inject_unit_mismatch"]


def _pick(n: int, fraction: float, rng: np.random.Generator) -> np.ndarray:
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    count = int(round(fraction * n))
    return rng.choice(n, size=count, replace=False) if count else np.empty(0, np.int64)


def inject_gaussian_noise(
    frame: DataFrame,
    column: str,
    fraction: float = 0.1,
    scale: float = 1.0,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Add N(0, scale·σ) noise to a fraction of a numeric column."""
    rng = np.random.default_rng(seed)
    target = frame.column(column)
    if not target.is_numeric:
        raise TypeError(f"column {column!r} is not numeric")
    positions = _pick(frame.num_rows, fraction, rng)
    values = target.to_numpy(fill=np.nan).astype(float)
    sigma = np.nanstd(values) or 1.0
    originals = [values[p] for p in positions]
    noisy = values[positions] + rng.normal(scale=scale * sigma, size=len(positions))
    out = frame.copy()
    if len(positions):
        out[column] = target.set_values(positions, noisy)
    report = ErrorReport(
        kind="gaussian_noise",
        column=column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={"fraction": fraction, "scale": scale, "seed": seed},
    )
    return out, report


def inject_outliers(
    frame: DataFrame,
    column: str,
    fraction: float = 0.05,
    magnitude: float = 8.0,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Replace a fraction of a numeric column with values ``magnitude·σ`` away."""
    rng = np.random.default_rng(seed)
    target = frame.column(column)
    if not target.is_numeric:
        raise TypeError(f"column {column!r} is not numeric")
    positions = _pick(frame.num_rows, fraction, rng)
    values = target.to_numpy(fill=np.nan).astype(float)
    sigma = np.nanstd(values) or 1.0
    mean = np.nanmean(values)
    originals = [values[p] for p in positions]
    signs = rng.choice([-1.0, 1.0], size=len(positions))
    extreme = mean + signs * magnitude * sigma
    out = frame.copy()
    if len(positions):
        out[column] = target.set_values(positions, extreme)
    report = ErrorReport(
        kind="outlier",
        column=column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={"fraction": fraction, "magnitude": magnitude, "seed": seed},
    )
    return out, report


def _typo(word: str, rng: np.random.Generator) -> str:
    """One random edit: case flip, adjacent swap, char drop, or padding."""
    if not word:
        return word
    choice = int(rng.integers(4))
    idx = int(rng.integers(len(word)))
    if choice == 0:
        return word[:idx] + word[idx].swapcase() + word[idx + 1 :]
    if choice == 1 and len(word) > 1:
        j = min(idx, len(word) - 2)
        return word[:j] + word[j + 1] + word[j] + word[j + 2 :]
    if choice == 2 and len(word) > 1:
        return word[:idx] + word[idx + 1 :]
    return " " + word  # leading whitespace: breaks exact joins, not fuzzy ones

def inject_typos(
    frame: DataFrame,
    column: str,
    fraction: float = 0.1,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Corrupt string cells with single-edit typos (breaks exact join keys)."""
    rng = np.random.default_rng(seed)
    target = frame.column(column)
    if target.dtype_kind != "string":
        raise TypeError(f"column {column!r} is not a string column")
    candidates = np.flatnonzero(~target.mask)
    count = min(int(round(fraction * frame.num_rows)), len(candidates))
    positions = (
        rng.choice(candidates, size=count, replace=False) if count else np.empty(0, np.int64)
    )
    cells = target.to_list()
    originals = [cells[p] for p in positions]
    corrupted = [_typo(str(cells[p]), rng) for p in positions]
    out = frame.copy()
    if len(positions):
        out[column] = target.set_values(positions, np.asarray(corrupted, dtype=object))
    report = ErrorReport(
        kind="typo",
        column=column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={"fraction": fraction, "seed": seed},
    )
    return out, report


def inject_unit_mismatch(
    frame: DataFrame,
    column: str,
    factor: float = 100.0,
    fraction: float = 0.1,
    seed: int = 0,
) -> tuple[DataFrame, ErrorReport]:
    """Multiply a fraction of a numeric column by a unit-conversion factor.

    Models the classic ingestion bug where part of a feed reports in
    different units (metres vs centimetres, dollars vs cents): affected
    values are internally consistent but off by a constant factor — harder
    to spot than outliers because small originals stay in range.
    """
    if factor == 0:
        raise ValueError("factor must be non-zero")
    rng = np.random.default_rng(seed)
    target = frame.column(column)
    if not target.is_numeric:
        raise TypeError(f"column {column!r} is not numeric")
    positions = _pick(frame.num_rows, fraction, rng)
    values = target.to_numpy(fill=np.nan).astype(float)
    originals = [values[p] for p in positions]
    out = frame.copy()
    if len(positions):
        out[column] = target.set_values(positions, values[positions] * factor)
    report = ErrorReport(
        kind="unit_mismatch",
        column=column,
        row_ids=frame.row_ids[positions],
        original_values=originals,
        params={"factor": factor, "fraction": fraction, "seed": seed},
    )
    return out, report
