"""Unit tests for the metrics registry: instruments, snapshots, resets."""

import json

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import HISTOGRAM_WINDOW, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates(self):
        c = obs_metrics.counter("test.rows")
        c.inc()
        c.inc(4.5)
        assert c.value == 5.5
        # Same name returns the same instrument.
        assert obs_metrics.counter("test.rows") is c

    def test_counter_rejects_negative_increments(self):
        with pytest.raises(ValueError):
            obs_metrics.counter("test.neg").inc(-1)

    def test_gauge_is_last_write_wins(self):
        g = obs_metrics.gauge("test.depth")
        g.set(3)
        g.set(7)
        assert g.value == 7.0
        assert g.snapshot() == {"type": "gauge", "value": 7.0}

    def test_histogram_aggregates_and_windows(self):
        h = obs_metrics.histogram("test.latency")
        for value in (1.0, 3.0, 2.0):
            h.observe(value)
        snap = h.snapshot()
        assert snap["count"] == 3
        assert snap["sum"] == 6.0
        assert snap["min"] == 1.0
        assert snap["max"] == 3.0
        assert snap["mean"] == 2.0
        assert snap["recent"] == [1.0, 3.0, 2.0]

    def test_histogram_window_is_bounded(self):
        h = obs_metrics.histogram("test.window")
        for i in range(HISTOGRAM_WINDOW + 10):
            h.observe(float(i))
        snap = h.snapshot()
        assert snap["count"] == HISTOGRAM_WINDOW + 10  # aggregate keeps all
        assert len(snap["recent"]) == HISTOGRAM_WINDOW  # window drops oldest
        assert snap["recent"][0] == 10.0

    def test_empty_histogram_snapshot_has_no_extremes(self):
        snap = obs_metrics.histogram("test.empty").snapshot()
        assert snap["min"] is None and snap["max"] is None
        assert snap["mean"] == 0.0


class TestHistogramEdgeCases:
    def test_window_overflow_evicts_in_fifo_order(self):
        h = obs_metrics.Histogram("local", window=4)
        for i in range(7):
            h.observe(float(i))
        # Exactly the 4 most recent observations survive, oldest-first.
        assert list(h.window) == [3.0, 4.0, 5.0, 6.0]
        h.observe(7.0)
        assert list(h.window) == [4.0, 5.0, 6.0, 7.0]
        # Aggregates keep counting past the window.
        assert h.count == 8
        assert h.min == 0.0 and h.max == 7.0

    def test_single_observation_answers_every_quantile(self):
        h = obs_metrics.Histogram("local")
        h.observe(42.0)
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.quantile(q) == 42.0

    def test_quantile_interpolates_and_bounds(self):
        h = obs_metrics.Histogram("local")
        for value in (4.0, 1.0, 3.0, 2.0):
            h.observe(value)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 4.0
        assert h.quantile(0.5) == pytest.approx(2.5)
        assert h.quantile(0.25) == pytest.approx(1.75)

    def test_quantile_covers_only_the_window_after_overflow(self):
        h = obs_metrics.Histogram("local", window=3)
        for value in (100.0, 1.0, 2.0, 3.0):
            h.observe(value)
        assert h.quantile(1.0) == 3.0  # the evicted 100.0 is gone

    def test_empty_quantile_is_none_and_bad_q_raises(self):
        h = obs_metrics.Histogram("local")
        assert h.quantile(0.5) is None
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_reset_restores_pristine_state(self):
        h = obs_metrics.Histogram("local", window=4)
        for i in range(10):
            h.observe(float(i))
        h.reset()
        assert h.count == 0 and h.total == 0.0
        assert h.quantile(0.5) is None
        h.observe(5.0)  # usable again after reset
        assert h.snapshot()["recent"] == [5.0]

    def test_registry_histograms_reset_after_fork(self):
        import multiprocessing as mp

        if "fork" not in mp.get_all_start_methods():
            pytest.skip("platform without fork")
        obs_metrics.histogram("test.fork").observe(1.0)

        def child(queue):
            h = obs_metrics.histogram("test.fork")
            queue.put((h.count, h.quantile(0.5)))
            h.observe(9.0)
            queue.put((h.count, h.quantile(0.5)))

        ctx = mp.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=child, args=(queue,))
        proc.start()
        proc.join()
        inherited, after = queue.get(), queue.get()
        # The fork guard dropped the parent's instruments in the child...
        assert inherited == (0, None)
        assert after == (1, 9.0)
        # ...and the parent's histogram is untouched by the child.
        h = obs_metrics.histogram("test.fork")
        assert h.count == 1 and h.quantile(0.5) == 1.0


class TestRegistrySemantics:
    def test_kind_conflict_raises(self):
        obs_metrics.counter("test.conflict")
        with pytest.raises(TypeError):
            obs_metrics.gauge("test.conflict")
        with pytest.raises(TypeError):
            obs_metrics.histogram("test.conflict")

    def test_snapshot_is_a_point_in_time_copy(self):
        c = obs_metrics.counter("test.snap")
        c.inc(2)
        before = obs_metrics.snapshot()
        c.inc(3)
        assert before["test.snap"]["value"] == 2.0
        assert obs_metrics.snapshot()["test.snap"]["value"] == 5.0

    def test_reset_zeroes_but_keeps_registrations(self):
        c = obs_metrics.counter("test.reset")
        h = obs_metrics.histogram("test.reset.h")
        c.inc(5)
        h.observe(1.0)
        obs_metrics.reset()
        assert obs_metrics.registry().names() == ["test.reset", "test.reset.h"]
        assert c.value == 0.0
        assert h.count == 0 and list(h.window) == []
        # The same objects keep working after reset.
        c.inc()
        assert obs_metrics.counter("test.reset") is c
        assert c.value == 1.0

    def test_selective_reset_by_name(self):
        a = obs_metrics.counter("test.a")
        b = obs_metrics.counter("test.b")
        a.inc(1)
        b.inc(1)
        obs_metrics.reset(["test.a", "test.unknown"])  # unknown names ignored
        assert a.value == 0.0
        assert b.value == 1.0

    def test_clear_drops_registrations(self):
        obs_metrics.counter("test.gone").inc()
        obs_metrics.registry().clear()
        assert obs_metrics.registry().names() == []
        # Re-registering after clear starts from zero.
        assert obs_metrics.counter("test.gone").value == 0.0

    def test_export_json(self, tmp_path):
        obs_metrics.counter("test.export").inc(3)
        obs_metrics.histogram("test.export.h").observe(2.0)
        path = tmp_path / "metrics.json"
        obs_metrics.registry().export_json(path)
        payload = json.loads(path.read_text())
        assert payload["test.export"] == {"type": "counter", "value": 3.0}
        assert payload["test.export.h"]["count"] == 1

    def test_independent_registries_do_not_share_state(self):
        private = MetricsRegistry()
        private.counter("test.private").inc()
        assert "test.private" not in obs_metrics.registry().names()
        assert private.snapshot()["test.private"]["value"] == 1.0
