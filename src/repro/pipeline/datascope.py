"""Datascope: Shapley importance over end-to-end ML pipelines (Karlaš et al. [39]).

The importance methods of Section 2.1 score rows of the *encoded training
matrix*. Datascope composes them with provenance so the scores land on rows
of the pipeline's *source tables*, where repairs actually happen:

1. run the pipeline with provenance tracking,
2. compute exact KNN-Shapley values on the encoded output (the KNN proxy
   makes this polynomial), and
3. push each output row's value back to the unique source tuple it descends
   from; source tuples filtered out by the pipeline receive zero (they
   cannot influence the model through this pipeline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..frame import DataFrame
from ..importance.engine import DEFAULT_CACHE_SIZE, ValuationEngine
from ..importance.knn_shapley import knn_shapley
from ..importance.shapley import shapley_mc
from ..importance.utility import Utility
from ..obs import trace as _obs
from .execute import PipelineResult

__all__ = ["SourceImportance", "datascope_importance"]


@dataclass
class SourceImportance:
    """Importance scores attributed to rows of one pipeline source table."""

    source: str
    by_row_id: dict[int, float]
    method: str = "datascope_knn_shapley"
    extras: dict = field(default_factory=dict)

    def for_frame(self, frame: DataFrame) -> np.ndarray:
        """Scores aligned with a frame's row order (0 for unused rows)."""
        return np.asarray(
            [self.by_row_id.get(int(rid), 0.0) for rid in frame.row_ids]
        )

    def lowest(self, frame: DataFrame, k: int) -> np.ndarray:
        """Positions in ``frame`` of the k least beneficial source rows.

        Rows the pipeline filtered out (score exactly 0 and absent from
        ``by_row_id``) are ranked *after* every surviving row: they cannot
        be the cause of a downstream problem through this pipeline.
        """
        scores = self.for_frame(frame)
        used = np.asarray(
            [int(rid) in self.by_row_id for rid in frame.row_ids], dtype=bool
        )
        sort_key = np.where(used, scores, np.inf)
        k = min(k, len(scores))
        return np.argsort(sort_key, kind="stable")[:k]


def datascope_importance(
    train_result: PipelineResult,
    valid_x: Any,
    valid_y: Any,
    source: str | None = None,
    k: int = 5,
    attribution: str = "unique",
    method: str = "knn",
    model: Any = None,
    n_permutations: int = 30,
    truncation_tolerance: float = 0.0,
    convergence_tolerance: float | None = None,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    engine: ValuationEngine | None = None,
) -> SourceImportance:
    """KNN-Shapley importance of a pipeline's source tuples.

    Parameters
    ----------
    train_result:
        A provenance-carrying pipeline run (from
        :func:`repro.pipeline.execute.execute`).
    valid_x, valid_y:
        Validation data *in encoded space* — typically obtained by pushing
        the validation sources through the same fitted pipeline.
    source:
        Which source table to attribute to. Defaults to the single source
        for which each output row has exactly one contributing tuple.
    k:
        KNN proxy neighbourhood size.
    attribution:
        ``"unique"`` requires each output row to descend from exactly one
        tuple of the source (the training base table). ``"shared"`` also
        handles *side tables* — one tuple feeding many output rows — by
        crediting a tuple the full value of every output row it contributed
        to (a tuple's total value is then the sum over its fan-out, matching
        the group-removal semantics of deleting that side tuple).
    method:
        ``"knn"`` (default) computes the exact closed-form KNN-Shapley
        values of the encoded output — the polynomial-time proxy that makes
        Datascope practical. ``"shapley_mc"`` instead runs Monte-Carlo
        Shapley of an *arbitrary* ``model`` over the encoded rows on the
        shared valuation engine (:mod:`repro.importance.engine`), so
        importance can be measured under the pipeline's real downstream
        model, with subset memoization, ``n_workers``-way retraining
        fan-out, optional truncation and convergence-based stopping.
    model:
        Estimator prototype for ``method="shapley_mc"``; defaults to the
        facade's logistic-regression classifier.
    engine:
        Pre-built :class:`ValuationEngine` to reuse (and warm) across
        calls; overrides ``model``/``n_workers``/``cache_size``.
    """
    if attribution not in ("unique", "shared"):
        raise ValueError(f"unknown attribution mode: {attribution!r}")
    if method not in ("knn", "shapley_mc"):
        raise ValueError(f"unknown method: {method!r}")
    if train_result.X is None or train_result.y is None:
        raise ValueError("train_result has no encoded output")
    if source is None:
        # Candidates: sources whose tuples map 1:1 onto output rows (side
        # tables feed many outputs from few tuples, so they drop out).
        candidates = sorted(train_result.provenance.sources())
        unique = []
        for name in candidates:
            try:
                ids = train_result.provenance.source_row_ids(name)
            except ValueError:
                continue
            if len(np.unique(ids)) == len(ids):
                unique.append(name)
        # Tie-break: the *driving* table of a left-deep pipeline is the
        # leftmost source node reachable from the sink.
        node = train_result.sink
        while node.inputs:
            node = node.inputs[0]
        leftmost = getattr(node, "name", None)
        if leftmost in unique:
            source = leftmost
        elif len(unique) == 1:
            source = unique[0]
        else:
            raise ValueError(
                f"cannot infer attribution source automatically from {unique}; "
                "pass source= explicitly"
            )

    with _obs.span(
        "pipeline.datascope",
        method=method,
        source=source,
        n_rows=len(train_result.provenance),
        attribution=attribution,
    ):
        if method == "knn":
            encoded = knn_shapley(
                train_result.X, train_result.y,
                np.asarray(valid_x, float), np.asarray(valid_y), k=k,
            )
        else:
            if engine is None:
                if model is None:
                    from ..learn.models.logistic import LogisticRegression

                    model = LogisticRegression(max_iter=100)
                utility = Utility(
                    model, train_result.X, train_result.y,
                    np.asarray(valid_x, float), np.asarray(valid_y),
                )
                engine = ValuationEngine(
                    utility, n_workers=n_workers, cache_size=cache_size
                )
            encoded = shapley_mc(
                None,
                n_permutations=n_permutations,
                truncation_tolerance=truncation_tolerance,
                convergence_tolerance=convergence_tolerance,
                seed=seed,
                engine=engine,
            )
    by_row_id: dict[int, float] = {}
    if attribution == "unique":
        src_ids = train_result.provenance.source_row_ids(source)
        for value, rid in zip(encoded.values, src_ids):
            by_row_id[int(rid)] = by_row_id.get(int(rid), 0.0) + float(value)
    else:
        for value, row in zip(encoded.values, train_result.provenance.tuples):
            for name, rid in row:
                if name == source:
                    by_row_id[rid] = by_row_id.get(rid, 0.0) + float(value)
        if not by_row_id:
            raise ValueError(f"no output row has provenance from {source!r}")
    return SourceImportance(
        source=source,
        by_row_id=by_row_id,
        method=f"datascope_{encoded.method}",
        extras={
            "k": k,
            "n_output_rows": len(train_result.provenance),
            "encoded": encoded,
            "attribution": attribution,
            "method": method,
        },
    )
