"""Experiment — the DataPerf-style data-selection track (ref [49]).

Given a 25%-corrupted candidate pool and a training budget, compare three
selection strategies across seeds:

- random sampling (the baseline every selection method must beat),
- top-k by KNN-Shapley importance (avoids errors but loses diversity),
- filter-then-sample: discard the lowest-importance 30%, sample the budget
  uniformly from the rest (avoids errors *and* keeps coverage).

Shape to reproduce: filter-then-sample dominates on mean accuracy; raw
top-k avoids far more corrupted tuples than random but does not reliably
convert that into accuracy — the diversity/cleanliness trade-off DataPerf's
selection track is designed to expose.
"""

import numpy as np

from repro.challenge import SelectionChallenge
from repro.importance import knn_shapley
from repro.viz import format_records

SEEDS = [31, 7, 99]
BUDGET = 150


def run_selection() -> dict:
    rows = []
    error_stats = []
    for seed in SEEDS:
        game = SelectionChallenge(
            n=500, budget=BUDGET, error_fraction=0.25, error_seed=seed
        )
        X = game.featurize(game.pool)
        y = np.asarray(game.pool.column("sentiment").to_list())
        Xv = game.featurize(game.valid)
        yv = np.asarray(game.valid.column("sentiment").to_list())
        importance = knn_shapley(X, y, Xv, yv, k=5)
        errors = set(game.reveal_errors().tolist())

        selections = {}
        selections["random"] = np.random.default_rng(0).choice(
            game.pool.row_ids, size=BUDGET, replace=False
        )
        selections["top_k"] = game.pool.row_ids[importance.highest(BUDGET)]
        keep = importance.highest(int(0.7 * game.pool.num_rows))
        chosen = np.random.default_rng(1).choice(keep, size=BUDGET, replace=False)
        selections["filter_sample"] = game.pool.row_ids[chosen]

        record = {"seed": seed}
        for name, ids in selections.items():
            submission = game.submit(name, ids.tolist())
            record[name] = submission.hidden_test_accuracy
            error_stats.append(
                {
                    "seed": seed,
                    "strategy": name,
                    "errors_selected": len(set(int(i) for i in ids) & errors),
                }
            )
        rows.append(record)
    means = {
        name: float(np.mean([r[name] for r in rows]))
        for name in ("random", "top_k", "filter_sample")
    }
    return {"rows": rows, "means": means, "error_stats": error_stats}


def test_selection_strategies(benchmark, write_report):
    result = benchmark.pedantic(run_selection, rounds=1, iterations=1)
    report = format_records(result["rows"])
    report += "\n\nmean accuracy: " + ", ".join(
        f"{k}={v:.3f}" for k, v in result["means"].items()
    )
    report += "\n\n" + format_records(result["error_stats"])
    write_report("selection", report)

    means = result["means"]
    assert means["filter_sample"] >= means["random"]
    assert means["filter_sample"] >= means["top_k"] - 0.02
    # Importance-based selections avoid corrupted tuples.
    by_strategy: dict = {}
    for record in result["error_stats"]:
        by_strategy.setdefault(record["strategy"], []).append(
            record["errors_selected"]
        )
    assert np.mean(by_strategy["top_k"]) < 0.6 * np.mean(by_strategy["random"])