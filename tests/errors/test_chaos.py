"""Tests for the chaos fault-injection harness."""

import numpy as np
import pytest

from repro.errors import ChaosError, ChaosMonkey
from repro.frame import DataFrame
from repro.learn import ColumnTransformer, StandardScaler
from repro.pipeline import PipelinePlan, execute, execute_robust


def build_pipeline(n: int = 80):
    frame = DataFrame(
        {
            "value": np.linspace(0.0, 1.0, n),
            "group": ["a" if i % 3 else "b" for i in range(n)],
            "label": ["pos" if i % 2 else "neg" for i in range(n)],
        }
    )
    plan = PipelinePlan()
    sink = (
        plan.source("t")
        .filter(lambda df: df["value"] <= 0.95, "value <= 0.95")
        .with_column("feat", lambda df: df["value"] * 2.0, "feat")
        .encode(
            ColumnTransformer([(StandardScaler(), ["feat"])]), label_column="label"
        )
    )
    return frame, sink


class TestChaosConfig:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosMonkey(error_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosMonkey(error_rate=0.6, nan_rate=0.6)

    def test_decisions_are_deterministic_and_order_independent(self):
        a = ChaosMonkey(seed=3, error_rate=0.2)
        b = ChaosMonkey(seed=3, error_rate=0.2)
        ids = list(range(200))
        assert [a.decide(1, i) for i in ids] == [b.decide(1, i) for i in reversed(ids)][::-1]
        # Different seeds disagree somewhere.
        c = ChaosMonkey(seed=4, error_rate=0.2)
        assert [a.decide(1, i) for i in ids] != [c.decide(1, i) for i in ids]

    def test_rates_approximately_respected(self):
        monkey = ChaosMonkey(seed=0, error_rate=0.1)
        decisions = [monkey.decide(0, rid) for rid in range(2000)]
        fraction = sum(d == "error" for d in decisions) / len(decisions)
        assert 0.07 < fraction < 0.13

    def test_wrap_leaves_original_plan_untouched(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=1, error_rate=0.5)
        wrapped = monkey.wrap(sink)
        assert wrapped is not sink and wrapped.plan is not sink.plan
        # The original executes cleanly after wrapping.
        result = execute(sink, {"t": frame}, fit=True)
        assert result.n_rows > 0


class TestChaosExecution:
    def test_fail_fast_dies_robust_survives_with_ground_truth(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=7, error_rate=0.08)
        wrapped = monkey.wrap(sink)
        with pytest.raises(ChaosError):
            execute(wrapped, {"t": frame}, fit=True)

        monkey.reset()
        result = execute_robust(wrapped, {"t": frame})
        faulted = monkey.triggered_row_ids(["error"])
        assert len(faulted) >= 1
        # Every quarantined row is attributed to exactly the injected faults.
        assert set(result.quarantine.row_ids("t").tolist()) == faulted
        # Survivors are the clean run minus the faulted rows.
        clean = execute(sink, {"t": frame}, fit=True)
        clean_ids = set(clean.provenance.source_row_ids("t").tolist())
        survivor_ids = set(result.provenance.source_row_ids("t").tolist())
        assert survivor_ids == clean_ids - faulted

    def test_same_seed_reproduces_same_run(self):
        results = []
        for __ in range(2):
            frame, sink = build_pipeline()
            monkey = ChaosMonkey(seed=11, error_rate=0.1, type_rate=0.05)
            outcome = execute_robust(monkey.wrap(sink), {"t": frame})
            results.append(
                (
                    sorted(outcome.quarantine.row_ids("t").tolist()),
                    outcome.X.copy(),
                )
            )
        assert results[0][0] == results[1][0]
        assert np.array_equal(results[0][1], results[1][1])

    def test_nan_corruption_caught_at_encode_boundary(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=5, nan_rate=0.1, target_kinds=("map",))
        result = execute_robust(monkey.wrap(sink), {"t": frame})
        corrupted = monkey.triggered_row_ids(["nan"])
        assert len(corrupted) >= 1
        assert set(result.quarantine.row_ids("t").tolist()) == corrupted
        assert {r.reason for r in result.quarantine} == {"nonfinite"}
        assert np.isfinite(result.X).all()

    def test_type_corruption_caught_by_cell_guard(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=6, type_rate=0.1, target_kinds=("map",))
        result = execute_robust(monkey.wrap(sink), {"t": frame})
        corrupted = monkey.triggered_row_ids(["type"])
        assert len(corrupted) >= 1
        assert set(result.quarantine.row_ids("t").tolist()) == corrupted
        assert {r.reason for r in result.quarantine} == {"corrupt_type"}

    def test_transient_faults_survive_with_retry(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=9, transient_rate=0.1, target_kinds=("map",))
        result = execute_robust(
            monkey.wrap(sink), {"t": frame}, max_retries=2, backoff=0.001
        )
        assert len(monkey.triggered_row_ids(["transient"])) >= 1
        # Retried rows are NOT lost: the run matches the clean one.
        clean = execute(sink, {"t": frame}, fit=True)
        assert len(result.quarantine) == 0
        assert result.n_rows == clean.n_rows
        assert np.allclose(result.X, clean.X)

    def test_latency_faults_quarantined_by_timeout_guard(self):
        frame, sink = build_pipeline(40)
        monkey = ChaosMonkey(
            seed=12, latency_rate=0.08, latency=0.15, target_kinds=("map",)
        )
        result = execute_robust(monkey.wrap(sink), {"t": frame}, timeout=0.05)
        slow = monkey.triggered_row_ids(["latency"])
        assert len(slow) >= 1
        assert set(result.quarantine.row_ids("t").tolist()) == slow
        assert {r.reason for r in result.quarantine} == {"timeout"}

    def test_quarantine_feeds_error_report(self):
        frame, sink = build_pipeline()
        monkey = ChaosMonkey(seed=7, error_rate=0.08)
        result = execute_robust(monkey.wrap(sink), {"t": frame})
        report = result.quarantine.to_error_report("t")
        assert report.kind == "quarantined"
        assert set(report.row_ids.tolist()) == monkey.triggered_row_ids(["error"])
        mask = report.affected_mask(frame.row_ids)
        assert int(mask.sum()) == len(report.row_ids)


class TestWorkerFaults:
    """Seeded worker-level faults for the valuation engine's supervision."""

    def test_worker_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosMonkey(worker_crash_rate=-0.1)
        with pytest.raises(ValueError):
            ChaosMonkey(worker_crash_rate=0.7, worker_hang_rate=0.7)
        with pytest.raises(ValueError, match="both crash and hang"):
            ChaosMonkey(worker_crash_chunks=[1, 2], worker_hang_chunks=[2, 3])

    def test_explicit_chunks_fire_deterministically(self):
        monkey = ChaosMonkey(worker_crash_chunks=[0, 5], worker_hang_chunks=[2])
        assert monkey.worker_fault(0, 0) == "worker_crash"
        assert monkey.worker_fault(2, 0) == "worker_hang"
        assert monkey.worker_fault(1, 0) is None
        assert monkey.worker_fault(5, 0) == "worker_crash"

    def test_faults_fire_only_on_first_attempt(self):
        monkey = ChaosMonkey(worker_crash_chunks=[4], worker_crash_rate=0.0)
        assert monkey.worker_fault(4, 0) == "worker_crash"
        assert monkey.worker_fault(4, 1) is None  # the retry must succeed
        rated = ChaosMonkey(seed=1, worker_crash_rate=1.0)
        assert rated.worker_fault(7, 0) == "worker_crash"
        assert rated.worker_fault(7, 3) is None

    def test_seeded_decisions_are_deterministic(self):
        a = ChaosMonkey(seed=9, worker_crash_rate=0.3, worker_hang_rate=0.2)
        b = ChaosMonkey(seed=9, worker_crash_rate=0.3, worker_hang_rate=0.2)
        decisions = [a.worker_fault(i, 0) for i in range(50)]
        assert decisions == [b.worker_fault(i, 0) for i in range(50)]
        assert "worker_crash" in decisions and "worker_hang" in decisions
        different = ChaosMonkey(seed=10, worker_crash_rate=0.3, worker_hang_rate=0.2)
        assert decisions != [different.worker_fault(i, 0) for i in range(50)]

    def test_worker_rates_do_not_perturb_operator_decisions(self):
        plain = ChaosMonkey(seed=3, error_rate=0.2)
        with_worker = ChaosMonkey(seed=3, error_rate=0.2, worker_crash_rate=0.5)
        rows = list(range(100))
        assert [plain.decide(0, r) for r in rows] == [
            with_worker.decide(0, r) for r in rows
        ]

    def test_planned_worker_faults_matches_decisions(self):
        monkey = ChaosMonkey(seed=2, worker_crash_rate=0.25, worker_hang_rate=0.25)
        planned = monkey.planned_worker_faults(40)
        for kind, chunks in planned.items():
            for chunk in chunks:
                assert monkey.worker_fault(chunk, 0) == kind
        covered = {c for chunks in planned.values() for c in chunks}
        for chunk in set(range(40)) - covered:
            assert monkey.worker_fault(chunk, 0) is None

    def test_record_worker_fault_lands_in_ground_truth(self):
        monkey = ChaosMonkey(worker_crash_chunks=[3])
        monkey.record_worker_fault("worker_crash", 3)
        (fault,) = monkey.triggered
        assert fault.node_kind == "worker"
        assert fault.kind == "worker_crash"
        assert fault.row_id == 3  # row_id carries the chunk ordinal
        monkey.reset()
        assert monkey.triggered == []


class TestJobFaults:
    def test_job_faults_fire_first_attempt_only(self):
        monkey = ChaosMonkey(seed=1, job_crash_jobs=[4])
        assert monkey.job_fault(4, attempt=0) == "job_crash"
        assert monkey.job_fault(4, attempt=1) is None
        assert monkey.job_fault(3, attempt=0) is None

    def test_job_fault_decisions_are_deterministic(self):
        decisions = [ChaosMonkey(seed=9, job_crash_rate=0.3).job_fault(i, 0) for i in range(60)]
        again = [ChaosMonkey(seed=9, job_crash_rate=0.3).job_fault(i, 0) for i in range(60)]
        assert decisions == again
        assert "job_crash" in decisions  # 30% over 60 jobs fires somewhere

    def test_job_rates_do_not_perturb_operator_or_worker_decisions(self):
        plain = ChaosMonkey(seed=3, error_rate=0.2, worker_crash_rate=0.2)
        with_jobs = ChaosMonkey(
            seed=3, error_rate=0.2, worker_crash_rate=0.2, job_crash_rate=0.5
        )
        rows = list(range(80))
        assert [plain.decide(0, r) for r in rows] == [
            with_jobs.decide(0, r) for r in rows
        ]
        assert [plain.worker_fault(i, 0) for i in rows] == [
            with_jobs.worker_fault(i, 0) for i in rows
        ]

    def test_apply_job_fault_raises_and_records(self):
        monkey = ChaosMonkey(job_crash_jobs=[0])
        with pytest.raises(ChaosError, match="job #0"):
            monkey.apply_job_fault(0, attempt=0)
        (fault,) = monkey.triggered
        assert (fault.node_kind, fault.kind, fault.row_id) == ("job", "job_crash", 0)
        monkey.apply_job_fault(0, attempt=1)  # retry passes clean

    def test_slow_tenant_delays_every_attempt(self):
        import time as _time

        monkey = ChaosMonkey(slow_tenants=["noisy"], tenant_delay_s=0.02)
        start = _time.perf_counter()
        monkey.apply_job_fault(0, attempt=0, tenant="noisy")
        monkey.apply_job_fault(0, attempt=1, tenant="noisy")
        assert _time.perf_counter() - start >= 0.04
        assert [f.kind for f in monkey.triggered] == ["slow_tenant"] * 2
        before = len(monkey.triggered)
        monkey.apply_job_fault(1, attempt=0, tenant="quiet")
        assert len(monkey.triggered) == before  # other tenants untouched

    def test_planned_job_faults_matches_decisions(self):
        monkey = ChaosMonkey(seed=2, job_crash_rate=0.25)
        planned = monkey.planned_job_faults(40)
        for kind, jobs in planned.items():
            for job_ord in jobs:
                assert monkey.job_fault(job_ord, 0) == kind

    def test_job_crash_rate_validation(self):
        with pytest.raises(ValueError, match="job_crash_rate"):
            ChaosMonkey(job_crash_rate=1.5)


class TestDiskChaos:
    """Storage-fault injection through the atomic write protocol's hooks."""

    def _append(self, path, i):
        from repro.obs.atomicio import atomic_append_line, frame_line

        atomic_append_line(path, frame_line({"i": i}))

    def test_config_validation(self):
        from repro.errors import DiskChaos

        with pytest.raises(ValueError, match="sum to"):
            DiskChaos(short_write_rate=0.8, enospc_rate=0.4)
        with pytest.raises(ValueError, match="crash_mode"):
            DiskChaos(crash_mode="explode")
        with pytest.raises(ValueError, match="unknown disk fault"):
            DiskChaos(fault_at={0: "meteor_strike"})

    def test_short_write_leaves_quarantinable_torn_tail(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        self._append(path, 0)
        chaos = DiskChaos(fault_at={0: "short_write"})
        with io_hooks(chaos):
            self._append(path, 1)
        payloads, report = read_jsonl(path, artifact="t")
        assert [p["i"] for p in payloads] == [0]  # prior record intact
        assert report.n_quarantined == 1  # the torn line is accounted for
        assert [f.kind for f in chaos.triggered] == ["short_write"]

    def test_enospc_aborts_write_and_preserves_target(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        self._append(path, 0)
        with io_hooks(DiskChaos(fault_at={0: "enospc"})):
            with pytest.raises(OSError):
                self._append(path, 1)
        payloads, report = read_jsonl(path)
        assert [p["i"] for p in payloads] == [0] and report.clean

    def test_crash_before_rename_loses_nothing_acked(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import SimulatedCrash, io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        self._append(path, 0)
        with io_hooks(DiskChaos(fault_at={0: "crash_before_rename"})):
            with pytest.raises(SimulatedCrash):
                self._append(path, 1)
        payloads, report = read_jsonl(path)
        assert [p["i"] for p in payloads] == [0] and report.clean

    def test_crash_after_rename_keeps_whole_new_line(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import SimulatedCrash, io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        self._append(path, 0)
        with io_hooks(DiskChaos(fault_at={0: "crash_after_rename"})):
            with pytest.raises(SimulatedCrash):
                self._append(path, 1)
        payloads, report = read_jsonl(path)
        assert [p["i"] for p in payloads] == [0, 1] and report.clean

    def test_eio_fsync_raises_and_target_is_preserved(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        self._append(path, 0)
        with io_hooks(DiskChaos(fault_at={0: "eio_fsync"})):
            with pytest.raises(OSError):
                self._append(path, 1)
        payloads, _ = read_jsonl(path)
        assert [p["i"] for p in payloads] == [0]

    def test_lying_fsync_continues_and_is_recorded(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        chaos = DiskChaos(fault_at={0: "lying_fsync"})
        with io_hooks(chaos):
            self._append(path, 0)
        payloads, report = read_jsonl(path)
        assert [p["i"] for p in payloads] == [0] and report.clean
        assert [f.kind for f in chaos.triggered] == ["lying_fsync"]

    def test_decisions_are_seeded_and_match_planned(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks

        a = DiskChaos(seed=7, short_write_rate=0.3, lying_fsync_rate=0.2)
        b = DiskChaos(seed=7, short_write_rate=0.3, lying_fsync_rate=0.2)
        assert a.planned_disk_faults(64) == b.planned_disk_faults(64)
        planned = a.planned_disk_faults(16)
        with io_hooks(a):
            for i in range(16):
                self._append(tmp_path / "r.jsonl", i)
        fired = {}
        for fault in a.triggered:
            fired.setdefault(fault.kind, []).append(fault.op_index)
        assert fired == planned

    def test_sidecars_are_never_faulted(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks, read_jsonl

        path = tmp_path / "a.jsonl"
        self._append(path, 0)
        path.write_text(path.read_text() + "garbage-tail\n")
        # every op faults — yet quarantining (sidecar writes) must proceed
        chaos = DiskChaos(short_write_rate=1.0, only=None)
        with io_hooks(chaos):
            payloads, report = read_jsonl(path, artifact="t")
        assert report.n_quarantined == 1
        assert (tmp_path / "a.jsonl.corrupt").exists()
        assert all(f.row_id >= 0 for f in chaos.triggered)

    def test_only_filter_scopes_faults_to_matching_paths(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks, read_jsonl

        chaos = DiskChaos(fault_at={0: "short_write"}, only="target")
        with io_hooks(chaos):
            self._append(tmp_path / "other.jsonl", 0)  # not counted
            self._append(tmp_path / "target.jsonl", 0)  # op 0: faults
        assert read_jsonl(tmp_path / "other.jsonl")[1].clean
        assert read_jsonl(tmp_path / "target.jsonl")[1].n_quarantined == 1

    def test_reset_clears_counters_and_triggers(self, tmp_path):
        from repro.errors import DiskChaos
        from repro.obs.atomicio import io_hooks

        chaos = DiskChaos(fault_at={0: "lying_fsync"})
        with io_hooks(chaos):
            self._append(tmp_path / "a.jsonl", 0)
        assert chaos.n_ops == 1 and chaos.triggered
        chaos.reset()
        assert chaos.n_ops == 0 and not chaos.triggered
