"""Process-wide metrics: counters, gauges, histograms — with labels.

Tracing (:mod:`repro.obs.trace`) answers "where did the time go in *this*
run"; metrics answer "how much work happened, cumulatively" — rows
quarantined by reason, utility-cache hits, permutation waves, standard-error
trajectories. Instruments are cheap enough to update from moderately hot
paths (a lock-free attribute increment; registry lookups are dict hits),
but instrumented library code still gates every update on
:func:`repro.obs.trace.enabled` so the disabled path stays a flag check.

Instruments may carry **labels** (``counter("service.job.terminal",
tenant="acme", state="completed")``): each distinct label set is its own
series, registered under the canonical series name
``name{tenant=acme,state=completed}`` (keys sorted). Unlabeled instruments
keep their bare name and their snapshots carry no ``labels`` key, so
existing consumers are unaffected.

The registry is fork-aware the same way the trace recorder is: a forked
worker that inherits it starts from zero on first touch, so parent-side
snapshots never double-count worker activity. Worker-side activity is not
lost, though: :class:`repro.obs.trace.WorkerTelemetry` snapshots the child
registry, ships the delta back over the result pipe, and the driver folds
it in via :meth:`MetricsRegistry.merge_delta` (Chan-style mergeable
aggregates: counters add, gauges last-write-win, histograms merge
count/sum/min/max and extend the recent window).
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
    "series_name",
    "split_series",
    "delta_snapshots",
    "merge_delta",
]

#: Observations kept per histogram (ring buffer) so trajectories — e.g. the
#: engine's per-wave max standard error — stay inspectable without
#: unbounded growth.
HISTOGRAM_WINDOW = 512


def series_name(name: str, labels: Mapping[str, Any] | None = None) -> str:
    """Canonical registry key for ``name`` + ``labels``.

    ``series_name("job.latency", {"tenant": "a"})`` →
    ``"job.latency{tenant=a}"``. Keys are sorted so the key is independent
    of call-site kwarg order. Unlabeled series keep the bare name.
    """
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def split_series(series: str) -> tuple[str, dict[str, str]]:
    """Inverse of :func:`series_name`: ``"a{k=v}"`` → ``("a", {"k": "v"})``."""
    if "{" not in series or not series.endswith("}"):
        return series, {}
    name, _, inner = series.partition("{")
    labels: dict[str, str] = {}
    for part in inner[:-1].split(","):
        if not part:
            continue
        key, _, value = part.partition("=")
        labels[key] = value
    return name, labels


class Counter:
    """Monotone cumulative count (floats allowed: row counts, seconds)."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.labels = dict(labels) if labels else {}

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {"type": "counter", "value": self.value}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value", "labels")

    def __init__(self, name: str, labels: Mapping[str, str] | None = None) -> None:
        self.name = name
        self.value = 0.0
        self.labels = dict(labels) if labels else {}

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {"type": "gauge", "value": self.value}
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Running aggregate + bounded window of recent observations."""

    __slots__ = ("name", "count", "total", "min", "max", "window", "labels")

    def __init__(
        self,
        name: str,
        window: int = HISTOGRAM_WINDOW,
        labels: Mapping[str, str] | None = None,
    ) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.window: deque[float] = deque(maxlen=window)
        self.labels = dict(labels) if labels else {}

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile over the *windowed* observations.

        ``q`` is in ``[0, 1]``. Returns ``None`` while the window is empty;
        a single observation answers every quantile. Once more than
        ``window`` values have been observed the estimate covers only the
        most recent ``window`` of them (the ring buffer's contents).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.window:
            return None
        ordered = sorted(self.window)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "recent": list(self.window),
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap

    def merge(self, snap: Mapping[str, Any]) -> None:
        """Fold another histogram's snapshot (or delta) into this one.

        Chan-style: counts and sums add, min/max combine, and the recent
        window is extended with the incoming observations (bounded by this
        histogram's ``maxlen``, so merged quantiles cover the most recent
        observations across both sources).
        """
        recent = list(snap.get("recent", ()))
        count = int(snap.get("count", len(recent)))
        if count <= 0 and not recent:
            return
        total = snap.get("sum")
        if total is None:
            total = float(sum(recent))
        self.count += count
        self.total += float(total)
        candidates = [v for v in (snap.get("min"), snap.get("max")) if v is not None]
        candidates.extend(recent)
        for value in candidates:
            value = float(value)
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
        self.window.extend(float(v) for v in recent)

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.window.clear()


class MetricsRegistry:
    """Series → instrument map with snapshot/reset/merge and JSON export.

    Instruments are created on first use; asking for an existing series
    with a different instrument kind is an error (it would silently split
    one metric into two). Labeled calls register one instrument per
    distinct label set, keyed by :func:`series_name`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._metrics: dict[str, Any] = {}

    def _guard_fork(self) -> None:
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._metrics = {}

    def _get(self, name: str, cls: type, labels: dict[str, str] | None = None) -> Any:
        key = series_name(name, labels)
        with self._lock:
            self._guard_fork()
            instrument = self._metrics.get(key)
            if instrument is None:
                instrument = cls(name, labels=labels)
                self._metrics[key] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {key!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, Counter, labels or None)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, Gauge, labels or None)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(name, Histogram, labels or None)

    def names(self) -> list[str]:
        with self._lock:
            self._guard_fork()
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Point-in-time copy: ``{series: {"type": ..., "value"/"count": ...}}``."""
        with self._lock:
            self._guard_fork()
            return {
                name: instrument.snapshot()
                for name, instrument in sorted(self._metrics.items())
            }

    def merge_delta(self, delta: Mapping[str, Mapping[str, Any]]) -> None:
        """Fold a snapshot-shaped delta (e.g. a worker's shipped telemetry)
        into this registry: counters add, gauges last-write-win, histograms
        :meth:`Histogram.merge`. Unknown series are created on the fly,
        preserving any ``labels`` in the delta."""
        for series, snap in delta.items():
            kind = snap.get("type")
            name, labels = split_series(series)
            labels = dict(snap.get("labels") or labels) or None
            if kind == "counter":
                amount = float(snap.get("value", 0.0))
                if amount:
                    self._get(name, Counter, labels).inc(amount)
            elif kind == "gauge":
                self._get(name, Gauge, labels).set(float(snap.get("value", 0.0)))
            elif kind == "histogram":
                self._get(name, Histogram, labels).merge(snap)

    def reset(self, names: Iterable[str] | None = None) -> None:
        """Zero every instrument (or just ``names``), keeping registrations."""
        with self._lock:
            self._guard_fork()
            targets = self._metrics.keys() if names is None else names
            for name in list(targets):
                if name in self._metrics:
                    self._metrics[name].reset()

    def clear(self) -> None:
        """Drop every registration entirely."""
        with self._lock:
            self._guard_fork()
            self._metrics = {}

    def export_json(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def delta_snapshots(
    before: Mapping[str, Mapping[str, Any]],
    after: Mapping[str, Mapping[str, Any]],
) -> dict[str, dict[str, Any]]:
    """What changed between two registry snapshots, in mergeable form.

    Counters keep the numeric difference (dropped when zero); gauges keep
    their final value (they are last-write-wins, not cumulative);
    histograms keep the incremental count/sum plus only the observations
    appended since ``before``. The result feeds
    :meth:`MetricsRegistry.merge_delta` and trace reports alike.
    """
    delta: dict[str, dict[str, Any]] = {}
    for series, snap in after.items():
        prior = before.get(series)
        kind = snap.get("type")
        if kind == "counter":
            prior_value = prior.get("value", 0.0) if prior else 0.0
            diff = snap["value"] - prior_value
            if diff:
                entry: dict[str, Any] = {"type": "counter", "value": diff}
                if snap.get("labels"):
                    entry["labels"] = dict(snap["labels"])
                delta[series] = entry
        elif kind == "gauge":
            delta[series] = dict(snap)
        elif kind == "histogram":
            prior_count = prior.get("count", 0) if prior else 0
            delta_count = snap["count"] - prior_count
            if delta_count:
                prior_sum = prior.get("sum", 0.0) if prior else 0.0
                recent = snap.get("recent", [])
                entry = {
                    "type": "histogram",
                    "count": delta_count,
                    "sum": snap.get("sum", 0.0) - prior_sum,
                    "recent": list(recent[-delta_count:]),
                }
                if snap.get("labels"):
                    entry["labels"] = dict(snap["labels"])
                delta[series] = entry
    return delta


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry all instrumented code reports into."""
    return _REGISTRY


def counter(name: str, **labels: str) -> Counter:
    return _REGISTRY.counter(name, **labels)


def gauge(name: str, **labels: str) -> Gauge:
    return _REGISTRY.gauge(name, **labels)


def histogram(name: str, **labels: str) -> Histogram:
    return _REGISTRY.histogram(name, **labels)


def snapshot() -> dict[str, dict[str, Any]]:
    return _REGISTRY.snapshot()


def reset(names: Iterable[str] | None = None) -> None:
    _REGISTRY.reset(names)


def merge_delta(delta: Mapping[str, Mapping[str, Any]]) -> None:
    _REGISTRY.merge_delta(delta)
