"""Unit tests for the span recorder: nesting, lifecycle, export, safety."""

import json
import multiprocessing as mp
import threading

import pytest

from repro import obs
from repro.obs import trace as obs_trace


class TestDisabledMode:
    def test_span_returns_shared_null_singleton(self):
        assert obs.span("anything") is obs_trace._NULL_SPAN
        assert obs.span("other", attr=1) is obs_trace._NULL_SPAN

    def test_nothing_is_recorded(self):
        with obs.span("invisible") as s:
            s.set(x=1)
        assert len(obs.get_recorder()) == 0
        assert obs.current_span() is None

    def test_add_attrs_is_a_noop(self):
        obs.add_attrs(x=1)  # must not raise with no open span
        assert len(obs.get_recorder()) == 0

    def test_traced_function_still_runs(self):
        @obs.traced
        def double(x):
            return 2 * x

        assert double(21) == 42
        assert len(obs.get_recorder()) == 0


class TestSpanLifecycle:
    def test_nesting_sets_parent_ids(self):
        obs.enable()
        with obs.span("outer") as outer:
            with obs.span("inner") as inner:
                assert inner.parent_id == outer.span_id
            with obs.span("sibling") as sibling:
                assert sibling.parent_id == outer.span_id
        spans = obs.get_recorder().spans
        assert [s.name for s in spans] == ["outer", "inner", "sibling"]
        assert spans[0].parent_id is None
        assert all(s.finished for s in spans)
        assert all(s.duration >= 0.0 for s in spans)

    def test_spans_recorded_in_preorder(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        names = [s.name for s in obs.get_recorder().spans]
        assert names == ["a", "b", "c", "d"]  # start order, not end order

    def test_span_ids_are_monotone(self):
        obs.enable()
        with obs.span("a"):
            with obs.span("b"):
                pass
        ids = [s.span_id for s in obs.get_recorder().spans]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_attrs_via_kwargs_set_and_add_attrs(self):
        obs.enable()
        with obs.span("work", rows=10) as s:
            s.set(batch=2)
            obs.add_attrs(note="deep")
        (span,) = obs.get_recorder().spans
        assert span.attrs == {"rows": 10, "batch": 2, "note": "deep"}

    def test_exception_marks_span_and_closes_it(self):
        obs.enable()
        with pytest.raises(ValueError):
            with obs.span("doomed"):
                raise ValueError("boom")
        (span,) = obs.get_recorder().spans
        assert span.finished
        assert span.attrs["error"] == "ValueError"

    def test_current_span_tracks_innermost(self):
        obs.enable()
        assert obs.current_span() is None
        with obs.span("outer"):
            with obs.span("inner"):
                assert obs.current_span().name == "inner"
            assert obs.current_span().name == "outer"
        assert obs.current_span() is None

    def test_traced_decorator_bare_and_configured(self):
        obs.enable()

        @obs.traced
        def plain():
            return 1

        @obs.traced("custom.name", tag="x")
        def fancy():
            return 2

        assert plain() == 1 and fancy() == 2
        spans = obs.get_recorder().spans
        assert spans[0].name.endswith("plain")
        assert spans[1].name == "custom.name"
        assert spans[1].attrs == {"tag": "x"}

    def test_reset_clears_spans_and_ids(self):
        obs.enable()
        with obs.span("one"):
            pass
        obs.get_recorder().reset()
        assert len(obs.get_recorder()) == 0
        with obs.span("two"):
            pass
        assert obs.get_recorder().spans[0].span_id == 0


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        obs.enable()
        with obs.span("root", n=3):
            with obs.span("leaf"):
                pass
        path = tmp_path / "trace.jsonl"
        count = obs.get_recorder().export_jsonl(path)
        assert count == 2
        header, lines = obs.read_trace_export(path)
        assert header["schema_version"] == obs.TRACE_SCHEMA_VERSION
        assert header["n_spans"] == 2
        assert [entry["name"] for entry in lines] == ["root", "leaf"]
        assert lines[1]["parent_id"] == lines[0]["span_id"]
        assert lines[0]["attrs"] == {"n": 3}
        assert all(entry["duration"] > 0 for entry in lines)

    def test_jsonable_coerces_numpy_attrs(self):
        import numpy as np

        obs.enable()
        with obs.span("np", count=np.int64(7), values=np.asarray([1.0, 2.0])):
            pass
        payload = obs.get_recorder().spans[0].to_dict()
        assert payload["attrs"] == {"count": 7, "values": [1.0, 2.0]}
        json.dumps(payload)  # fully serialisable


class TestConcurrencySafety:
    def test_threads_build_disjoint_subtrees(self):
        obs.enable()
        barrier = threading.Barrier(2)

        def work(label):
            barrier.wait()
            with obs.span(f"thread.{label}"):
                with obs.span(f"child.{label}"):
                    pass

        threads = [threading.Thread(target=work, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        spans = {s.name: s for s in obs.get_recorder().spans}
        assert len(spans) == 4
        for label in (0, 1):
            # Each child's parent is its *own* thread's root, despite the
            # interleaving — the active-span stack is thread-local.
            assert (
                spans[f"child.{label}"].parent_id
                == spans[f"thread.{label}"].span_id
            )

    def test_forked_child_starts_with_empty_recorder(self):
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("platform without fork")
        obs.enable()
        with obs.span("parent.before"):
            pass

        def child(queue):
            queue.put(len(obs.get_recorder()))
            with obs.span("child.work"):
                pass
            queue.put([s.name for s in obs.get_recorder().spans])

        ctx = mp.get_context("fork")
        queue = ctx.Queue()
        proc = ctx.Process(target=child, args=(queue,))
        proc.start()
        proc.join()
        inherited, child_names = queue.get(), queue.get()
        # The PID guard dropped the inherited buffer before first use...
        assert inherited == 0
        assert child_names == ["child.work"]
        # ...and the parent's trace is untouched by the child.
        assert [s.name for s in obs.get_recorder().spans] == ["parent.before"]
