"""Cross-run regression diffing: drift scores, alerts, ``compare_runs``.

Lourenço et al. ("Debugging Machine Learning Pipelines") localise
regressions by comparing *instrumented runs*; this module is that
comparison for two :class:`~repro.obs.ledger.RunRecord`\\ s. Per node and
per column it computes distribution drift — PSI on numeric histograms,
a Cramér's-V-normalised chi-squared on categorical top-k tables, relative
change on scalar statistics — plus latency / row-count / quarantine-rate
regressions, and turns threshold crossings into :class:`Alert`\\ s that
merge into the library's :class:`repro.errors.report.ErrorReport` shape.

Everything is threshold-based and zero-dependency: no p-values (that
would drag in SciPy), just effect sizes with documented cutoffs in
:class:`DriftThresholds`. Two identical seeded runs diff to zero alerts;
the latency guards carry absolute floors so timing jitter on a fast
pipeline can never page anyone.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from .ledger import RunRecord
from .quality import ColumnProfile, NodeQualityProfile

__all__ = [
    "Alert",
    "ColumnDrift",
    "NodeDiff",
    "RunDiff",
    "DriftThresholds",
    "compare_runs",
    "population_stability_index",
    "cramers_v",
]

_EPS = 1e-12
#: Proportion floor for PSI (empty bins would make the log blow up).
_PSI_FLOOR = 1e-4


@dataclass(frozen=True)
class DriftThresholds:
    """Alert cutoffs. The defaults follow industry folklore (PSI 0.2 =
    "significant shift") and are deliberately conservative; tighten them
    per deployment. Critical severity fires at twice the warn threshold.
    """

    psi: float = 0.2
    cramers_v: float = 0.2
    completeness_drop: float = 0.05
    scalar_rel_change: float = 0.25
    row_count_rel_change: float = 0.10
    latency_ratio: float = 2.0
    latency_floor_s: float = 0.05
    run_latency_floor_s: float = 0.25
    quarantine_rate_increase: float = 0.05


@dataclass
class Alert:
    """One threshold crossing between two runs."""

    severity: str  # "warn" | "critical"
    kind: str  # "psi" | "categorical" | "completeness" | "scalar" | ...
    node: str
    column: str | None
    metric: str
    value: float
    threshold: float
    message: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "severity": self.severity,
            "kind": self.kind,
            "node": self.node,
            "column": self.column,
            "metric": self.metric,
            "value": self.value,
            "threshold": self.threshold,
            "message": self.message,
        }


def population_stability_index(
    hist_a: Mapping[str, Any] | None, hist_b: Mapping[str, Any] | None
) -> float | None:
    """PSI between two fixed-bin histograms (``{"edges", "counts"}``).

    Histograms from different runs may have different frozen edges; both
    are rebinned onto the union range via piecewise-linear CDF
    interpolation before comparing, so the index only reflects the data.
    Returns ``None`` when either side is missing or empty.
    """
    if not hist_a or not hist_b:
        return None
    edges_a, counts_a = list(hist_a["edges"]), list(hist_a["counts"])
    edges_b, counts_b = list(hist_b["edges"]), list(hist_b["counts"])
    total_a, total_b = sum(counts_a), sum(counts_b)
    if total_a == 0 or total_b == 0:
        return None
    lo = min(edges_a[0], edges_b[0])
    hi = max(edges_a[-1], edges_b[-1])
    if hi == lo:
        return 0.0
    n_bins = max(len(counts_a), len(counts_b))
    common = [lo + (hi - lo) * i / n_bins for i in range(n_bins + 1)]
    props_a = _rebin_proportions(edges_a, counts_a, common)
    props_b = _rebin_proportions(edges_b, counts_b, common)
    psi = 0.0
    for pa, pb in zip(props_a, props_b):
        pa = max(pa, _PSI_FLOOR)
        pb = max(pb, _PSI_FLOOR)
        psi += (pa - pb) * math.log(pa / pb)
    return psi


def _rebin_proportions(
    edges: list[float], counts: list[float], new_edges: list[float]
) -> list[float]:
    """Proportions of a histogram re-expressed over ``new_edges`` via the
    piecewise-linear CDF (mass spreads uniformly within each source bin)."""
    total = float(sum(counts))
    cum = [0.0]
    for count in counts:
        cum.append(cum[-1] + count / total)

    def cdf(x: float) -> float:
        if x <= edges[0]:
            return 0.0
        if x >= edges[-1]:
            return 1.0
        for i in range(len(edges) - 1):
            if x < edges[i + 1]:
                width = edges[i + 1] - edges[i]
                frac = (x - edges[i]) / width if width > 0 else 1.0
                return cum[i] + (cum[i + 1] - cum[i]) * frac
        return 1.0

    values = [cdf(edge) for edge in new_edges]
    return [values[i + 1] - values[i] for i in range(len(values) - 1)]


def cramers_v(
    top_a: list[list[Any]], other_a: int, top_b: list[list[Any]], other_b: int
) -> float | None:
    """Cramér's V over the aligned categorical top-k tables of two runs.

    The union of tracked categories (plus the ``other`` overflow bucket)
    forms a 2×k contingency table; V normalises its chi-squared statistic
    to [0, 1] so one threshold works at any sample size. Returns ``None``
    when either side is empty.
    """
    counts_a = {str(value): float(count) for value, count in top_a}
    counts_b = {str(value): float(count) for value, count in top_b}
    if other_a:
        counts_a["__other__"] = counts_a.get("__other__", 0.0) + other_a
    if other_b:
        counts_b["__other__"] = counts_b.get("__other__", 0.0) + other_b
    categories = sorted(set(counts_a) | set(counts_b))
    n_a = sum(counts_a.values())
    n_b = sum(counts_b.values())
    if n_a == 0 or n_b == 0 or len(categories) < 2:
        return None
    total = n_a + n_b
    chi2 = 0.0
    for category in categories:
        pooled = (counts_a.get(category, 0.0) + counts_b.get(category, 0.0)) / total
        for observed, n in ((counts_a.get(category, 0.0), n_a),
                            (counts_b.get(category, 0.0), n_b)):
            expected = pooled * n
            if expected > 0:
                chi2 += (observed - expected) ** 2 / expected
    # 2×k table: min(rows-1, cols-1) = 1, so V² = χ²/N.
    return math.sqrt(chi2 / total)


def _relative_change(a: float | None, b: float | None, scale: float | None) -> float:
    """|b − a| over a robust scale (falls back to |a|, then to 1)."""
    if a is None or b is None:
        return 0.0
    denom = max(abs(scale) if scale else 0.0, abs(a), _EPS)
    return abs(b - a) / denom


@dataclass
class ColumnDrift:
    """Drift of one column at one node between two runs."""

    column: str
    kind: str
    psi: float | None = None
    cramers_v: float | None = None
    completeness_a: float = 1.0
    completeness_b: float = 1.0
    mean_change: float = 0.0
    std_change: float = 0.0

    @property
    def score(self) -> float:
        """Scalar drift severity: the worst indicator, each normalised so
        1.0 ≈ "at the default alert threshold"."""
        defaults = DriftThresholds()
        candidates = [
            (self.psi or 0.0) / defaults.psi,
            (self.cramers_v or 0.0) / defaults.cramers_v,
            abs(self.completeness_a - self.completeness_b)
            / defaults.completeness_drop,
            self.mean_change / defaults.scalar_rel_change,
            self.std_change / defaults.scalar_rel_change,
        ]
        return max(candidates)


@dataclass
class NodeDiff:
    """Per-node comparison: data drift plus operational regressions."""

    node: str
    label: str = ""
    rows_a: int = 0
    rows_b: int = 0
    latency_a_s: float = 0.0
    latency_b_s: float = 0.0
    columns: dict[str, ColumnDrift] = field(default_factory=dict)

    @property
    def score(self) -> float:
        return max((drift.score for drift in self.columns.values()), default=0.0)

    def worst_column(self) -> ColumnDrift | None:
        if not self.columns:
            return None
        return max(self.columns.values(), key=lambda drift: drift.score)


@dataclass
class RunDiff:
    """Everything that changed between two ledger records."""

    run_a: str
    run_b: str
    nodes: dict[str, NodeDiff] = field(default_factory=dict)
    alerts: list[Alert] = field(default_factory=list)
    wall_time_a_s: float | None = None
    wall_time_b_s: float | None = None

    @property
    def has_drift(self) -> bool:
        return bool(self.alerts)

    def alerts_for(self, column: str) -> list[Alert]:
        return [a for a in self.alerts if a.column == column]

    def render(self) -> str:
        """ASCII comparison: per-node table + alert table."""
        from ..viz.diff_view import format_run_diff

        return format_run_diff(self)

    def to_error_report(self):
        """Adapt the alerts to :class:`repro.errors.report.ErrorReport` so
        drift regressions flow into the same reporting machinery as
        injected and quarantined errors. Row ids are unknown at this
        granularity (drift is a distribution-level signal), so the report
        carries the alerts in ``params`` instead."""
        from ..errors.report import ErrorReport

        columns = {a.column for a in self.alerts if a.column}
        return ErrorReport(
            kind="drift",
            column=columns.pop() if len(columns) == 1 else "",
            row_ids=[],
            params={
                "run_a": self.run_a,
                "run_b": self.run_b,
                "n_alerts": len(self.alerts),
                "alerts": [alert.to_dict() for alert in self.alerts],
            },
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "alerts": [alert.to_dict() for alert in self.alerts],
            "nodes": {
                key: {
                    "label": diff.label,
                    "rows_a": diff.rows_a,
                    "rows_b": diff.rows_b,
                    "latency_a_s": diff.latency_a_s,
                    "latency_b_s": diff.latency_b_s,
                    "score": diff.score,
                    "columns": {
                        name: {
                            "psi": drift.psi,
                            "cramers_v": drift.cramers_v,
                            "completeness_a": drift.completeness_a,
                            "completeness_b": drift.completeness_b,
                            "mean_change": drift.mean_change,
                            "std_change": drift.std_change,
                            "score": drift.score,
                        }
                        for name, drift in diff.columns.items()
                    },
                }
                for key, diff in self.nodes.items()
            },
        }


def _severity(value: float, threshold: float) -> str:
    return "critical" if value >= 2 * threshold else "warn"


def _diff_column(
    node_key: str,
    a: ColumnProfile,
    b: ColumnProfile,
    thresholds: DriftThresholds,
    alerts: list[Alert],
) -> ColumnDrift:
    drift = ColumnDrift(
        column=a.name,
        kind=a.kind or b.kind,
        psi=population_stability_index(a.histogram, b.histogram),
        cramers_v=cramers_v(a.top_k, a.other_count, b.top_k, b.other_count),
        completeness_a=a.completeness,
        completeness_b=b.completeness,
        mean_change=_relative_change(a.mean, b.mean, a.std),
        std_change=_relative_change(a.std, b.std, a.std),
    )
    completeness_drop = drift.completeness_a - drift.completeness_b
    if completeness_drop > thresholds.completeness_drop:
        alerts.append(
            Alert(
                severity=_severity(completeness_drop, thresholds.completeness_drop),
                kind="completeness",
                node=node_key,
                column=a.name,
                metric="completeness_drop",
                value=completeness_drop,
                threshold=thresholds.completeness_drop,
                message=(
                    f"{node_key}: column {a.name!r} completeness fell "
                    f"{drift.completeness_a:.3f} → {drift.completeness_b:.3f}"
                ),
            )
        )
    if drift.psi is not None and drift.psi > thresholds.psi:
        alerts.append(
            Alert(
                severity=_severity(drift.psi, thresholds.psi),
                kind="psi",
                node=node_key,
                column=a.name,
                metric="psi",
                value=drift.psi,
                threshold=thresholds.psi,
                message=(
                    f"{node_key}: column {a.name!r} distribution shifted "
                    f"(PSI {drift.psi:.3f} > {thresholds.psi})"
                ),
            )
        )
    if drift.cramers_v is not None and drift.cramers_v > thresholds.cramers_v:
        alerts.append(
            Alert(
                severity=_severity(drift.cramers_v, thresholds.cramers_v),
                kind="categorical",
                node=node_key,
                column=a.name,
                metric="cramers_v",
                value=drift.cramers_v,
                threshold=thresholds.cramers_v,
                message=(
                    f"{node_key}: column {a.name!r} category mix shifted "
                    f"(Cramér's V {drift.cramers_v:.3f} > {thresholds.cramers_v})"
                ),
            )
        )
    for metric, change in (("mean", drift.mean_change), ("std", drift.std_change)):
        if change > thresholds.scalar_rel_change:
            alerts.append(
                Alert(
                    severity=_severity(change, thresholds.scalar_rel_change),
                    kind="scalar",
                    node=node_key,
                    column=a.name,
                    metric=metric,
                    value=change,
                    threshold=thresholds.scalar_rel_change,
                    message=(
                        f"{node_key}: column {a.name!r} {metric} moved by "
                        f"{change:.2f}× its scale"
                    ),
                )
            )
    return drift


def _diff_node(
    key: str,
    a: NodeQualityProfile,
    b: NodeQualityProfile,
    thresholds: DriftThresholds,
    alerts: list[Alert],
) -> NodeDiff:
    diff = NodeDiff(
        node=key,
        label=a.node_label or b.node_label,
        rows_a=a.rows_out,
        rows_b=b.rows_out,
        latency_a_s=a.wall_time_s,
        latency_b_s=b.wall_time_s,
    )
    if a.rows_out:
        rel = abs(b.rows_out - a.rows_out) / a.rows_out
        if rel > thresholds.row_count_rel_change:
            alerts.append(
                Alert(
                    severity=_severity(rel, thresholds.row_count_rel_change),
                    kind="row_count",
                    node=key,
                    column=None,
                    metric="rows_out",
                    value=rel,
                    threshold=thresholds.row_count_rel_change,
                    message=(
                        f"{key}: output rows changed "
                        f"{a.rows_out} → {b.rows_out} ({rel:+.1%})"
                    ),
                )
            )
    if (
        b.wall_time_s > a.wall_time_s * thresholds.latency_ratio
        and b.wall_time_s - a.wall_time_s > thresholds.latency_floor_s
    ):
        ratio = b.wall_time_s / max(a.wall_time_s, _EPS)
        alerts.append(
            Alert(
                severity="warn",
                kind="latency",
                node=key,
                column=None,
                metric="wall_time_s",
                value=ratio,
                threshold=thresholds.latency_ratio,
                message=(
                    f"{key}: node latency regressed "
                    f"{a.wall_time_s * 1e3:.1f}ms → {b.wall_time_s * 1e3:.1f}ms"
                ),
            )
        )
    for name, profile_a in a.columns.items():
        profile_b = b.columns.get(name)
        if profile_b is None:
            continue
        diff.columns[name] = _diff_column(
            key, profile_a, profile_b, thresholds, alerts
        )
    return diff


def compare_runs(
    run_a: RunRecord | Mapping[str, Any],
    run_b: RunRecord | Mapping[str, Any],
    thresholds: DriftThresholds | None = None,
) -> RunDiff:
    """Diff two ledger records and raise threshold-based alerts.

    ``run_a`` is the baseline (yesterday's good run), ``run_b`` the
    candidate. Only nodes and columns present in *both* runs are compared
    — a changed pipeline topology is a code change, not data drift.
    Accepts :class:`RunRecord` objects or raw ledger dicts.
    """
    if not isinstance(run_a, RunRecord):
        run_a = RunRecord.from_dict(run_a)
    if not isinstance(run_b, RunRecord):
        run_b = RunRecord.from_dict(run_b)
    thresholds = thresholds or DriftThresholds()
    alerts: list[Alert] = []
    diff = RunDiff(
        run_a=run_a.run_id,
        run_b=run_b.run_id,
        wall_time_a_s=run_a.wall_time_s,
        wall_time_b_s=run_b.wall_time_s,
    )
    profiles_a = run_a.node_profiles()
    profiles_b = run_b.node_profiles()
    for key in profiles_a:
        if key in profiles_b:
            diff.nodes[key] = _diff_node(
                key, profiles_a[key], profiles_b[key], thresholds, alerts
            )
    rate_a, rate_b = run_a.quarantine_rate, run_b.quarantine_rate
    if rate_b - rate_a > thresholds.quarantine_rate_increase:
        alerts.append(
            Alert(
                severity=_severity(
                    rate_b - rate_a, thresholds.quarantine_rate_increase
                ),
                kind="quarantine",
                node="pipeline",
                column=None,
                metric="quarantine_rate",
                value=rate_b - rate_a,
                threshold=thresholds.quarantine_rate_increase,
                message=(
                    f"quarantine rate rose {rate_a:.3f} → {rate_b:.3f} "
                    f"(+{rate_b - rate_a:.3f})"
                ),
            )
        )
    if (
        run_a.wall_time_s
        and run_b.wall_time_s
        and run_b.wall_time_s > run_a.wall_time_s * thresholds.latency_ratio
        and run_b.wall_time_s - run_a.wall_time_s > thresholds.run_latency_floor_s
    ):
        alerts.append(
            Alert(
                severity="warn",
                kind="latency",
                node="pipeline",
                column=None,
                metric="wall_time_s",
                value=run_b.wall_time_s / max(run_a.wall_time_s, _EPS),
                threshold=thresholds.latency_ratio,
                message=(
                    f"run wall time regressed {run_a.wall_time_s:.2f}s → "
                    f"{run_b.wall_time_s:.2f}s"
                ),
            )
        )
    severity_rank = {"critical": 0, "warn": 1}
    alerts.sort(key=lambda a: (severity_rank[a.severity], -a.value))
    diff.alerts = alerts
    return diff
