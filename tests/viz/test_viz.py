"""Tests for ASCII charts and table rendering."""

import pytest

from repro.frame import DataFrame
from repro.viz import bar_chart, format_records, format_table, histogram, line_chart


class TestLineChart:
    def test_contains_title_and_legend(self):
        chart = line_chart([1, 2, 3], {"loss": [0.1, 0.2, 0.3]}, title="T")
        assert chart.startswith("T")
        assert "legend" in chart
        assert "loss" in chart

    def test_multiple_series_get_distinct_markers(self):
        chart = line_chart([1, 2], {"a": [0, 1], "b": [1, 0]})
        assert "o = a" in chart and "x = b" in chart

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            line_chart([1, 2], {"a": [1]})

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            line_chart([1], {})

    def test_constant_series_safe(self):
        chart = line_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]})
        assert "5" in chart

    def test_axis_labels_rendered(self):
        chart = line_chart([0, 1], {"s": [0, 1]}, x_label="pct", y_label="loss")
        assert "pct" in chart and "loss" in chart


class TestBarChart:
    def test_bars_scale_to_max(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1.0, 2.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bar_chart([], [])

    def test_all_zero_safe(self):
        assert "0" in bar_chart(["a"], [0.0])


class TestHistogram:
    def test_bucket_count(self):
        chart = histogram([1.0, 2.0, 3.0, 4.0], bins=4)
        assert len(chart.splitlines()) == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            histogram([])


class TestTables:
    def test_format_records_aligns_columns(self):
        text = format_records([{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4  # header, rule, two rows

    def test_empty_records(self):
        assert format_records([]) == "(empty)"

    def test_missing_cell_rendered_as_dot(self):
        text = format_records([{"a": None}])
        assert "·" in text

    def test_long_cells_truncated(self):
        text = format_records([{"a": "x" * 100}], max_width=10)
        assert "…" in text

    def test_format_table_truncates_rows(self):
        frame = DataFrame({"v": list(range(50))})
        text = format_table(frame, max_rows=5)
        assert "50 rows total" in text


class TestReliabilityChart:
    def test_calibrated_model_marks_align(self):
        import numpy as np

        from repro.learn import reliability_table
        from repro.viz import reliability_chart

        rng = np.random.default_rng(0)
        probs = rng.random(2000)
        outcomes = (rng.random(2000) < probs).astype(int)
        chart = reliability_chart(reliability_table(outcomes, probs, positive=1))
        assert "█" in chart and "n=" in chart
        assert len(chart.splitlines()) >= 5

    def test_empty_table_raises(self):
        from repro.viz import reliability_chart

        with pytest.raises(ValueError):
            reliability_chart([])


class TestEmptyTraceRendering:
    """An empty tracing window must render a stable report, never crash."""

    def test_format_trace_empty_is_stable(self):
        from repro.viz import format_metrics, format_span_summary, format_trace

        assert format_trace([]) == "(no spans recorded)"
        assert format_span_summary([]) == "(no spans recorded)"
        assert format_metrics({}) == "(no metrics recorded)"

    def test_empty_tracing_window_renders_no_spans_report(self):
        from repro.obs import tracing

        with tracing():
            pass  # nothing instrumented inside the window
        # re-open a fresh window to get the report object
        with tracing() as report:
            pass
        assert report.closed
        assert report.spans == []
        text = report.render()
        assert "(no spans recorded)" in text
        assert report.tree() == "(no spans recorded)"
        assert report.summary_table() == "(no spans recorded)"
        assert report.total_duration() == 0.0

    def test_open_span_renders_as_open_not_crash(self):
        from repro.obs.trace import Span
        from repro.viz import format_trace

        open_span = Span(span_id=0, parent_id=None, name="stuck", start=0.0)
        text = format_trace([open_span])
        assert "(open)" in text and "stuck" in text

    def test_format_run_diff_without_alerts_says_so(self):
        from repro.obs.diff import RunDiff
        from repro.viz import format_run_diff

        text = format_run_diff(RunDiff(run_a="a", run_b="b"))
        assert "no drift alerts" in text
        assert "a" in text and "b" in text
