"""Unit tests for the model substrate."""

import numpy as np
import pytest

from repro.datasets import make_blobs, make_classification, make_moons, make_regression
from repro.learn import (
    DecisionTreeClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    MajorityClassifier,
    RandomClassifier,
    RidgeRegression,
    clone,
)
from repro.learn.models import pairwise_distances

ALL_CLASSIFIERS = [
    LogisticRegression(),
    KNeighborsClassifier(5),
    GaussianNB(),
    DecisionTreeClassifier(max_depth=6),
    LinearSVC(),
]


@pytest.fixture(scope="module")
def separable():
    X, y = make_classification(n=200, n_features=4, noise=0.2, seed=1)
    return X[:150], y[:150], X[150:], y[150:]


class TestClassifierContract:
    @pytest.mark.parametrize("model", ALL_CLASSIFIERS, ids=lambda m: type(m).__name__)
    def test_learns_separable_data(self, model, separable):
        Xtr, ytr, Xte, yte = separable
        fitted = clone(model).fit(Xtr, ytr)
        assert fitted.score(Xte, yte) > 0.8

    @pytest.mark.parametrize("model", ALL_CLASSIFIERS, ids=lambda m: type(m).__name__)
    def test_predict_before_fit_raises(self, model, separable):
        with pytest.raises(RuntimeError):
            clone(model).predict(separable[0])

    @pytest.mark.parametrize("model", ALL_CLASSIFIERS, ids=lambda m: type(m).__name__)
    def test_string_labels(self, model, separable):
        Xtr, ytr, Xte, yte = separable
        named = np.where(ytr == 1, "pos", "neg")
        fitted = clone(model).fit(Xtr, named)
        predictions = fitted.predict(Xte)
        assert set(predictions) <= {"pos", "neg"}

    @pytest.mark.parametrize(
        "model",
        [LogisticRegression(), KNeighborsClassifier(3), GaussianNB(), DecisionTreeClassifier()],
        ids=lambda m: type(m).__name__,
    )
    def test_predict_proba_rows_sum_to_one(self, model, separable):
        Xtr, ytr, Xte, __ = separable
        probs = clone(model).fit(Xtr, ytr).predict_proba(Xte)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_clone_resets_fitted_state(self, separable):
        Xtr, ytr, *__ = separable
        fitted = LogisticRegression().fit(Xtr, ytr)
        fresh = clone(fitted)
        assert not fresh.is_fitted
        assert fresh.l2 == fitted.l2

    def test_empty_fit_raises(self):
        with pytest.raises(ValueError):
            LogisticRegression().fit(np.empty((0, 2)), np.empty(0))

    def test_xy_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            GaussianNB().fit(np.zeros((3, 2)), np.zeros(2))


class TestLogisticRegression:
    def test_multiclass(self):
        X, y = make_blobs(n=300, centers=3, spread=0.8, seed=4)
        model = LogisticRegression().fit(X[:220], y[:220])
        assert model.score(X[220:], y[220:]) > 0.9
        assert model.predict_proba(X[:5]).shape == (5, 3)

    def test_single_class_degenerates_to_constant(self):
        X = np.random.default_rng(0).normal(size=(10, 2))
        model = LogisticRegression().fit(X, np.zeros(10, dtype=int))
        assert np.all(model.predict(X) == 0)

    def test_l2_shrinks_weights(self, separable):
        Xtr, ytr, *__ = separable
        weak = LogisticRegression(l2=1e-4).fit(Xtr, ytr)
        strong = LogisticRegression(l2=10.0).fit(Xtr, ytr)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_log_loss_better_for_good_model(self, separable):
        Xtr, ytr, Xte, yte = separable
        good = LogisticRegression().fit(Xtr, ytr)
        shuffled = np.random.default_rng(0).permutation(ytr)
        bad = LogisticRegression().fit(Xtr, shuffled)
        assert good.log_loss(Xte, yte) < bad.log_loss(Xte, yte)

    def test_sample_weight_changes_fit(self, separable):
        Xtr, ytr, *__ = separable
        weights = np.where(ytr == 1, 10.0, 0.1)
        weighted = LogisticRegression().fit(Xtr, ytr, sample_weight=weights)
        plain = LogisticRegression().fit(Xtr, ytr)
        assert np.mean(weighted.predict(Xtr) == 1) > np.mean(plain.predict(Xtr) == 1)


class TestKNN:
    def test_k_capped_at_train_size(self):
        X = np.asarray([[0.0], [1.0]])
        model = KNeighborsClassifier(n_neighbors=10).fit(X, np.asarray([0, 1]))
        assert model.predict(np.asarray([[0.1]]))[0] == 0

    def test_k1_memorises_training_set(self, separable):
        Xtr, ytr, *__ = separable
        model = KNeighborsClassifier(1).fit(Xtr, ytr)
        assert model.score(Xtr, ytr) == 1.0

    def test_invalid_k_raises(self):
        with pytest.raises(ValueError):
            KNeighborsClassifier(0)

    def test_kneighbors_returns_sorted_distances(self, separable):
        Xtr, ytr, Xte, __ = separable
        model = KNeighborsClassifier(5).fit(Xtr, ytr)
        distances, __ = model.kneighbors(Xte[:3])
        assert np.all(np.diff(distances, axis=1) >= 0)

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "cosine"])
    def test_metrics_supported(self, metric, separable):
        Xtr, ytr, Xte, yte = separable
        model = KNeighborsClassifier(5, metric=metric).fit(Xtr, ytr)
        assert model.score(Xte, yte) > 0.7

    def test_pairwise_euclidean_matches_reference(self, rng):
        A = rng.normal(size=(6, 3))
        B = rng.normal(size=(4, 3))
        D = pairwise_distances(A, B)
        for i in range(6):
            for j in range(4):
                assert np.isclose(D[i, j], np.linalg.norm(A[i] - B[j]))

    def test_unknown_metric_raises(self, rng):
        with pytest.raises(ValueError):
            pairwise_distances(rng.normal(size=(2, 2)), rng.normal(size=(2, 2)), "hamming")

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "cosine"])
    @pytest.mark.parametrize("chunk_size", [1, 3, 7, 50])
    def test_chunked_matches_unchunked(self, metric, chunk_size, rng):
        A = rng.normal(size=(13, 4))
        B = rng.normal(size=(9, 4))
        full = pairwise_distances(A, B, metric=metric)
        chunked = pairwise_distances(A, B, metric=metric, chunk_size=chunk_size)
        # Dot-product kernels go through BLAS, whose blocking depends on the
        # operand shape, so chunked results can differ in the last bits.
        assert np.allclose(full, chunked, rtol=1e-12, atol=1e-12)
        assert np.array_equal(
            pairwise_distances(A, B, "manhattan"),
            pairwise_distances(A, B, "manhattan", chunk_size=chunk_size),
        )


class TestDecisionTree:
    def test_fits_nonlinear_boundary(self):
        X, y = make_moons(n=300, noise=0.1, seed=2)
        model = DecisionTreeClassifier(max_depth=8).fit(X[:220], y[:220])
        assert model.score(X[220:], y[220:]) > 0.85

    def test_max_depth_zero_is_majority(self, separable):
        Xtr, ytr, *__ = separable
        model = DecisionTreeClassifier(max_depth=0).fit(Xtr, ytr)
        assert model.depth() == 0
        values, counts = np.unique(ytr, return_counts=True)
        assert np.all(model.predict(Xtr) == values[np.argmax(counts)])

    def test_depth_respects_limit(self, separable):
        Xtr, ytr, *__ = separable
        model = DecisionTreeClassifier(max_depth=3).fit(Xtr, ytr)
        assert model.depth() <= 3

    def test_node_count_odd(self, separable):
        Xtr, ytr, *__ = separable
        model = DecisionTreeClassifier(max_depth=4).fit(Xtr, ytr)
        assert model.node_count() % 2 == 1  # full binary tree

    def test_min_impurity_decrease_prunes(self, separable):
        Xtr, ytr, *__ = separable
        loose = DecisionTreeClassifier(max_depth=8).fit(Xtr, ytr)
        strict = DecisionTreeClassifier(max_depth=8, min_impurity_decrease=0.2).fit(Xtr, ytr)
        assert strict.node_count() <= loose.node_count()


class TestLinearModels:
    def test_ols_recovers_exact_solution(self):
        X, y, w = make_regression(n=100, noise=0.0, seed=5)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.coef_, w, atol=1e-8)
        assert abs(model.intercept_) < 1e-8

    def test_r2_perfect_fit(self):
        X, y, __ = make_regression(n=50, noise=0.0, seed=6)
        assert LinearRegression().fit(X, y).score(X, y) == pytest.approx(1.0)

    def test_ridge_shrinks_towards_zero(self):
        X, y, __ = make_regression(n=60, noise=0.1, seed=7)
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=100.0).fit(X, y)
        assert np.linalg.norm(ridge.coef_) < np.linalg.norm(ols.coef_)

    def test_ridge_alpha_zero_matches_ols(self):
        X, y, __ = make_regression(n=60, noise=0.1, seed=8)
        ols = LinearRegression().fit(X, y)
        ridge = RidgeRegression(alpha=0.0).fit(X, y)
        assert np.allclose(ols.coef_, ridge.coef_, atol=1e-6)

    def test_no_intercept(self):
        X, y, w = make_regression(n=60, noise=0.0, seed=9)
        model = LinearRegression(fit_intercept=False).fit(X, y)
        assert model.intercept_ == 0.0
        assert np.allclose(model.coef_, w, atol=1e-8)

    def test_svc_multiclass_raises(self):
        X, y = make_blobs(n=60, centers=3, seed=1)
        with pytest.raises(ValueError):
            LinearSVC().fit(X, y)

    def test_svc_decision_function_sign_matches_predict(self, separable):
        Xtr, ytr, Xte, __ = separable
        model = LinearSVC().fit(Xtr, ytr)
        scores = model.decision_function(Xte)
        assert np.all((scores >= 0) == (model.predict(Xte) == model.classes_[1]))

    def test_mse_decreases_with_fit_quality(self):
        X, y, __ = make_regression(n=80, noise=0.1, seed=10)
        good = LinearRegression().fit(X, y)
        assert good.mse(X, y) < np.var(y)


class TestBaselines:
    def test_majority_predicts_most_frequent(self):
        X = np.zeros((5, 1))
        y = np.asarray(["a", "a", "a", "b", "b"])
        model = MajorityClassifier().fit(X, y)
        assert all(model.predict(np.zeros((3, 1))) == "a")

    def test_majority_proba_matches_prior(self):
        X = np.zeros((4, 1))
        y = np.asarray([0, 0, 0, 1])
        probs = MajorityClassifier().fit(X, y).predict_proba(np.zeros((1, 1)))
        assert np.allclose(probs[0], [0.75, 0.25])

    def test_random_classifier_uses_training_classes(self):
        X = np.zeros((4, 1))
        y = np.asarray([3, 3, 7, 7])
        predictions = RandomClassifier(seed=1).fit(X, y).predict(np.zeros((50, 1)))
        assert set(predictions) <= {3, 7}
