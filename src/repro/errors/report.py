"""Ground-truth records of injected data errors.

Every injector in :mod:`repro.errors` returns the corrupted frame *plus* an
:class:`ErrorReport` describing exactly which cells were touched and what
their original values were. The report is what lets benchmarks score
detection quality (did the importance method flag the corrupted tuples?) and
what powers the "oracle" cleaning function of the hands-on session.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["ErrorReport", "merge_reports"]


@dataclass
class ErrorReport:
    """A record of one error-injection pass.

    Attributes
    ----------
    kind:
        Error family, e.g. ``"label_flip"``, ``"missing"``, ``"outlier"``.
    column:
        Affected column (empty for row-level errors such as duplicates).
    row_ids:
        Stable row ids of the affected rows (frame ``row_ids``, not positions).
    original_values:
        Pre-corruption cell values aligned with ``row_ids``.
    params:
        Injector parameters for provenance of the experiment itself.
    """

    kind: str
    column: str
    row_ids: np.ndarray
    original_values: list = field(default_factory=list)
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.row_ids = np.asarray(self.row_ids, dtype=np.int64)

    @property
    def n_errors(self) -> int:
        return len(self.row_ids)

    def affected_mask(self, frame_row_ids: Any) -> np.ndarray:
        """Boolean mask over a frame's rows marking corrupted tuples."""
        frame_row_ids = np.asarray(frame_row_ids)
        return np.isin(frame_row_ids, self.row_ids)

    def summary(self) -> str:
        target = f" in {self.column!r}" if self.column else ""
        return f"{self.kind}: {self.n_errors} rows{target}"


def merge_reports(reports: list[ErrorReport]) -> ErrorReport:
    """Union of several reports (kind becomes ``"mixed"`` when they differ)."""
    if not reports:
        raise ValueError("no reports to merge")
    kinds = {r.kind for r in reports}
    columns = {r.column for r in reports}
    return ErrorReport(
        kind=kinds.pop() if len(kinds) == 1 else "mixed",
        column=columns.pop() if len(columns) == 1 else "",
        row_ids=np.unique(np.concatenate([r.row_ids for r in reports])),
        params={"merged_from": [r.kind for r in reports]},
    )
