"""Property-based tests for the learning substrate.

Hypothesis drives the core numerical contracts: gradients match finite
differences, scalers invert, metrics respect their algebraic identities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learn import MinMaxScaler, StandardScaler
from repro.learn.metrics import accuracy, confusion_matrix, error_rate, macro_f1
from repro.learn.models.linear import squared_hinge_loss
from repro.learn.models.logistic import sigmoid, softmax_loss_grad

matrices = st.integers(min_value=2, max_value=30).flatmap(
    lambda n: st.integers(min_value=1, max_value=5).map(lambda d: (n, d))
)


def random_matrix(shape, seed):
    return np.random.default_rng(seed).normal(size=shape)


class TestGradients:
    @given(shape=matrices, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_softmax_gradient_matches_finite_differences(self, shape, seed):
        n, d = shape
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        y = rng.integers(0, 2, size=n)
        if len(np.unique(y)) < 2:
            y[0] = 1 - y[0]
        theta = rng.normal(scale=0.5, size=2 * (d + 1))
        loss, grad = softmax_loss_grad(theta, X, y, 2, l2=0.1)
        eps = 1e-6
        for j in rng.choice(len(theta), size=min(4, len(theta)), replace=False):
            bumped = theta.copy()
            bumped[j] += eps
            loss_plus, __ = softmax_loss_grad(bumped, X, y, 2, l2=0.1)
            numeric = (loss_plus - loss) / eps
            assert numeric == pytest.approx(grad[j], abs=1e-3, rel=1e-3)

    @given(shape=matrices, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_squared_hinge_gradient_matches_finite_differences(self, shape, seed):
        n, d = shape
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, d))
        y_signed = rng.choice([-1.0, 1.0], size=n)
        theta = rng.normal(scale=0.5, size=d + 1)
        loss, grad = squared_hinge_loss(theta, X, y_signed, C=1.0)
        eps = 1e-6
        for j in range(len(theta)):
            bumped = theta.copy()
            bumped[j] += eps
            loss_plus, __ = squared_hinge_loss(bumped, X, y_signed, C=1.0)
            numeric = (loss_plus - loss) / eps
            assert numeric == pytest.approx(grad[j], abs=1e-3, rel=1e-3)

    def test_sigmoid_stable_at_extremes(self):
        z = np.asarray([-1000.0, 0.0, 1000.0])
        out = sigmoid(z)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(0.5)
        assert out[2] == pytest.approx(1.0)
        assert np.all(np.isfinite(out))


class TestScalers:
    @given(shape=matrices, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_standard_scaler_roundtrip(self, shape, seed):
        X = random_matrix(shape, seed)
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X, atol=1e-9)

    @given(shape=matrices, seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_minmax_output_in_unit_box(self, shape, seed):
        X = random_matrix(shape, seed)
        Z = MinMaxScaler().fit_transform(X)
        assert Z.min() >= -1e-12 and Z.max() <= 1.0 + 1e-12


labels = st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=40)


class TestMetricIdentities:
    @given(y=labels, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_accuracy_plus_error_is_one(self, y, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.permutation(y)
        assert accuracy(y, y_pred) + error_rate(y, y_pred) == pytest.approx(1.0)

    @given(y=labels, seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=40, deadline=None)
    def test_confusion_matrix_sums_to_n(self, y, seed):
        rng = np.random.default_rng(seed)
        y_pred = rng.permutation(y)
        cm = confusion_matrix(y, y_pred)
        assert cm.sum() == len(y)
        # Diagonal counts the agreements.
        assert cm.trace() == int(np.sum(np.asarray(y) == np.asarray(y_pred)))

    @given(y=labels)
    @settings(max_examples=30, deadline=None)
    def test_perfect_prediction_scores_one(self, y):
        assert accuracy(y, y) == 1.0
        assert macro_f1(y, y) == 1.0
