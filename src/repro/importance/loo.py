"""Leave-one-out (LOO) importance — the simplest data-importance score."""

from __future__ import annotations

import numpy as np

from .base import ImportanceResult
from .utility import Utility

__all__ = ["loo_importance"]


def loo_importance(utility: Utility) -> ImportanceResult:
    """``φ_i = v(N) − v(N \\ {i})`` for every training point.

    Requires ``n + 1`` utility evaluations (model retrainings), which is
    exactly the cost profile the tutorial's "Overcoming Computational
    Challenges" section motivates improving on.
    """
    n = utility.n_train
    everything = np.arange(n)
    full = utility.evaluate(everything)
    values = np.empty(n)
    for i in range(n):
        without = np.delete(everything, i)
        values[i] = full - utility.evaluate(without)
    return ImportanceResult(
        method="loo", values=values, extras={"full_score": full}
    )
