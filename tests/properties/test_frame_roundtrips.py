"""Round-trip and algebraic invariants of the DataFrame substrate.

Complements ``tests/frame/test_frame_properties.py`` (which checks joins
and group-bys against reference implementations) with serialisation
round-trips and the select/filter/concat identities the pipeline layer
silently relies on.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame, from_csv_string, to_csv_string

# Words that cannot be mistaken for ints, floats, bools, or missing cells
# by the CSV type-inference, so string columns survive a round trip.
words = st.sampled_from(["alpha", "beta", "gamma", "delta x", "épsilon"])
floats = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
maybe_floats = st.one_of(st.none(), floats)
ints = st.integers(min_value=-(2**40), max_value=2**40)
bools = st.booleans()


@st.composite
def frames(draw):
    n = draw(st.integers(min_value=1, max_value=12))
    # An all-missing column serialises to nothing but empty cells, so its
    # dtype is unrecoverable by design — keep at least one float observed.
    f = draw(
        st.lists(maybe_floats, min_size=n, max_size=n).filter(
            lambda xs: any(x is not None for x in xs)
        )
    )
    return DataFrame(
        {
            "i": draw(st.lists(ints, min_size=n, max_size=n)),
            "f": f,
            "b": draw(st.lists(bools, min_size=n, max_size=n)),
            "s": draw(st.lists(words, min_size=n, max_size=n)),
        }
    )


class TestCsvRoundTrip:
    @given(frame=frames())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_preserves_values_and_missingness(self, frame):
        back = from_csv_string(to_csv_string(frame))
        assert back.columns == frame.columns
        assert back.equals(frame)

    @given(frame=frames())
    @settings(max_examples=30, deadline=None)
    def test_serialisation_is_stable(self, frame):
        once = to_csv_string(frame)
        assert to_csv_string(from_csv_string(once)) == once


class TestSelection:
    @given(frame=frames(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_select_keeps_rows_and_ids(self, frame, data):
        subset = data.draw(
            st.lists(st.sampled_from(frame.columns), min_size=1, unique=True)
        )
        out = frame.select(subset)
        assert out.columns == subset
        assert out.num_rows == frame.num_rows
        assert out.row_ids.tolist() == frame.row_ids.tolist()
        for name in subset:
            assert out.column(name).to_list() == frame.column(name).to_list()

    @given(frame=frames(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_drop_is_complement_of_select(self, frame, data):
        dropped = data.draw(
            st.lists(st.sampled_from(frame.columns), min_size=0, unique=True)
        )
        remaining = [c for c in frame.columns if c not in dropped]
        if not remaining:
            return
        assert frame.drop(dropped).equals(frame.select(remaining))


class TestFilter:
    @given(frame=frames(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_filter_row_count_and_id_subsequence(self, frame, data):
        mask = np.asarray(
            data.draw(
                st.lists(
                    st.booleans(),
                    min_size=frame.num_rows,
                    max_size=frame.num_rows,
                )
            ),
            dtype=bool,
        )
        out = frame.filter(mask)
        assert out.num_rows == int(mask.sum())
        assert out.row_ids.tolist() == frame.row_ids[mask].tolist()

    @given(frame=frames())
    @settings(max_examples=30, deadline=None)
    def test_filter_all_true_is_identity(self, frame):
        assert frame.filter(np.ones(frame.num_rows, dtype=bool)).equals(frame)

    @given(frame=frames(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_filters_compose_by_conjunction(self, frame, data):
        n = frame.num_rows
        m1 = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
        m2 = np.asarray(
            data.draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
        )
        chained = frame.filter(m1).filter(m2[m1])
        assert chained.equals(frame.filter(m1 & m2))


class TestConcatAndTake:
    @given(a=frames(), b=frames())
    @settings(max_examples=60, deadline=None)
    def test_concat_stacks_rows_and_ids(self, a, b):
        both = DataFrame.concat_rows([a, b])
        assert both.num_rows == a.num_rows + b.num_rows
        assert both.row_ids.tolist() == a.row_ids.tolist() + b.row_ids.tolist()
        assert both.take(np.arange(a.num_rows)).equals(a)
        assert both.take(a.num_rows + np.arange(b.num_rows)).equals(b)

    @given(frame=frames(), seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=60, deadline=None)
    def test_take_permutation_roundtrip(self, frame, seed):
        perm = np.random.default_rng(seed).permutation(frame.num_rows)
        assert frame.take(perm).take(np.argsort(perm)).equals(frame)
