"""Unit tests for correctness, fairness, and stability metrics."""

import numpy as np
import pytest

from repro.learn.metrics import (
    accuracy,
    brier_score,
    confusion_matrix,
    demographic_parity_difference,
    disagreement_rate,
    equalized_odds_difference,
    error_rate,
    f1_score,
    group_rates,
    log_loss,
    macro_f1,
    mean_prediction_entropy,
    precision,
    prediction_entropy,
    predictive_parity_difference,
    recall,
)


class TestClassification:
    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_error_rate_complement(self):
        assert accuracy([1, 0], [1, 0]) + error_rate([1, 0], [1, 1]) == pytest.approx(1.5)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([1], [1, 2])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_confusion_matrix_counts(self):
        cm = confusion_matrix(["a", "a", "b"], ["a", "b", "b"], labels=["a", "b"])
        assert cm.tolist() == [[1, 1], [0, 1]]

    def test_confusion_matrix_diagonal_is_correct_count(self):
        y = [0, 1, 0, 1]
        cm = confusion_matrix(y, y)
        assert cm.trace() == 4

    def test_precision_recall_f1(self):
        y_true = [1, 1, 0, 0]
        y_pred = [1, 0, 1, 0]
        assert precision(y_true, y_pred, positive=1) == 0.5
        assert recall(y_true, y_pred, positive=1) == 0.5
        assert f1_score(y_true, y_pred, positive=1) == 0.5

    def test_precision_no_predictions_is_zero(self):
        assert precision([1, 1], [0, 0], positive=1) == 0.0

    def test_macro_f1_perfect(self):
        assert macro_f1([0, 1, 2], [0, 1, 2]) == 1.0

    def test_log_loss_confident_correct_is_small(self):
        probs = np.asarray([[0.99, 0.01], [0.01, 0.99]])
        assert log_loss([0, 1], probs, classes=[0, 1]) < 0.05

    def test_log_loss_confident_wrong_is_large(self):
        probs = np.asarray([[0.01, 0.99]])
        assert log_loss([0], probs, classes=[0, 1]) > 4.0

    def test_brier_perfect_is_zero(self):
        probs = np.asarray([[1.0, 0.0]])
        assert brier_score([0], probs, classes=[0, 1]) == 0.0

    def test_brier_worst_is_two(self):
        probs = np.asarray([[0.0, 1.0]])
        assert brier_score([0], probs, classes=[0, 1]) == pytest.approx(2.0)


class TestFairness:
    def setup_method(self):
        # Group A: 2/2 selected. Group B: 0/2 selected.
        self.y_true = np.asarray([1, 0, 1, 0])
        self.y_pred = np.asarray([1, 1, 0, 0])
        self.group = np.asarray(["A", "A", "B", "B"])

    def test_group_rates_keys(self):
        rates = group_rates(self.y_true, self.y_pred, self.group, positive=1)
        assert set(rates) == {"A", "B"}
        assert rates["A"]["selection_rate"] == 1.0
        assert rates["B"]["selection_rate"] == 0.0

    def test_demographic_parity_gap(self):
        gap = demographic_parity_difference(self.y_true, self.y_pred, self.group, positive=1)
        assert gap == 1.0

    def test_equalized_odds_zero_when_identical(self):
        y = np.asarray([1, 0, 1, 0])
        pred = np.asarray([1, 0, 1, 0])
        assert equalized_odds_difference(y, pred, self.group, positive=1) == 0.0

    def test_predictive_parity_range(self):
        gap = predictive_parity_difference(self.y_true, self.y_pred, self.group, positive=1)
        assert 0.0 <= gap <= 1.0

    def test_fair_classifier_scores_zero_everywhere(self):
        y = np.asarray([1, 0, 1, 0])
        assert demographic_parity_difference(y, y, self.group, 1) == 0.0
        assert equalized_odds_difference(y, y, self.group, 1) == 0.0
        assert predictive_parity_difference(y, y, self.group, 1) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            demographic_parity_difference([1], [1, 0], ["A", "B"], 1)


class TestStability:
    def test_entropy_uniform_is_max(self):
        uniform = np.asarray([[0.5, 0.5]])
        peaked = np.asarray([[0.99, 0.01]])
        assert prediction_entropy(uniform)[0] > prediction_entropy(peaked)[0]
        assert prediction_entropy(uniform)[0] == pytest.approx(np.log(2))

    def test_mean_entropy_scalar(self):
        probs = np.asarray([[0.5, 0.5], [1.0, 0.0]])
        assert 0 < mean_prediction_entropy(probs) < np.log(2)

    def test_disagreement_zero_for_identical(self):
        preds = [np.asarray([1, 0, 1])] * 3
        assert disagreement_rate(preds) == 0.0

    def test_disagreement_counts_divergent_points(self):
        preds = [np.asarray([1, 0, 1]), np.asarray([1, 1, 1])]
        assert disagreement_rate(preds) == pytest.approx(1 / 3)

    def test_single_model_no_disagreement(self):
        assert disagreement_rate([np.asarray([1, 2])]) == 0.0
