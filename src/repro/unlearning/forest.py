"""HedgeCut-style low-latency unlearning for tree ensembles [17].

HedgeCut maintains randomised trees so that forgetting a training point is
far cheaper than retraining the forest. This module implements the
ensemble-level version of that idea: the forest remembers which bootstrap
rows each tree consumed, so a deletion request refits **only the trees whose
sample actually contains the deleted points** — on average a
``1 − (1 − 1/n)^n ≈ 63%`` subset for single deletions and far less for
points outside most bootstrap samples, with the refit using the already-
materialised bootstrap minus the deleted rows.

The result is *exact*: the forest after ``forget`` is distributed exactly
like a forest retrained from scratch on the reduced data with the same
per-tree sample (minus deletions), and predictions of untouched trees are
bit-identical.
"""

from __future__ import annotations

from typing import Any, Iterable

import numpy as np

from ..learn.base import check_matrix, check_xy
from ..learn.models.forest import RandomForestClassifier
from ..learn.models.tree import DecisionTreeClassifier

__all__ = ["RemovalAwareForest"]


class RemovalAwareForest(RandomForestClassifier):
    """A random forest that forgets training points by partial refits.

    ``forget(positions)`` removes the given training rows; only trees whose
    bootstrap sample intersects the removal set are refitted, and the count
    of refits is reported for latency accounting.
    """

    def fit(self, X: Any, y: Any) -> "RemovalAwareForest":
        X, y = check_xy(X, y)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        n, d = X.shape
        n_features = max(1, int(round(self.max_features * d)))
        self.X_ = X
        self.y_ = y
        self.removed_ = np.zeros(n, dtype=bool)
        self.trees_ = []
        self.feature_sets_ = []
        self.sample_rows_ = []
        sample_size = max(1, int(round(self.sample_fraction * n)))
        for __ in range(self.n_trees):
            rows = rng.integers(0, n, size=sample_size)
            columns = np.sort(rng.choice(d, size=n_features, replace=False))
            self.sample_rows_.append(rows)
            self.feature_sets_.append(columns)
            self.trees_.append(self._fit_tree(rows, columns))
        return self

    def _fit_tree(self, rows: np.ndarray, columns: np.ndarray):
        active = rows[~self.removed_[rows]]
        if len(active) == 0:
            return ("constant", self.classes_[0])
        ys = self.y_[active]
        if len(np.unique(ys)) < 2:
            return ("constant", ys[0])
        tree = DecisionTreeClassifier(
            max_depth=self.max_depth, min_samples_split=self.min_samples_split
        ).fit(self.X_[np.ix_(active, columns)], ys)
        return ("tree", tree)

    def forget(self, positions: Iterable[int]) -> int:
        """Remove training rows; returns the number of trees refitted."""
        self._require_fitted()
        positions = np.asarray(list(positions), dtype=np.int64)
        newly_removed = positions[~self.removed_[positions]]
        self.removed_[newly_removed] = True
        if self.removed_.all():
            raise ValueError("cannot forget the entire training set")
        refits = 0
        removal_set = set(newly_removed.tolist())
        if not removal_set:
            return 0
        for t in range(self.n_trees):
            if removal_set.intersection(self.sample_rows_[t].tolist()):
                self.trees_[t] = self._fit_tree(
                    self.sample_rows_[t], self.feature_sets_[t]
                )
                refits += 1
        return refits

    @property
    def n_active(self) -> int:
        return int((~self.removed_).sum())
