"""Area Under the Margin (AUM) ranking (Pleiss et al. [63]).

AUM observes *training dynamics*: correctly-labelled points establish a
positive assigned-label margin early, while mislabelled points are dragged
toward their (wrong) given label only late, accumulating negative margin.
Since the library's L-BFGS logistic regression has no epoch structure, this
module trains its own plain gradient-descent softmax classifier to expose
the trajectory — matching the spirit of the method's SGD setting.
"""

from __future__ import annotations

from typing import Any

import numpy as np
from scipy.special import softmax

from .base import ImportanceResult

__all__ = ["aum_importance"]


def aum_importance(
    X: Any,
    y: Any,
    n_epochs: int = 60,
    learning_rate: float = 0.5,
    l2: float = 1e-4,
    seed: int = 0,
) -> ImportanceResult:
    """Margin of the given label, averaged over a gradient-descent trajectory.

    ``margin_t(i) = z_{y_i} − max_{j ≠ y_i} z_j`` measured at every epoch t
    of full-batch gradient descent on the softmax loss; the importance value
    is the mean over epochs. Low (negative) AUM = probable label error.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ValueError("X and y must have equal length")
    if n_epochs < 1:
        raise ValueError("n_epochs must be >= 1")
    classes, index = np.unique(y, return_inverse=True)
    n, d = X.shape
    k = len(classes)
    if k < 2:
        return ImportanceResult(method="aum", values=np.zeros(n))
    rng = np.random.default_rng(seed)
    W = rng.normal(scale=0.01, size=(k, d))
    b = np.zeros(k)
    margin_sum = np.zeros(n)
    rows = np.arange(n)
    for __ in range(n_epochs):
        logits = X @ W.T + b
        # Record the assigned-label margin *before* this epoch's update.
        assigned = logits[rows, index]
        masked = logits.copy()
        masked[rows, index] = -np.inf
        margin_sum += assigned - masked.max(axis=1)
        probs = softmax(logits, axis=1)
        delta = probs
        delta[rows, index] -= 1.0
        grad_w = delta.T @ X / n + l2 * W
        grad_b = delta.mean(axis=0)
        W -= learning_rate * grad_w
        b -= learning_rate * grad_b
    values = margin_sum / n_epochs
    return ImportanceResult(
        method="aum",
        values=values,
        extras={"n_epochs": n_epochs, "learning_rate": learning_rate},
    )
