"""Certified robustness to data poisoning via partition aggregation.

Implements the intrinsic certified robustness of ensembles (Jia et al.
[32]; deep partition aggregation): train ``k`` base models on *disjoint*
hash-partitions of the training data and predict by majority vote. A
poisoned (inserted, deleted, or modified) training tuple can influence at
most one partition, so a prediction whose vote margin is ``m`` is provably
unchanged under any attack touching at most ``⌊(m − 1[tie]) / 2⌋`` tuples.

This is the "Learn" pillar's answer to errors that are *adversarial* rather
than random — no cleaning, no detection, just a certificate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..learn.base import Estimator, clone

__all__ = ["PartitionEnsemble", "CertifiedPrediction"]


@dataclass
class CertifiedPrediction:
    """A prediction with its poisoning-robustness certificate."""

    label: Any
    certified_radius: int  # prediction provably unchanged by ≤ radius poisons
    votes: dict = field(default_factory=dict)

    def is_certified_at(self, budget: int) -> bool:
        return self.certified_radius >= budget


class PartitionEnsemble(Estimator):
    """Majority vote over models trained on disjoint data partitions.

    Parameters
    ----------
    base_model:
        Unfitted prototype, cloned per partition.
    n_partitions:
        Ensemble size ``k``. Larger k = larger certifiable radii but weaker
        base models (each sees ``n/k`` examples) — the accuracy/robustness
        trade-off the ablation bench sweeps.
    seed:
        Controls the hash-partition assignment. Assignment must depend only
        on the tuple (not its index) in real deployments; here a seeded
        permutation models that, since our tuples have stable row ids.
    """

    def __init__(self, base_model: Estimator, n_partitions: int = 10, seed: int = 0) -> None:
        if n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        self.base_model = base_model
        self.n_partitions = int(n_partitions)
        self.seed = int(seed)

    def fit(self, X: Any, y: Any) -> "PartitionEnsemble":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if len(X) != len(y):
            raise ValueError("X and y must have equal length")
        if len(X) < self.n_partitions:
            raise ValueError("fewer training points than partitions")
        rng = np.random.default_rng(self.seed)
        assignment = rng.permutation(len(y)) % self.n_partitions
        self.classes_ = np.unique(y)
        self.models_ = []
        self.partition_sizes_ = []
        for p in range(self.n_partitions):
            members = assignment == p
            self.partition_sizes_.append(int(members.sum()))
            ys = y[members]
            if len(np.unique(ys)) < 2:
                # Degenerate partition: constant model on its only class.
                self.models_.append(("constant", ys[0] if len(ys) else self.classes_[0]))
            else:
                self.models_.append(
                    ("model", clone(self.base_model).fit(X[members], ys))
                )
        return self

    def _votes(self, X: np.ndarray) -> np.ndarray:
        """(n_test, n_classes) vote counts."""
        X = np.asarray(X, dtype=float)
        index = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        votes = np.zeros((len(X), len(self.classes_)), dtype=np.int64)
        for kind, model in self.models_:
            if kind == "constant":
                votes[:, index[model]] += 1
            else:
                predictions = model.predict(X)
                for i, label in enumerate(predictions.tolist()):
                    votes[i, index.get(label, 0)] += 1
        return votes

    def predict(self, X: Any) -> np.ndarray:
        self._require_fitted()
        votes = self._votes(np.asarray(X, dtype=float))
        return self.classes_[np.argmax(votes, axis=1)]

    def certified_predict(self, X: Any) -> list[CertifiedPrediction]:
        """Predictions with per-point certified poisoning radii.

        With winner votes ``v1`` and runner-up ``v2`` (ties broken toward
        the runner-up, i.e. adversarially), each poisoned tuple can move at
        most one vote, so the radius is ``⌊(v1 − v2 − tie) / 2⌋`` where
        ``tie`` is 1 when the runner-up wins ties against the winner.
        """
        self._require_fitted()
        votes = self._votes(np.asarray(X, dtype=float))
        out = []
        for row in votes:
            order = np.argsort(row, kind="stable")[::-1]
            winner, runner = int(order[0]), int(order[1]) if len(order) > 1 else int(order[0])
            v1, v2 = int(row[winner]), int(row[runner]) if len(order) > 1 else 0
            # Adversarial tie-breaking: a class with an alphabetically (by
            # class order) smaller index wins ties; be conservative and
            # always charge the tie to the winner.
            radius = max((v1 - v2 - 1) // 2, 0)
            out.append(
                CertifiedPrediction(
                    label=self.classes_[winner],
                    certified_radius=radius,
                    votes={
                        str(cls): int(v) for cls, v in zip(self.classes_.tolist(), row)
                    },
                )
            )
        return out

    def certified_accuracy(self, X: Any, y: Any, budget: int) -> float:
        """Fraction of test points both correct and certified at ``budget``."""
        y = np.asarray(y)
        certified = self.certified_predict(X)
        hits = [
            cp.label == label and cp.is_certified_at(budget)
            for cp, label in zip(certified, y.tolist())
        ]
        return float(np.mean(hits))
