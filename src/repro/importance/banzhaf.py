"""Data Banzhaf importance (Wang & Jia [80]).

The Banzhaf value replaces the Shapley value's permutation weighting with a
uniform distribution over subsets, which provably maximises robustness of the
induced *ranking* to noise in the utility evaluations — the property that
matters for data debugging, where only the ranking is consumed.
"""

from __future__ import annotations

import numpy as np

from .base import ImportanceResult
from .engine import DEFAULT_CACHE_SIZE, ValuationEngine
from .utility import Utility

__all__ = ["banzhaf_mc"]


def banzhaf_mc(
    utility: Utility | None,
    n_samples: int = 200,
    seed: int = 0,
    n_workers: int = 1,
    cache_size: int = DEFAULT_CACHE_SIZE,
    checkpoint=None,
    resume: bool = False,
    engine: ValuationEngine | None = None,
) -> ImportanceResult:
    """Maximum-sample-reuse Monte-Carlo Banzhaf estimator.

    Draws ``n_samples`` subsets by independent fair coin flips per point and
    reuses *every* sample for *every* point: φ_i is estimated as the mean
    utility of sampled subsets containing i minus the mean utility of those
    not containing i (the MSR estimator of Wang & Jia).

    Subset evaluations run on the shared valuation engine: duplicate
    subsets (and subsets already seen by other estimators sharing the
    ``engine``) are answered from the memo, and cache misses fan out over
    ``n_workers`` processes. Values are independent of ``n_workers``.

    With ``checkpoint=`` set (or a shared ``engine`` configured with one),
    evaluated subset utilities are snapshotted in waves; ``resume=True``
    reloads them into the memo so a killed run only pays for subsets not
    yet evaluated — final values are bit-identical either way.
    """
    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    if engine is None:
        if utility is None:
            raise ValueError("either utility or engine must be provided")
        engine = ValuationEngine(
            utility,
            n_workers=n_workers,
            cache_size=cache_size,
            checkpoint=checkpoint,
            resume=resume,
        )
    rng = np.random.default_rng(seed)
    n = engine.n_train
    membership = rng.random((n_samples, n)) < 0.5
    scores = engine.evaluate_many(
        [np.flatnonzero(membership[s]) for s in range(n_samples)],
        checkpoint_config=(
            {"estimator": "banzhaf_mc", "n_train": n, "seed": seed, "n_samples": n_samples}
            if engine.checkpoint is not None
            else None
        ),
    )
    values = np.zeros(n)
    for i in range(n):
        with_i = membership[:, i]
        n_with = int(with_i.sum())
        if n_with == 0 or n_with == n_samples:
            values[i] = 0.0  # no contrast observed for this point
            continue
        values[i] = scores[with_i].mean() - scores[~with_i].mean()
    return ImportanceResult(
        method="banzhaf_mc",
        values=values,
        extras={"n_samples": n_samples, **engine.stats()},
    )
