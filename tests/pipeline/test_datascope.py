"""Tests for Datascope: Shapley importance over pipelines."""

import numpy as np
import pytest

from repro.errors import inject_label_errors
from repro.pipeline import datascope_importance, execute
from tests.pipeline.conftest import build_letters_pipeline


@pytest.fixture()
def train_and_valid_results(sources, valid_sources):
    __, sink = build_letters_pipeline()
    train_result = execute(sink, sources, fit=True)
    valid_result = execute(sink, valid_sources, fit=False)
    return train_result, valid_result


class TestDatascope:
    def test_importance_lands_on_source_rows(self, train_and_valid_results, sources):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        train = sources["train_df"]
        aligned = importance.for_frame(train)
        assert aligned.shape == (train.num_rows,)
        # Only rows surviving the pipeline can carry importance.
        survivors = set(train_result.provenance.source_row_ids("train_df").tolist())
        for rid, value in zip(train.row_ids.tolist(), aligned.tolist()):
            if rid not in survivors:
                assert value == 0.0

    def test_efficiency_preserved_through_aggregation(self, train_and_valid_results):
        """Summing per-source values must equal summing encoded-row values
        (the push-back only regroups, never loses mass)."""
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        encoded = importance.extras["encoded"]
        assert sum(importance.by_row_id.values()) == pytest.approx(
            encoded.values.sum(), abs=1e-9
        )

    def test_source_autodetected(self, train_and_valid_results):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(train_result, valid_result.X, valid_result.y)
        assert importance.source == "train_df"

    def test_lowest_skips_filtered_rows(self, train_and_valid_results, sources):
        train_result, valid_result = train_and_valid_results
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        train = sources["train_df"]
        lowest = importance.lowest(train, 10)
        survivors = set(train_result.provenance.source_row_ids("train_df").tolist())
        for position in lowest:
            assert int(train.row_ids[position]) in survivors

    def test_detects_label_errors_in_source_data(self, sources, valid_sources):
        """End-to-end Figure 3 claim: errors injected in the *source* table
        are found via importance computed on the *encoded* output."""
        __, sink = build_letters_pipeline()
        dirty, report = inject_label_errors(
            sources["train_df"], "sentiment", fraction=0.15, seed=5
        )
        dirty_sources = dict(sources, train_df=dirty)
        train_result = execute(sink, dirty_sources, fit=True)
        valid_result = execute(sink, valid_sources, fit=False)
        importance = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df"
        )
        # Score detection among rows that actually flow through the pipeline.
        survivors = set(train_result.provenance.source_row_ids("train_df").tolist())
        corrupted_survivors = [r for r in report.row_ids.tolist() if r in survivors]
        flagged = dirty.row_ids[importance.lowest(dirty, len(corrupted_survivors))]
        hits = len(set(flagged.tolist()) & set(corrupted_survivors))
        base_rate = len(corrupted_survivors) / max(len(survivors), 1)
        assert hits / max(len(corrupted_survivors), 1) > 2 * base_rate

    def test_shapley_mc_method_uses_engine(self, train_and_valid_results):
        """Datascope over a real downstream model via the valuation engine,
        with worker-count-invariant, attribution-preserving results."""
        train_result, valid_result = train_and_valid_results
        serial = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            method="shapley_mc", n_permutations=4, seed=0,
        )
        fanned = datascope_importance(
            train_result, valid_result.X, valid_result.y, source="train_df",
            method="shapley_mc", n_permutations=4, seed=0, n_workers=2,
        )
        assert serial.method == "datascope_shapley_mc"
        assert serial.by_row_id == fanned.by_row_id
        encoded = serial.extras["encoded"]
        assert encoded.extras["n_evaluations"] > 0
        assert sum(serial.by_row_id.values()) == pytest.approx(
            encoded.values.sum(), abs=1e-9
        )

    def test_unknown_method_raises(self, train_and_valid_results):
        train_result, valid_result = train_and_valid_results
        with pytest.raises(ValueError):
            datascope_importance(
                train_result, valid_result.X, valid_result.y, method="bogus"
            )

    def test_unencoded_result_raises(self, sources):
        from repro.pipeline import PipelinePlan

        plan = PipelinePlan()
        node = plan.source("train_df").filter(lambda df: df["age"] > 0, "adult")
        result = execute(node, {"train_df": sources["train_df"]})
        with pytest.raises(ValueError):
            datascope_importance(result, np.zeros((2, 2)), np.zeros(2))
