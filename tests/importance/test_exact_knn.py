"""Differential tests for the exact PTIME KNN-Shapley path.

Exact values give an analytic ground truth, so these tests pin the new
path against two independent oracles:

- subset enumeration over the *same* grouped game (≤ 12 players), built
  on :func:`repro.importance.grouped_knn_utility` — the definitional
  Shapley value, no approximation anywhere; and
- high-budget Monte-Carlo Shapley over the identical game, which must
  agree within 3 standard errors.

Both are run for all four canonical pipeline shapes: identity, map
(filters drop rows), join (driving-table attribution), and fork
(side-table attribution with fan-out).
"""

from math import comb

import numpy as np
import pytest

from repro.frame import DataFrame
from repro.importance import (
    exact_knn_shapley,
    grouped_knn_utility,
    knn_shapley_brute_force,
    shapley_mc,
)
from repro.importance.utility import SubsetUtility
from repro.learn import ColumnTransformer, StandardScaler
from repro.pipeline import PipelinePlan, compile_pipeline, datascope_importance, execute


def grouped_brute_force(x, y, xv, yv, groups, k=1):
    """Definitional Shapley of the grouped KNN game by subset enumeration."""
    m = len(groups)
    assert m <= 12, "brute force infeasible"
    cache = {}

    def value(bits):
        if bits not in cache:
            subset = [p for p in range(m) if bits >> p & 1]
            cache[bits] = grouped_knn_utility(subset, groups, x, y, xv, yv, k)
        return cache[bits]

    values = np.zeros(m)
    for j in range(m):
        for bits in range(2**m):
            if bits >> j & 1:
                continue
            size = bin(bits).count("1")
            weight = 1.0 / (m * comb(m - 1, size))
            values[j] += weight * (value(bits | (1 << j)) - value(bits))
    return values


def make_game(n, seed, n_classes=2, n_valid=6):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, 2))
    y = rng.integers(0, n_classes, size=n)
    xv = rng.normal(size=(n_valid, 2))
    yv = rng.integers(0, n_classes, size=n_valid)
    return x, y, xv, yv


NUMERIC_ENCODER = lambda: ColumnTransformer([(StandardScaler(), ["a", "b"])])  # noqa: E731


class TestDifferentialAgainstBruteForce:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_identity_groups_match_per_row_brute_force(self, k):
        x, y, xv, yv = make_game(8, seed=k)
        groups = [np.array([i]) for i in range(8)]
        exact = exact_knn_shapley(x, y, xv, yv, groups, k=k)
        brute = knn_shapley_brute_force(x, y, xv, yv, k=k)
        np.testing.assert_allclose(exact.values, brute.values, atol=1e-8)
        assert exact.stop_reason == "exact"
        assert exact.converged
        assert np.all(exact.stderr == 0.0)

    @pytest.mark.parametrize("k", [1, 2])
    def test_map_form_with_null_players(self, k):
        # Filtered-out source rows are null players: exactly zero, and the
        # surviving singleton groups match the grouped brute force.
        x, y, xv, yv = make_game(9, seed=11)
        groups = [
            np.array([0]), np.array([], dtype=np.int64), np.array([2]),
            np.array([4]), np.array([], dtype=np.int64), np.array([7]),
        ]
        exact = exact_knn_shapley(x, y, xv, yv, groups, k=k)
        brute = grouped_brute_force(x, y, xv, yv, groups, k=k)
        np.testing.assert_allclose(exact.values, brute, atol=1e-8)
        assert exact.values[1] == 0.0 and exact.values[4] == 0.0
        assert exact.census["form"] == "map"
        assert exact.census["n_null_players"] == 2

    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_fork_form_matches_grouped_brute_force(self, seed):
        x, y, xv, yv = make_game(11, seed=seed, n_classes=3)
        groups = [
            np.array([0, 1, 2]), np.array([3]), np.array([4, 5]),
            np.array([], dtype=np.int64), np.array([6, 7, 8, 9, 10]),
        ]
        exact = exact_knn_shapley(x, y, xv, yv, groups, k=1)
        brute = grouped_brute_force(x, y, xv, yv, groups, k=1)
        np.testing.assert_allclose(exact.values, brute, atol=1e-8)
        assert exact.census["form"] == "fork"

    def test_fork_form_rejects_k_above_one(self):
        x, y, xv, yv = make_game(4, seed=0)
        groups = [np.array([0, 1]), np.array([2, 3])]
        with pytest.raises(ValueError, match="fork.*k=2"):
            exact_knn_shapley(x, y, xv, yv, groups, k=2)

    def test_overlapping_groups_rejected(self):
        x, y, xv, yv = make_game(4, seed=0)
        with pytest.raises(ValueError, match="overlap"):
            exact_knn_shapley(x, y, xv, yv, [np.array([0, 1]), np.array([1])], k=1)

    def test_out_of_range_groups_rejected(self):
        x, y, xv, yv = make_game(4, seed=0)
        with pytest.raises(ValueError, match="outside"):
            exact_knn_shapley(x, y, xv, yv, [np.array([0, 9])], k=1)


# ---------------------------------------------------------------------------
# End-to-end through the compiler, one test per canonical pipeline shape.
# ---------------------------------------------------------------------------
def _train_frame(n, seed, keys=None):
    rng = np.random.default_rng(seed)
    data = {
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "y": rng.integers(0, 2, size=n),
    }
    if keys is not None:
        data["key"] = keys
    return DataFrame(data, row_ids=np.arange(100, 100 + n))


def _exact_by_row(result, valid_x, valid_y, source, k=1):
    imp = datascope_importance(
        result, valid_x, valid_y, source=source, k=k, method="exact_knn"
    )
    compiled = imp.extras["compiled"]
    values = np.asarray(
        [imp.by_row_id[int(rid)] for rid in compiled.player_row_ids]
    )
    return imp, compiled, values


class TestPipelineShapes:
    def test_identity_pipeline(self):
        frame = _train_frame(9, seed=1)
        plan = PipelinePlan()
        sink = plan.source("t").encode(NUMERIC_ENCODER(), label_column="y")
        result = execute(sink, {"t": frame})
        rng = np.random.default_rng(9)
        vx, vy = rng.normal(size=(5, 2)), rng.integers(0, 2, size=5)
        imp, compiled, values = _exact_by_row(result, vx, vy, "t", k=2)
        assert compiled.form == "map"
        brute = grouped_brute_force(result.X, result.y, vx, vy, compiled.groups, k=2)
        np.testing.assert_allclose(values, brute, atol=1e-8)

    def test_map_pipeline_with_filter(self):
        frame = _train_frame(12, seed=2)
        plan = PipelinePlan()
        sink = (
            plan.source("t")
            .filter(lambda df: df["a"] > -0.5, "a > -0.5")
            .with_column("ab", lambda df: df["a"] * df["b"], "ab")
            .encode(NUMERIC_ENCODER(), label_column="y")
        )
        result = execute(sink, {"t": frame})
        assert 0 < result.n_rows < 12  # the filter actually dropped rows
        rng = np.random.default_rng(5)
        vx, vy = rng.normal(size=(6, 2)), rng.integers(0, 2, size=6)
        imp, compiled, values = _exact_by_row(result, vx, vy, "t", k=1)
        assert compiled.form == "map"
        brute = grouped_brute_force(result.X, result.y, vx, vy, compiled.groups, k=1)
        np.testing.assert_allclose(values, brute, atol=1e-8)
        # Filtered-out source rows carry no value at all.
        survivors = set(compiled.player_row_ids.tolist())
        for rid in frame.row_ids.tolist():
            if rid not in survivors:
                assert rid not in imp.by_row_id

    def test_join_pipeline_driving_table(self):
        # Left-deep join: train drives, side is 1:1 per output row.
        keys = ["k%d" % (i % 4) for i in range(10)]
        train = _train_frame(10, seed=3, keys=keys)
        side = DataFrame(
            {"key": ["k0", "k1", "k2", "k3"], "w": [0.1, -0.2, 0.3, 0.4]},
            row_ids=[0, 1, 2, 3],
        )
        plan = PipelinePlan()
        sink = (
            plan.source("train_df")
            .join(plan.source("side_df"), on="key")
            .encode(NUMERIC_ENCODER(), label_column="y")
        )
        result = execute(sink, {"train_df": train, "side_df": side})
        rng = np.random.default_rng(4)
        vx, vy = rng.normal(size=(5, 2)), rng.integers(0, 2, size=5)
        imp, compiled, values = _exact_by_row(result, vx, vy, "train_df", k=3)
        assert compiled.form == "map"
        assert compiled.node_classes[sink.inputs[0].id] == "join"
        brute = grouped_brute_force(result.X, result.y, vx, vy, compiled.groups, k=3)
        np.testing.assert_allclose(values, brute, atol=1e-8)

    def test_fork_pipeline_side_table_attribution(self):
        # Attributing to the side table: one side row feeds many outputs.
        keys = ["k%d" % (i % 3) for i in range(9)]
        train = _train_frame(9, seed=6, keys=keys)
        side = DataFrame(
            {"key": ["k0", "k1", "k2"], "w": [0.5, -0.5, 0.0]},
            row_ids=[50, 51, 52],
        )
        plan = PipelinePlan()
        join = plan.source("train_df").join(plan.source("side_df"), on="key")
        sink = join.encode(NUMERIC_ENCODER(), label_column="y")
        result = execute(sink, {"train_df": train, "side_df": side})
        rng = np.random.default_rng(8)
        vx, vy = rng.normal(size=(6, 2)), rng.integers(0, 2, size=6)
        imp, compiled, values = _exact_by_row(result, vx, vy, "side_df", k=1)
        assert compiled.form == "fork"
        assert compiled.node_classes[join.id] == "fork"
        assert all(len(g) == 3 for g in compiled.groups)
        brute = grouped_brute_force(result.X, result.y, vx, vy, compiled.groups, k=1)
        np.testing.assert_allclose(values, brute, atol=1e-8)


class TestAgainstMonteCarlo:
    @pytest.mark.parametrize(
        "shape,groups_of",
        [
            ("map", lambda: [np.array([i]) for i in range(7)]),
            (
                "fork",
                lambda: [
                    np.array([0, 1]), np.array([2]), np.array([3, 4, 5]),
                    np.array([6]),
                ],
            ),
        ],
    )
    def test_exact_within_three_stderr_of_high_budget_mc(self, shape, groups_of):
        """Monte-Carlo over the *same* grouped game must agree within 3σ."""
        x, y, xv, yv = make_game(7, seed=13)
        groups = groups_of()
        m = len(groups)
        utility = SubsetUtility(
            lambda idx: grouped_knn_utility(idx, groups, x, y, xv, yv, k=1), m
        )
        mc = shapley_mc(utility, n_permutations=600, seed=0)
        exact = exact_knn_shapley(x, y, xv, yv, groups, k=1)
        stderr = np.asarray(mc.extras["stderr"])
        assert np.all(
            np.abs(exact.values - mc.values) <= 3.0 * stderr + 1e-8
        ), (exact.values, mc.values, stderr)

    def test_exact_within_three_stderr_on_a_small_pipeline(self):
        """End to end: compile a join pipeline, then MC the compiled game."""
        keys = ["k%d" % (i % 3) for i in range(8)]
        train = _train_frame(8, seed=21, keys=keys)
        side = DataFrame(
            {"key": ["k0", "k1", "k2"], "w": [1.0, 2.0, 3.0]}, row_ids=[0, 1, 2]
        )
        plan = PipelinePlan()
        sink = (
            plan.source("train_df")
            .join(plan.source("side_df"), on="key")
            .filter(lambda df: df["a"] > -1.5, "a > -1.5")
            .encode(NUMERIC_ENCODER(), label_column="y")
        )
        result = execute(sink, {"train_df": train, "side_df": side})
        rng = np.random.default_rng(2)
        vx, vy = rng.normal(size=(5, 2)), rng.integers(0, 2, size=5)
        imp, compiled, values = _exact_by_row(result, vx, vy, "train_df", k=1)
        utility = SubsetUtility(
            lambda idx: grouped_knn_utility(
                idx, compiled.groups, result.X, result.y, vx, vy, k=1
            ),
            compiled.n_players,
        )
        mc = shapley_mc(utility, n_permutations=1500, seed=1)
        stderr = np.asarray(mc.extras["stderr"])
        assert np.all(np.abs(values - mc.values) <= 3.0 * stderr + 1e-8)
