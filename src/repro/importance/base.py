"""Common result container for data-importance methods."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["ImportanceResult"]


@dataclass
class ImportanceResult:
    """Per-training-point importance scores.

    The sign convention is uniform across methods: **higher = more
    beneficial** to downstream quality, so data errors concentrate at the
    *bottom* of the ranking and ``lowest(k)`` is the "inspect these first"
    list of the hands-on session.
    """

    method: str
    values: np.ndarray
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.values = np.asarray(self.values, dtype=float)

    def __len__(self) -> int:
        return len(self.values)

    def lowest(self, k: int) -> np.ndarray:
        """Positions of the k least beneficial (most suspicious) points."""
        k = min(k, len(self.values))
        return np.argsort(self.values, kind="stable")[:k]

    def highest(self, k: int) -> np.ndarray:
        """Positions of the k most beneficial points."""
        k = min(k, len(self.values))
        return np.argsort(self.values, kind="stable")[::-1][:k]

    def rank(self) -> np.ndarray:
        """Rank of each point (0 = least beneficial)."""
        order = np.argsort(self.values, kind="stable")
        ranks = np.empty(len(order), dtype=np.int64)
        ranks[order] = np.arange(len(order))
        return ranks

    def detection_precision_at_k(self, error_mask: Any, k: int) -> float:
        """Fraction of the bottom-k that are actual errors (needs ground truth)."""
        error_mask = np.asarray(error_mask, dtype=bool)
        if len(error_mask) != len(self.values):
            raise ValueError("error mask length mismatch")
        flagged = self.lowest(k)
        return float(np.mean(error_mask[flagged])) if k else 0.0

    def detection_recall_at_k(self, error_mask: Any, k: int) -> float:
        """Fraction of all errors found in the bottom-k."""
        error_mask = np.asarray(error_mask, dtype=bool)
        total = error_mask.sum()
        if total == 0:
            return 0.0
        flagged = self.lowest(k)
        return float(error_mask[flagged].sum() / total)
