"""Property-based soundness tests for interval arithmetic.

The single invariant that matters: if ``x ∈ X`` and ``y ∈ Y`` then
``op(x, y) ∈ op(X, Y)`` for every operation. Hypothesis drives the check by
sampling concrete members of random intervals.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty import Interval

floats = st.floats(min_value=-100, max_value=100, allow_nan=False)


@st.composite
def interval_with_member(draw, size=3):
    """An interval vector together with a concrete member point."""
    lo = np.asarray(draw(st.lists(floats, min_size=size, max_size=size)))
    width = np.asarray(
        draw(st.lists(st.floats(min_value=0, max_value=50, allow_nan=False),
                      min_size=size, max_size=size))
    )
    hi = lo + width
    t = np.asarray(draw(st.lists(st.floats(min_value=0, max_value=1, allow_nan=False),
                                 min_size=size, max_size=size)))
    member = lo + t * width
    return Interval(lo, hi), member


class TestConstruction:
    def test_exact_has_zero_width(self):
        iv = Interval.exact([1.0, 2.0])
        assert iv.is_degenerate()

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Interval([1.0], [0.0])

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Interval([1.0], [1.0, 2.0])

    def test_from_center_radius(self):
        iv = Interval.from_center_radius([0.0], [2.0])
        assert iv.lo[0] == -2.0 and iv.hi[0] == 2.0

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            Interval.from_center_radius([0.0], [-1.0])

    def test_center_and_width(self):
        iv = Interval([0.0], [4.0])
        assert iv.center[0] == 2.0
        assert iv.width[0] == 4.0
        assert iv.radius[0] == 2.0


class TestSoundness:
    @given(a=interval_with_member(), b=interval_with_member())
    @settings(max_examples=80, deadline=None)
    def test_add_sound(self, a, b):
        (A, x), (B, y) = a, b
        assert (A + B).contains(x + y)

    @given(a=interval_with_member(), b=interval_with_member())
    @settings(max_examples=80, deadline=None)
    def test_sub_sound(self, a, b):
        (A, x), (B, y) = a, b
        assert (A - B).contains(x - y)

    @given(a=interval_with_member(), b=interval_with_member())
    @settings(max_examples=80, deadline=None)
    def test_mul_sound(self, a, b):
        (A, x), (B, y) = a, b
        assert (A * B).contains(x * y, atol=1e-6)

    @given(a=interval_with_member())
    @settings(max_examples=80, deadline=None)
    def test_square_sound(self, a):
        A, x = a
        assert A.square().contains(x * x, atol=1e-6)

    @given(a=interval_with_member())
    @settings(max_examples=80, deadline=None)
    def test_abs_sound(self, a):
        A, x = a
        assert A.abs().contains(np.abs(x), atol=1e-9)

    @given(a=interval_with_member())
    @settings(max_examples=80, deadline=None)
    def test_neg_sound(self, a):
        A, x = a
        assert (-A).contains(-x)

    @given(a=interval_with_member())
    @settings(max_examples=60, deadline=None)
    def test_sum_and_mean_sound(self, a):
        A, x = a
        assert A.sum().contains(np.asarray(x.sum()), atol=1e-9)
        assert A.mean().contains(np.asarray(x.mean()), atol=1e-9)

    @given(a=interval_with_member(), scalar=floats)
    @settings(max_examples=60, deadline=None)
    def test_scalar_ops_sound(self, a, scalar):
        A, x = a
        assert (A + scalar).contains(x + scalar, atol=1e-9)
        assert (A * scalar).contains(x * scalar, atol=1e-6)
        assert (scalar - A).contains(scalar - x, atol=1e-9)


class TestMatmulSoundness:
    @pytest.mark.parametrize("seed", range(5))
    def test_interval_matmul_contains_all_samples(self, seed):
        rng = np.random.default_rng(seed)
        lo_a = rng.normal(size=(3, 4))
        A = Interval(lo_a, lo_a + rng.random((3, 4)))
        lo_b = rng.normal(size=(4, 2))
        B = Interval(lo_b, lo_b + rng.random((4, 2)))
        product = A @ B
        for __ in range(20):
            a = A.lo + rng.random((3, 4)) * A.width
            b = B.lo + rng.random((4, 2)) * B.width
            assert product.contains(a @ b, atol=1e-8)

    def test_matmul_with_concrete_right(self, rng):
        lo = rng.normal(size=(2, 3))
        A = Interval(lo, lo + 1.0)
        M = rng.normal(size=(3, 2))
        product = A @ M
        sample = (A.lo + 0.3 * A.width) @ M
        assert product.contains(sample, atol=1e-9)

    def test_rmatmul(self, rng):
        lo = rng.normal(size=(3, 2))
        B = Interval(lo, lo + 1.0)
        M = rng.normal(size=(2, 3))
        product = M @ B
        assert product.contains(M @ (B.lo + 0.7 * B.width), atol=1e-9)


class TestTightness:
    def test_exact_inputs_give_exact_outputs(self):
        A = Interval.exact(np.asarray([[1.0, 2.0]]))
        B = Interval.exact(np.asarray([[3.0], [4.0]]))
        product = A @ B
        assert product.is_degenerate(atol=1e-12)
        assert product.lo[0, 0] == pytest.approx(11.0)

    def test_square_tight_at_zero_straddle(self):
        iv = Interval([-2.0], [3.0]).square()
        assert iv.lo[0] == 0.0
        assert iv.hi[0] == 9.0

    def test_clip(self):
        iv = Interval([-5.0], [5.0]).clip(0.0, 1.0)
        assert iv.lo[0] == 0.0 and iv.hi[0] == 1.0

    def test_take_and_getitem(self):
        iv = Interval([0.0, 1.0, 2.0], [1.0, 2.0, 3.0])
        assert iv.take([2]).lo[0] == 2.0
        assert iv[1].lo == 1.0

    def test_transpose(self):
        iv = Interval(np.zeros((2, 3)), np.ones((2, 3)))
        assert iv.T.shape == (3, 2)
