"""Unit tests for repro.frame.Column."""

import numpy as np
import pytest

from repro.frame import Column


class TestConstruction:
    def test_from_list_int(self):
        col = Column([1, 2, 3])
        assert col.dtype_kind == "int"
        assert len(col) == 3
        assert col.null_count() == 0

    def test_from_list_with_none_numeric(self):
        col = Column([1.0, None, 3.0])
        assert col.null_count() == 1
        assert col.to_list() == [1.0, None, 3.0]

    def test_from_list_with_none_string(self):
        col = Column(["a", None, "c"])
        assert col.dtype_kind == "string"
        assert col.to_list() == ["a", None, "c"]

    def test_nan_is_missing(self):
        col = Column(np.asarray([1.0, np.nan, 3.0]))
        assert col.null_count() == 1

    def test_explicit_mask(self):
        col = Column([1, 2, 3], mask=[False, True, False])
        assert col.to_list() == [1, None, 3]

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            Column([1, 2, 3], mask=[True])

    def test_2d_input_raises(self):
        with pytest.raises(ValueError):
            Column(np.zeros((2, 2)))

    def test_bool_column(self):
        col = Column([True, False, True])
        assert col.dtype_kind == "bool"
        assert col.is_numeric

    def test_empty_object_array_becomes_string(self):
        col = Column(np.asarray([], dtype=object))
        assert col.dtype_kind == "string"


class TestMissingHandling:
    def test_fillna_numeric(self):
        col = Column([1.0, None, 3.0]).fillna(9.0)
        assert col.to_list() == [1.0, 9.0, 3.0]
        assert col.null_count() == 0

    def test_fillna_string(self):
        col = Column(["a", None]).fillna("z")
        assert col.to_list() == ["a", "z"]

    def test_fillna_int_with_float_upcasts(self):
        col = Column([1, 2, 3], mask=[False, True, False]).fillna(2.5)
        assert col.dtype_kind == "float"
        assert col.to_list()[1] == 2.5

    def test_set_missing(self):
        col = Column([1.0, 2.0, 3.0]).set_missing([1])
        assert col.to_list() == [1.0, None, 3.0]

    def test_dropna_indices(self):
        col = Column([1.0, None, 3.0])
        assert col.dropna_indices().tolist() == [0, 2]

    def test_isnull_notnull(self):
        col = Column([1.0, None])
        assert col.isnull().tolist() == [False, True]
        assert col.notnull().tolist() == [True, False]


class TestSetValues:
    def test_set_values_numeric(self):
        col = Column([1.0, 2.0, 3.0]).set_values([0, 2], [9.0, 8.0])
        assert col.to_list() == [9.0, 2.0, 8.0]

    def test_set_values_clears_mask(self):
        col = Column([1.0, None]).set_values([1], [5.0])
        assert col.null_count() == 0

    def test_set_values_string_widens(self):
        col = Column(["ab", "cd"]).set_values([0], ["a much longer string"])
        assert col.to_list()[0] == "a much longer string"

    def test_set_values_int_with_float(self):
        col = Column([1, 2]).set_values([0], [1.5])
        assert col.dtype_kind == "float"
        assert col.to_list() == [1.5, 2.0]


class TestComparisons:
    def test_eq_scalar(self):
        col = Column(["x", "y", None])
        assert (col == "x").tolist() == [True, False, False]

    def test_missing_compares_false(self):
        col = Column([1.0, None, 3.0])
        assert (col > 0).tolist() == [True, False, True]

    def test_lt_column(self):
        a = Column([1, 5])
        b = Column([2, 3])
        assert (a < b).tolist() == [True, False]

    def test_isin(self):
        col = Column(["a", "b", None, "c"])
        assert col.isin({"a", "c"}).tolist() == [True, False, False, True]

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column([1]))


class TestArithmetic:
    def test_add_scalar(self):
        assert (Column([1.0, 2.0]) + 1).to_list() == [2.0, 3.0]

    def test_add_propagates_missing(self):
        out = Column([1.0, None]) + Column([1.0, 1.0])
        assert out.null_count() == 1

    def test_mul_div(self):
        out = (Column([2.0, 4.0]) * 3) / 2
        assert out.to_list() == [3.0, 6.0]


class TestReductions:
    def test_mean_ignores_missing(self):
        assert Column([1.0, None, 3.0]).mean() == 2.0

    def test_sum(self):
        assert Column([1.0, None, 3.0]).sum() == 4.0

    def test_min_max_string(self):
        col = Column(["b", "a", None])
        assert col.min() == "a"
        assert col.max() == "b"

    def test_median(self):
        assert Column([1.0, 2.0, 9.0]).median() == 2.0

    def test_mode(self):
        assert Column(["a", "b", "a", None]).mode() == "a"

    def test_mode_all_missing_is_none(self):
        assert Column([None, None]).mode() is None

    def test_unique_sorted(self):
        assert Column([3, 1, 2, 1]).unique() == [1, 2, 3]

    def test_value_counts(self):
        assert Column(["a", "b", "a"]).value_counts() == {"a": 2, "b": 1}

    def test_mean_all_missing_is_nan(self):
        assert np.isnan(Column([None, None]).mean())


class TestSelection:
    def test_take(self):
        col = Column([10, 20, 30]).take([2, 0])
        assert col.to_list() == [30, 10]

    def test_filter(self):
        col = Column([10, 20, 30]).filter([True, False, True])
        assert col.to_list() == [10, 30]

    def test_concat(self):
        out = Column.concat([Column([1.0, None]), Column([3.0])])
        assert out.to_list() == [1.0, None, 3.0]

    def test_concat_mixed_kinds_raises(self):
        with pytest.raises(TypeError):
            Column.concat([Column(["a"]), Column([1])])

    def test_concat_empty_raises(self):
        with pytest.raises(ValueError):
            Column.concat([])


class TestMap:
    def test_map_numeric(self):
        out = Column([1, 2]).map(lambda v: v * 10)
        assert out.to_list() == [10.0, 20.0]

    def test_map_string(self):
        out = Column(["a", "b"]).map(str.upper)
        assert out.to_list() == ["A", "B"]

    def test_map_preserves_missing(self):
        out = Column([1.0, None]).map(lambda v: v + 1)
        assert out.to_list() == [2.0, None]

    def test_map_to_bool(self):
        out = Column(["yes", "no"]).map(lambda v: v == "yes")
        assert out.dtype_kind == "bool"
        assert out.to_list() == [True, False]
