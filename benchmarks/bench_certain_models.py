"""Experiment T-certain — certain / approximately certain models.

Section 2.3 covers Zhen et al.: before paying for imputation, check whether
one model is (approximately) optimal for every completion of the data. This
bench sweeps the missing rate and reports (a) how often an *exactly* certain
model exists in a favourable regime (irrelevant features missing, exact
fit), and (b) the worst-case optimality-gap bound of the midpoint ridge
model in a noisy regime. Shape to reproduce: certainty decays and the gap
bound grows monotonically with the missing rate.
"""

import numpy as np

from repro.datasets import make_regression
from repro.uncertainty import (
    approximately_certain_model,
    certain_model_regression,
    from_matrix_with_nans,
)
from repro.viz import format_records

MISSING_RATES = [0.0, 0.05, 0.1, 0.2, 0.3]
TRIALS = 10


def exact_certainty_rate(missing_rate: float, seed0: int = 0) -> float:
    """Fraction of trials with an exactly-certain model. Data: exact linear
    target where the last feature is irrelevant; missing cells land only in
    that feature, so certainty holds until a *relevant* pattern is hit."""
    certain = 0
    for trial in range(TRIALS):
        rng = np.random.default_rng(seed0 + trial)
        X = rng.normal(size=(40, 3))
        w = np.asarray([1.5, -2.0, 0.0])
        y = X @ w
        X_nan = X.copy()
        # Missing cells: mostly in the irrelevant feature, occasionally in a
        # relevant one (probability grows with the rate).
        n_missing = int(round(missing_rate * 40))
        rows = rng.choice(40, size=n_missing, replace=False)
        for i in rows:
            column = 2 if rng.random() > missing_rate else int(rng.integers(2))
            X_nan[i, column] = np.nan
        certain += bool(certain_model_regression(X_nan, y).certain)
    return certain / TRIALS


def gap_bound(missing_rate: float) -> float:
    X, y, __ = make_regression(n=80, n_features=4, noise=0.3, seed=5)
    rng = np.random.default_rng(7)
    X_nan = X.copy()
    X_nan[rng.random(X.shape) < missing_rate] = np.nan
    verdict = approximately_certain_model(
        from_matrix_with_nans(X_nan, y), l2=0.5, epsilon=0.1
    )
    return float(verdict.gap_bound)


def run_sweep() -> list[dict]:
    rows = []
    for rate in MISSING_RATES:
        rows.append(
            {
                "missing_rate": rate,
                "exact_certain_fraction": exact_certainty_rate(rate),
                "gap_bound (ridge, midpoint model)": gap_bound(rate),
            }
        )
    return rows


def test_certain_models_sweep(benchmark, write_report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_report("certain_models", format_records(rows))

    certainties = [r["exact_certain_fraction"] for r in rows]
    gaps = [r["gap_bound (ridge, midpoint model)"] for r in rows]
    assert certainties[0] == 1.0  # no missing values → always certain
    assert certainties[-1] <= certainties[0]
    assert gaps[0] < 1e-12  # no missing values → (numerically) zero gap
    assert all(b >= a - 1e-9 for a, b in zip(gaps, gaps[1:]))
