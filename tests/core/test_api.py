"""Tests for the paper-facing nde facade (repro.core)."""

import numpy as np
import pytest

import repro.core as nde
from repro.cleaning import CleaningOracle
from repro.datasets import load_sidedata
from repro.learn import CellImputer, ColumnTransformer, OneHotEncoder, Pipeline, StandardScaler
from repro.pipeline import PipelinePlan
from repro.text import SentenceBertTransformer


@pytest.fixture(scope="module")
def scenario():
    train, valid, test = nde.load_recommendation_letters(n=300, seed=7)
    return train, valid, test


class TestFigure2Flow:
    def test_inject_returns_corrupted_frame_only(self, scenario):
        train, *__ = scenario
        dirty = nde.inject_labelerrors(train, fraction=0.1, seed=1)
        changed = sum(
            a != b
            for a, b in zip(
                dirty["sentiment"].to_list(), train["sentiment"].to_list()
            )
        )
        assert changed == int(round(0.1 * train.num_rows))

    def test_errors_hurt_and_cleaning_recovers(self, scenario):
        """The Figure 2 storyline end-to-end."""
        train, valid, __ = scenario
        dirty = nde.inject_labelerrors(train, fraction=0.25, seed=2)
        acc_clean = nde.evaluate_model(train, valid)
        acc_dirty = nde.evaluate_model(dirty, valid)
        assert acc_dirty <= acc_clean

        importances = nde.knn_shapley_values(dirty, validation=valid)
        lowest = np.argsort(importances)[:40]
        oracle = CleaningOracle(train)
        repaired = oracle.clean(dirty, [int(dirty.row_ids[p]) for p in lowest])
        acc_repaired = nde.evaluate_model(repaired, valid)
        assert acc_repaired >= acc_dirty

    def test_knn_shapley_values_aligned(self, scenario):
        train, valid, __ = scenario
        values = nde.knn_shapley_values(train, validation=valid)
        assert values.shape == (train.num_rows,)

    def test_default_featurize_shape(self, scenario):
        train, *__ = scenario
        X = nde.default_featurize(train)
        assert X.shape[0] == train.num_rows
        assert X.shape[1] > 48


class TestFigure3Flow:
    def _pipeline(self):
        plan = PipelinePlan()
        train = plan.source("train_df")
        jobs = plan.source("jobdetail_df")
        social = plan.source("social_df")
        encoder = ColumnTransformer(
            [
                (SentenceBertTransformer(n_features=16), "letter_text"),
                (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
                (StandardScaler(), ["age", "employer_rating"]),
            ]
        )
        return (
            train.join(jobs, on="job_id")
            .join(social, on="person_id")
            .filter(lambda df: df["sector"] == "healthcare", "sector == 'healthcare'")
            .encode(encoder, label_column="sentiment")
        )

    def test_show_query_plan_prints(self, scenario, capsys):
        nde.show_query_plan(self._pipeline())
        out = capsys.readouterr().out
        assert "Join" in out and "Encode" in out

    def test_with_provenance_datascope_remove_evaluate(self, scenario):
        train, valid, __ = scenario
        jobdetail, social = load_sidedata(n=300, seed=7)
        sink = self._pipeline()
        X_train, result = nde.with_provenance(
            sink, {"train_df": train, "jobdetail_df": jobdetail, "social_df": social}
        )
        from repro.pipeline import execute

        valid_result = execute(
            sink,
            {"train_df": valid, "jobdetail_df": jobdetail, "social_df": social},
            fit=False,
        )
        importances = nde.datascope(result, valid_result)
        lowest = importances.lowest(train, 10)
        X_clean, y_clean = nde.remove(
            result, "train_df", train.row_ids[lowest].tolist()
        )
        assert len(X_clean) < len(X_train)
        delta = nde.evaluate_change(
            result.X, result.y, X_clean, y_clean, valid_result.X, valid_result.y
        )
        assert isinstance(delta, float)


class TestFigure4Flow:
    def test_encode_symbolic_and_zorro(self, scenario):
        train, __, test = scenario
        max_losses = {}
        for percentage in (5, 25):
            symbolic = nde.encode_symbolic(
                train, missing_percentage=percentage, seed=1
            )
            max_losses[percentage] = nde.estimate_with_zorro(symbolic, test)
        assert max_losses[25] >= max_losses[5]

    def test_visualize_uncertainty_returns_chart(self, capsys):
        chart = nde.visualize_uncertainty({5: 0.1, 10: 0.3}, "employer_rating")
        assert "employer_rating" in chart
        assert "employer_rating" in capsys.readouterr().out
