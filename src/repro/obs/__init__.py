"""Observability: tracing, metrics, and profiling for the whole runtime.

The paper's Debug pillar is built on fine-grained pipeline inspection;
``repro.obs`` applies the same idea to the library's own execution. Three
zero-dependency layers:

- :mod:`repro.obs.trace` — hierarchical spans with a thread/fork-safe
  in-memory recorder, a ``span()`` context manager, a ``@traced``
  decorator, and JSONL export. Off by default; the disabled path is a
  single flag check.
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms with snapshot/reset semantics and JSON export.
- :mod:`repro.obs.profile` — opt-in cProfile capture that attaches its
  results to the trace.

On top of the in-process layers sits the *continuous* observability stack
(PR 4): :mod:`repro.obs.quality` computes streaming per-column
data-quality profiles at every pipeline node (``monitor=`` knob on
``pipeline.execute``), :mod:`repro.obs.ledger` persists each run —
config, dataset fingerprints, node profiles, trace skeleton, quarantine
summary — to an append-only JSONL store, and :mod:`repro.obs.diff`
compares two runs into drift scores and threshold-based alerts.

The executor (:mod:`repro.pipeline.execute`), the valuation engine
(:mod:`repro.importance.engine`), and the cleaning loops are instrumented
through this package; the user-facing window is
:class:`repro.obs.tracing` (re-exported as ``nde.tracing()``)::

    import repro.core as nde

    with nde.tracing() as report:
        result = nde.execute_robust(sink, sources, monitor=(mon := nde.monitor()))
    nde.RunLedger("runs.jsonl").record_run(result, monitor=mon, report=report)
"""

from .atomicio import (
    ENVELOPE_SCHEMA_VERSION,
    IOHooks,
    LoadReport,
    SimulatedCrash,
    advisory_lock,
    atomic_append_line,
    atomic_write_text,
    atomic_writer,
    canonical_json,
    crc32_hex,
    frame_line,
    fsync_dir,
    install_io_hooks,
    io_hooks,
    read_jsonl,
    storage_alerts,
    unframe,
)
from .diff import (
    Alert,
    DriftThresholds,
    RunDiff,
    compare_runs,
    cramers_v,
    population_stability_index,
)
from .export import (
    CONTENT_TYPE,
    parse_openmetrics,
    render_openmetrics,
    sanitize_metric_name,
)
from .flight import (
    DEFAULT_KEEP_DUMPS,
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    flight_recorder,
    load_dump,
)
from .ledger import RunLedger, RunRecord
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    delta_snapshots,
    gauge,
    histogram,
    merge_delta,
    registry,
    reset,
    series_name,
    snapshot,
)
from .profile import ProfileResult, profile_block, profiling_requested
from .quality import (
    ColumnProfile,
    ColumnQualityCollector,
    NodeQualityProfile,
    PipelineMonitor,
    fingerprint_frame,
    profile_frame,
)
from .report import TraceReport, tracing
from .slo import SLOPolicy, SLOTracker
from .trace import (
    TRACE_SCHEMA_VERSION,
    Span,
    TraceRecorder,
    WorkerTelemetry,
    add_attrs,
    current_span,
    disable,
    enable,
    enabled,
    get_recorder,
    merge_worker_telemetry,
    read_trace_export,
    span,
    traced,
)

__all__ = [
    # trace
    "Span",
    "TraceRecorder",
    "WorkerTelemetry",
    "TRACE_SCHEMA_VERSION",
    "enabled",
    "enable",
    "disable",
    "span",
    "traced",
    "add_attrs",
    "current_span",
    "get_recorder",
    "merge_worker_telemetry",
    "read_trace_export",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
    "series_name",
    "delta_snapshots",
    "merge_delta",
    # openmetrics export
    "CONTENT_TYPE",
    "render_openmetrics",
    "parse_openmetrics",
    "sanitize_metric_name",
    # flight recorder
    "FLIGHT_SCHEMA_VERSION",
    "DEFAULT_KEEP_DUMPS",
    "FlightRecorder",
    "flight_recorder",
    "load_dump",
    # per-tenant SLOs
    "SLOPolicy",
    "SLOTracker",
    # report / profile
    "TraceReport",
    "tracing",
    "ProfileResult",
    "profile_block",
    "profiling_requested",
    # quality monitors
    "ColumnProfile",
    "ColumnQualityCollector",
    "NodeQualityProfile",
    "PipelineMonitor",
    "profile_frame",
    "fingerprint_frame",
    # run ledger + cross-run diffing
    "RunLedger",
    "RunRecord",
    "RunDiff",
    "Alert",
    "DriftThresholds",
    "compare_runs",
    "population_stability_index",
    "cramers_v",
    # atomic artifact writes + durable-state plane
    "advisory_lock",
    "atomic_writer",
    "atomic_write_text",
    "atomic_append_line",
    "ENVELOPE_SCHEMA_VERSION",
    "IOHooks",
    "LoadReport",
    "SimulatedCrash",
    "canonical_json",
    "crc32_hex",
    "frame_line",
    "fsync_dir",
    "install_io_hooks",
    "io_hooks",
    "read_jsonl",
    "storage_alerts",
    "unframe",
]
