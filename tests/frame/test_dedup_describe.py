"""Tests for deduplication and column summaries."""

import numpy as np
import pytest

from repro.errors import inject_duplicates
from repro.frame import DataFrame


@pytest.fixture()
def frame_with_dupes():
    return DataFrame(
        {
            "k": ["a", "b", "a", "c", "b"],
            "v": [1.0, 2.0, 1.0, 3.0, 9.0],
        }
    )


class TestDuplicates:
    def test_duplicate_mask_marks_repeats_only(self, frame_with_dupes):
        mask = frame_with_dupes.duplicate_mask()
        # Row 2 repeats row 0 exactly; row 4 differs from row 1 in v.
        assert mask.tolist() == [False, False, True, False, False]

    def test_subset_deduplication(self, frame_with_dupes):
        mask = frame_with_dupes.duplicate_mask(subset=["k"])
        assert mask.tolist() == [False, False, True, False, True]

    def test_drop_duplicates_keeps_first(self, frame_with_dupes):
        out = frame_with_dupes.drop_duplicates(subset=["k"])
        assert out["k"].to_list() == ["a", "b", "c"]
        assert out.row_ids.tolist() == [0, 1, 3]

    def test_repairs_injected_duplicates(self):
        rng = np.random.default_rng(0)
        frame = DataFrame(
            {
                "id": np.arange(50),
                "v": rng.normal(size=50).round(6),
            }
        )
        dirty, report = inject_duplicates(frame, fraction=0.2, seed=1)
        repaired = dirty.drop_duplicates(subset=["id", "v"])
        assert repaired.num_rows == frame.num_rows
        assert sorted(repaired["id"].to_list()) == sorted(frame["id"].to_list())

    def test_missing_cells_participate_in_keys(self):
        frame = DataFrame({"k": ["a", None, None]})
        assert frame.duplicate_mask().tolist() == [False, False, True]


class TestDescribe:
    def test_summary_shape_and_columns(self, simple_frame):
        summary = simple_frame.describe()
        assert summary.num_rows == simple_frame.num_columns
        assert summary.columns == [
            "column", "kind", "missing", "unique", "mean", "std", "min", "max",
        ]

    def test_numeric_statistics(self, simple_frame):
        summary = {r["column"]: r for r in simple_frame.describe().to_rows()}
        assert summary["a"]["mean"] == pytest.approx(3.0)
        assert summary["a"]["min"] == 1.0 and summary["a"]["max"] == 5.0

    def test_string_statistics_blank(self, simple_frame):
        summary = {r["column"]: r for r in simple_frame.describe().to_rows()}
        assert summary["b"]["mean"] is None
        assert summary["b"]["missing"] == 1
        assert summary["b"]["unique"] == 2
