"""Continuous pipeline monitoring and cross-run drift diffing.

A deployed pipeline re-runs as its inputs refresh; the question every
incident starts with is "what changed since the last good run?". This demo
answers it with the observability stack:

1. run the Figure-3 letters pipeline with a data-quality monitor attached
   (``monitor=``) and persist the run — config, dataset fingerprints,
   per-node column profiles, quarantine summary — to a ``RunLedger``,
2. re-run it on a *corrupted* refresh (20% of ``employer_rating`` blanked
   MNAR, 15% of sentiment labels flipped) and persist that run too,
3. diff the two ledger records with ``nde.compare_runs`` and print the
   per-node drift table plus the threshold alerts, which localise the
   corruption to the columns it was injected into.

Run with:  python examples/monitoring_drift.py
"""

import tempfile
from pathlib import Path

import repro.core as nde
from repro.datasets import generate_hiring_data
from repro.errors import inject_label_errors, inject_missing
from repro.pipeline.templates import letters_pipeline


def main() -> None:
    data = generate_hiring_data(n=600, seed=7)
    __, sink = letters_pipeline(text_features=8)
    sources = {
        "train_df": data["letters"],
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }

    ledger = nde.RunLedger(Path(tempfile.mkdtemp()) / "runs.jsonl")

    # -- run 1: the healthy baseline ------------------------------------
    monitor = nde.monitor()
    result = nde.execute_robust(sink, sources, monitor=monitor)
    baseline = ledger.record_run(
        result, monitor=monitor, sources=sources,
        config={"seed": 7, "sector": "healthcare"}, run_id="monday",
    )
    print(
        f"baseline run {baseline.run_id!r}: {baseline.rows_out} rows out, "
        f"{len(result.quality_profiles)} nodes profiled\n"
    )

    # -- run 2: a corrupted data refresh --------------------------------
    dirty = sources["train_df"]
    dirty, missing_report = inject_missing(
        dirty, "employer_rating", fraction=0.2, mechanism="MNAR", seed=11
    )
    dirty, label_report = inject_label_errors(
        dirty, "sentiment", fraction=0.15, seed=11
    )
    print(
        f"injected {len(missing_report.row_ids)} missing employer ratings "
        f"and {label_report.n_errors} flipped labels into the refresh"
    )
    dirty_sources = dict(sources, train_df=dirty)
    monitor = nde.monitor()
    result = nde.execute_robust(sink, dirty_sources, monitor=monitor)
    candidate = ledger.record_run(
        result, monitor=monitor, sources=dirty_sources,
        config={"seed": 7, "sector": "healthcare"}, run_id="tuesday",
    )
    print(f"candidate run {candidate.run_id!r}: {candidate.rows_out} rows out\n")

    # -- diff the two ledger records ------------------------------------
    diff = nde.compare_runs(baseline, candidate)
    print(diff.render())

    drifted = sorted({alert.column for alert in diff.alerts if alert.column})
    print(f"\ncolumns with drift alerts: {drifted}")
    report = diff.to_error_report()
    print(
        f"as ErrorReport: kind={report.kind!r} "
        f"({report.params['n_alerts']} alerts, runs "
        f"{report.params['run_a']!r} → {report.params['run_b']!r})"
    )


if __name__ == "__main__":
    main()
