"""mlinspect-style pipeline inspections (Grafberger et al. [24, 25]).

Inspections examine a provenance-carrying pipeline run and report *issues* —
data-distribution problems that silently arise inside preprocessing, such as
a filter disproportionately shrinking a demographic group, or join keys
failing to match. Each inspection is a small callable so screening policies
(:mod:`repro.pipeline.screening`) can mix and match them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..frame import DataFrame
from .execute import PipelineResult

__all__ = [
    "Issue",
    "group_shrinkage",
    "join_match_rate",
    "missing_value_report",
    "train_test_overlap",
    "label_error_screen",
    "feature_constant_screen",
]


@dataclass
class Issue:
    """One finding of an inspection."""

    check: str
    severity: str  # "info" | "warning" | "error"
    message: str
    details: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{self.severity}] {self.check}: {self.message}"


def group_shrinkage(
    source_frame: DataFrame,
    result: PipelineResult,
    column: str,
    threshold: float = 0.5,
) -> list[Issue]:
    """Detect groups whose share of the data shrank through the pipeline.

    Compares the distribution of ``column`` in the source frame against the
    pipeline output; a group whose retention rate is below ``threshold``
    times the overall retention rate is flagged (the classic "the filter
    silently dropped most of group X" bug from the mlinspect paper).
    """
    issues: list[Issue] = []
    before = source_frame.column(column).value_counts()
    after = result.frame.column(column).value_counts() if column in result.frame else {}
    total_before = sum(before.values()) or 1
    total_after = sum(after.values())
    overall_retention = total_after / total_before if total_before else 0.0
    for group, count_before in before.items():
        count_after = after.get(group, 0)
        retention = count_after / count_before if count_before else 0.0
        if overall_retention > 0 and retention < threshold * overall_retention:
            issues.append(
                Issue(
                    check="group_shrinkage",
                    severity="warning",
                    message=(
                        f"group {column}={group!r} retained {retention:.0%} of rows "
                        f"vs {overall_retention:.0%} overall"
                    ),
                    details={
                        "column": column,
                        "group": group,
                        "before": count_before,
                        "after": count_after,
                        "overall_retention": overall_retention,
                    },
                )
            )
    return issues


def join_match_rate(
    result: PipelineResult, side_source: str, threshold: float = 0.9
) -> list[Issue]:
    """Flag joins where many output rows lack a partner from a side table.

    A low match rate usually means dirty join keys (typos, format drift) —
    the error family :func:`repro.errors.inject_typos` produces.
    """
    matched = 0
    for row in result.provenance.tuples:
        if any(name == side_source for name, __ in row):
            matched += 1
    total = len(result.provenance) or 1
    rate = matched / total
    if rate < threshold:
        return [
            Issue(
                check="join_match_rate",
                severity="warning",
                message=(
                    f"only {rate:.0%} of output rows matched a tuple from "
                    f"{side_source!r} (threshold {threshold:.0%})"
                ),
                details={"side_source": side_source, "match_rate": rate},
            )
        ]
    return []


def missing_value_report(result: PipelineResult, threshold: float = 0.2) -> list[Issue]:
    """Columns of the pipeline output with a high missing-cell rate."""
    issues = []
    for name, nulls in result.frame.null_counts().items():
        rate = nulls / max(result.frame.num_rows, 1)
        if rate > threshold:
            issues.append(
                Issue(
                    check="missing_values",
                    severity="warning",
                    message=f"column {name!r} is {rate:.0%} missing in the pipeline output",
                    details={"column": name, "rate": rate},
                )
            )
    return issues


def train_test_overlap(
    train_result: PipelineResult, test_frame: DataFrame, source: str
) -> list[Issue]:
    """Detect data leakage: test tuples flowing into the training matrix.

    Compares the *source row ids* feeding the training output against the
    test frame's row ids — the provenance-based leakage check ArgusEyes [72]
    runs in CI.
    """
    train_ids = {
        rid for row in train_result.provenance.tuples for name, rid in row if name == source
    }
    overlap = train_ids & {int(r) for r in test_frame.row_ids}
    if overlap:
        return [
            Issue(
                check="train_test_overlap",
                severity="error",
                message=(
                    f"{len(overlap)} tuples of source {source!r} appear in both the "
                    "training output and the test set (data leakage)"
                ),
                details={"n_overlap": len(overlap), "source": source},
            )
        ]
    return []


def label_error_screen(
    result: PipelineResult, flag_fraction_threshold: float = 0.05, seed: int = 0
) -> list[Issue]:
    """Run confident learning on the encoded output to screen for label errors."""
    from ..importance.confident import confident_learning

    if result.X is None or result.y is None:
        raise ValueError("label_error_screen needs an encoded pipeline result")
    if len(np.unique(result.y)) < 2:
        return [
            Issue(
                check="label_errors",
                severity="error",
                message="pipeline output contains fewer than two classes",
            )
        ]
    report = confident_learning(result.X, result.y, seed=seed)
    flagged = report.extras["flagged"]
    rate = float(np.mean(flagged))
    if rate > flag_fraction_threshold:
        return [
            Issue(
                check="label_errors",
                severity="warning",
                message=(
                    f"confident learning flags {rate:.1%} of training labels as "
                    f"suspect (threshold {flag_fraction_threshold:.0%})"
                ),
                details={"flag_rate": rate, "n_flagged": int(flagged.sum()),
                         "flagged_positions": np.flatnonzero(flagged)},
            )
        ]
    return []


def feature_constant_screen(result: PipelineResult) -> list[Issue]:
    """Flag encoded feature dimensions with zero variance (dead features)."""
    if result.X is None:
        raise ValueError("feature_constant_screen needs an encoded pipeline result")
    if len(result.X) == 0:
        return [Issue("constant_features", "error", "pipeline output is empty")]
    variances = result.X.var(axis=0)
    dead = np.flatnonzero(variances == 0.0)
    if len(dead):
        return [
            Issue(
                check="constant_features",
                severity="info",
                message=f"{len(dead)} of {result.X.shape[1]} encoded features are constant",
                details={"dead_dimensions": dead},
            )
        ]
    return []
