"""Tests for influence functions, TracIn, confident learning, AUM, Gopher."""

import numpy as np
import pytest

from repro.datasets import make_biased_hiring, make_classification
from repro.importance import (
    Utility,
    aum_importance,
    confident_learning,
    gopher_explanations,
    influence_importance,
    loo_importance,
    out_of_sample_probabilities,
    per_sample_gradients,
    random_importance,
    tracin_importance,
)
from repro.learn import LogisticRegression
from repro.learn.metrics import demographic_parity_difference


@pytest.fixture(scope="module")
def noisy_task():
    """Training data with 15 known label flips."""
    rng = np.random.default_rng(7)
    X, y = make_classification(n=150, n_features=4, seed=7)
    Xtr, ytr = X[:110], y[:110].copy()
    Xv, yv = X[110:], y[110:]
    flipped = rng.choice(110, size=15, replace=False)
    ytr[flipped] = 1 - ytr[flipped]
    mask = np.zeros(110, bool)
    mask[flipped] = True
    return Xtr, ytr, Xv, yv, mask


class TestGradients:
    def test_per_sample_gradients_shape(self, noisy_task):
        Xtr, ytr, *__ = noisy_task
        model = LogisticRegression().fit(Xtr, ytr)
        grads = per_sample_gradients(model, Xtr, ytr)
        assert grads.shape == (110, 2 * (4 + 1))

    def test_gradients_sum_to_batch_gradient_at_optimum(self, noisy_task):
        """At the L2-regularised optimum, mean gradient = −λ·W."""
        Xtr, ytr, *__ = noisy_task
        model = LogisticRegression(l2=1e-2).fit(Xtr, ytr)
        grads = per_sample_gradients(model, Xtr, ytr).mean(axis=0)
        W = np.column_stack([model.coef_, model.intercept_]).reshape(-1)
        l2_term = np.column_stack(
            [model.l2 * model.coef_, np.zeros(2)]
        ).reshape(-1)
        assert np.allclose(grads, -l2_term, atol=1e-4)


class TestInfluence:
    def test_detects_label_errors(self, noisy_task):
        Xtr, ytr, Xv, yv, mask = noisy_task
        model = LogisticRegression().fit(Xtr, ytr)
        result = influence_importance(model, Xtr, ytr, Xv, yv)
        assert result.detection_precision_at_k(mask, 15) > 0.4

    def test_approximates_loo_ranking(self):
        """Influence is a first-order LOO estimate: rankings should correlate."""
        X, y = make_classification(n=60, n_features=3, seed=3)
        Xtr, ytr, Xv, yv = X[:40], y[:40], X[40:], y[40:]
        model = LogisticRegression(l2=0.1).fit(Xtr, ytr)
        inf = influence_importance(model, Xtr, ytr, Xv, yv)

        # LOO on the *log-loss* utility for an apples-to-apples comparison.
        def neg_log_loss_metric(y_true, y_pred):  # pragma: no cover - simple
            return float(np.mean(y_true == y_pred))

        utility = Utility(LogisticRegression(l2=0.1), Xtr, ytr, Xv, yv)
        loo = loo_importance(utility)
        # Rank correlation (Spearman) should be clearly positive.
        from scipy.stats import spearmanr

        rho, __ = spearmanr(inf.values, loo.values)
        assert rho > 0.2

    def test_fits_model_if_needed(self, noisy_task):
        Xtr, ytr, Xv, yv, __ = noisy_task
        result = influence_importance(LogisticRegression(), Xtr, ytr, Xv, yv)
        assert len(result) == 110


class TestTracIn:
    def test_detects_label_errors(self, noisy_task):
        Xtr, ytr, Xv, yv, mask = noisy_task
        model = LogisticRegression().fit(Xtr, ytr)
        result = tracin_importance(model, Xtr, ytr, Xv, yv)
        assert result.detection_precision_at_k(mask, 15) > 0.4

    def test_beats_random_baseline(self, noisy_task):
        Xtr, ytr, Xv, yv, mask = noisy_task
        model = LogisticRegression().fit(Xtr, ytr)
        tracin = tracin_importance(model, Xtr, ytr, Xv, yv)
        rand = random_importance(len(ytr), seed=0)
        assert (
            tracin.detection_recall_at_k(mask, 20)
            > rand.detection_recall_at_k(mask, 20)
        )


class TestConfidentLearning:
    def test_out_of_sample_probs_cover_all_points(self, noisy_task):
        Xtr, ytr, *__ = noisy_task
        probs, classes = out_of_sample_probabilities(LogisticRegression(), Xtr, ytr)
        assert probs.shape == (110, 2)
        assert not np.isnan(probs).any()
        assert np.allclose(probs.sum(axis=1), 1.0, atol=1e-6)

    def test_flags_label_errors(self, noisy_task):
        Xtr, ytr, __, __, mask = noisy_task
        result = confident_learning(Xtr, ytr, seed=0)
        flagged = result.extras["flagged"]
        # Flagging should be enriched for true errors.
        precision = mask[flagged].mean() if flagged.any() else 0.0
        assert precision > 0.4

    def test_confident_joint_diagonal_dominates_on_clean_data(self):
        X, y = make_classification(n=120, seed=9)
        result = confident_learning(X, y, seed=0)
        joint = result.extras["confident_joint"]
        assert joint.trace() > 0.8 * joint.sum()

    def test_suggested_labels_match_classes(self, noisy_task):
        Xtr, ytr, *__ = noisy_task
        result = confident_learning(Xtr, ytr, seed=0)
        assert set(result.extras["suggested_labels"]) <= set(np.unique(ytr))

    def test_margin_low_for_errors(self, noisy_task):
        Xtr, ytr, __, __, mask = noisy_task
        result = confident_learning(Xtr, ytr, seed=0)
        assert result.values[mask].mean() < result.values[~mask].mean()


class TestAUM:
    def test_detects_label_errors(self, noisy_task):
        Xtr, ytr, __, __, mask = noisy_task
        result = aum_importance(Xtr, ytr, n_epochs=60, seed=0)
        assert result.values[mask].mean() < result.values[~mask].mean()
        assert result.detection_precision_at_k(mask, 15) > 0.4

    def test_single_class_returns_zeros(self):
        result = aum_importance(np.zeros((5, 2)), np.zeros(5, dtype=int))
        assert np.allclose(result.values, 0.0)

    def test_invalid_epochs_raise(self):
        with pytest.raises(ValueError):
            aum_importance(np.zeros((5, 2)), np.zeros(5, dtype=int), n_epochs=0)

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            aum_importance(np.zeros((5, 2)), np.zeros(4, dtype=int))


class TestGopher:
    def test_finds_bias_carrying_predicate(self):
        """The injected bias lives in group B rows; the top explanation's
        removal should reduce demographic parity violation."""
        frame = make_biased_hiring(n=400, bias_strength=0.7, seed=1)
        test = make_biased_hiring(n=200, bias_strength=0.0, seed=2)

        def featurize(df):
            numeric = df.to_numpy(["skill", "experience"])
            # The protected attribute is a feature, so the biased labels can
            # actually teach the model to discriminate on it.
            indicator = (df["group"] == "B").astype(float).reshape(-1, 1)
            return np.column_stack([numeric, indicator])

        x_test = featurize(test)
        y_test = np.asarray(test.column("hired").to_list())
        groups = np.asarray(test.column("group").to_list())

        def bias_metric(model):
            preds = model.predict(x_test)
            return demographic_parity_difference(y_test, preds, groups, positive="yes")

        def accuracy_metric(model):
            return float(np.mean(model.predict(x_test) == y_test))

        explanations = gopher_explanations(
            frame,
            LogisticRegression(max_iter=60),
            featurize,
            label_column="hired",
            bias_metric=bias_metric,
            accuracy_metric=accuracy_metric,
            explain_columns=["group", "hired"],
            top_k=5,
        )
        assert explanations
        best = explanations[0]
        assert best.bias_reduction > 0
        # The guilty subset is biased B rows labelled 'no'.
        mentioned = dict(best.predicate.conditions)
        assert mentioned.get("group") == "B" or mentioned.get("hired") == "no"

    def test_respects_support_bounds(self):
        frame = make_biased_hiring(n=200, seed=3)

        explanations = gopher_explanations(
            frame,
            LogisticRegression(max_iter=40),
            lambda df: df.to_numpy(["skill", "experience"]),
            label_column="hired",
            bias_metric=lambda m: 0.0,
            accuracy_metric=lambda m: 0.0,
            explain_columns=["group"],
            min_support=5,
            max_support_fraction=0.5,
        )
        for explanation in explanations:
            assert 5 <= explanation.support <= 100

    def test_predicate_str_readable(self):
        from repro.importance import Predicate

        predicate = Predicate((("sector", "finance"), ("degree", "none")))
        assert "sector = 'finance'" in str(predicate)
        assert "AND" in str(predicate)

    def test_worker_count_does_not_change_explanations(self):
        frame = make_biased_hiring(n=150, bias_strength=0.6, seed=4)
        x = frame.to_numpy(["skill", "experience"])
        y = np.asarray(frame.column("hired").to_list())

        def bias_metric(model):
            return float(np.mean(model.predict(x) == y))

        kwargs = dict(
            label_column="hired",
            bias_metric=bias_metric,
            accuracy_metric=bias_metric,
            explain_columns=["group", "hired"],
            top_k=4,
        )
        featurize = lambda df: df.to_numpy(["skill", "experience"])  # noqa: E731
        serial = gopher_explanations(
            frame, LogisticRegression(max_iter=40), featurize, **kwargs
        )
        fanned = gopher_explanations(
            frame, LogisticRegression(max_iter=40), featurize, n_workers=3, **kwargs
        )
        assert [str(e.predicate) for e in serial] == [str(e.predicate) for e in fanned]
        assert [e.bias_reduction for e in serial] == [e.bias_reduction for e in fanned]
