"""Prioritised data cleaning: oracles, strategies, iterative loops."""

from .activeclean import activeclean
from .iterative import CleaningCurve, iterative_cleaning
from .oracle import BudgetExhausted, CleaningOracle
from .otclean import OTCleanRepair, conditional_mutual_information, otclean
from .pipeline_cleaning import pipeline_iterative_cleaning
from .strategies import STRATEGY_NAMES, Strategy, make_strategy

__all__ = [
    "activeclean",
    "CleaningCurve",
    "iterative_cleaning",
    "BudgetExhausted",
    "CleaningOracle",
    "OTCleanRepair",
    "conditional_mutual_information",
    "otclean",
    "pipeline_iterative_cleaning",
    "STRATEGY_NAMES",
    "Strategy",
    "make_strategy",
]
