"""Experiment F3 — Figure 3: debug a preprocessing pipeline via provenance.

Paper storyline: build the join-join-filter-UDF-encode pipeline over the
letters scenario, compute Datascope importance over the *source* training
table, remove the 25 lowest-importance source tuples through provenance, and
measure the accuracy change (paper: +0.027 after removing harmful tuples
from error-injected data). Shape to reproduce: the removal does not hurt —
and with injected label errors, it helps — and the provenance shortcut
equals a full pipeline re-run (F3-plan: the query plan renders with all
operators).
"""

import numpy as np

import repro.core as nde
from repro.datasets import generate_hiring_data
from repro.errors import inject_label_errors
from repro.learn import (
    CellImputer,
    ColumnTransformer,
    KNeighborsClassifier,
    OneHotEncoder,
    Pipeline,
    StandardScaler,
    clone,
)
from repro.learn.model_selection import split_frame
from repro.pipeline import execute, plan_summary, render_plan, PipelinePlan
from repro.text import SentenceBertTransformer
from repro.viz import format_records

REMOVE_K = 25


def build_pipeline():
    plan = PipelinePlan()
    train = plan.source("train_df")
    jobs = plan.source("jobdetail_df")
    social = plan.source("social_df")
    encoder = ColumnTransformer(
        [
            (SentenceBertTransformer(n_features=32), "letter_text"),
            (Pipeline([CellImputer(), OneHotEncoder()]), "degree"),
            (StandardScaler(), ["age", "employer_rating"]),
        ]
    )
    return (
        train.join(jobs, on="job_id")
        .join(social, on="person_id")
        .filter(lambda df: df["sector"] == "healthcare", "sector == 'healthcare'")
        .with_column("has_twitter", lambda df: df["twitter"].notnull(), "has_twitter")
        .encode(encoder, label_column="sentiment")
    )


def run_figure3() -> dict:
    data = generate_hiring_data(n=900, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    dirty, __ = inject_label_errors(train, "sentiment", fraction=0.2, seed=5)
    sink = build_pipeline()
    sources = {
        "train_df": dirty,
        "jobdetail_df": data["jobdetail"],
        "social_df": data["social"],
    }
    train_result = execute(sink, sources, fit=True)
    valid_result = execute(sink, dict(sources, train_df=valid), fit=False)

    importances = nde.datascope(train_result, valid_result, source="train_df")
    lowest = importances.lowest(dirty, REMOVE_K)
    X_clean, y_clean = nde.remove(
        train_result, "train_df", dirty.row_ids[lowest].tolist()
    )
    model = KNeighborsClassifier(5)
    acc_before = (
        clone(model)
        .fit(train_result.X, train_result.y)
        .score(valid_result.X, valid_result.y)
    )
    acc_after = (
        clone(model).fit(X_clean, y_clean).score(valid_result.X, valid_result.y)
    )

    # Cross-check: provenance removal == full pipeline re-run on filtered input.
    keep = ~np.isin(dirty.row_ids, dirty.row_ids[lowest])
    rerun = execute(sink, dict(sources, train_df=dirty.filter(keep)), fit=False)
    provenance_exact = bool(
        np.allclose(X_clean, rerun.X) and np.array_equal(y_clean, rerun.y)
    )

    # F3-task: iterative cleaning through the pipeline (the attendee task of
    # the hands-on session — repairs land on source tuples via provenance).
    from repro.cleaning import CleaningOracle, pipeline_iterative_cleaning

    oracle = CleaningOracle(train)
    curve = pipeline_iterative_cleaning(
        sink,
        sources,
        dict(sources, train_df=valid),
        train_source="train_df",
        oracle=oracle,
        model=KNeighborsClassifier(5),
        batch_size=25,
        n_rounds=3,
    )
    return {
        "plan": render_plan(sink),
        "plan_counts": plan_summary(sink),
        "n_encoded": len(train_result.X),
        "acc_before": float(acc_before),
        "acc_after": float(acc_after),
        "delta": float(acc_after - acc_before),
        "provenance_exact": provenance_exact,
        "cleaning_curve": list(zip(curve.budgets(), curve.accuracies())),
    }


def test_fig3_pipeline_debugging(benchmark, write_report):
    result = benchmark.pedantic(run_figure3, rounds=1, iterations=1)

    table = format_records(
        [
            {"quantity": "encoded training rows", "value": result["n_encoded"]},
            {"quantity": "accuracy before removal", "value": result["acc_before"]},
            {"quantity": f"accuracy after removing {REMOVE_K} tuples",
             "value": result["acc_after"]},
            {"quantity": "accuracy delta (paper: +0.027)", "value": result["delta"]},
            {"quantity": "provenance removal == pipeline re-run",
             "value": str(result["provenance_exact"])},
        ]
    )
    curve_text = "\n".join(
        f"  cleaned {budget:>3} source tuples → validation accuracy {acc:.4f}"
        for budget, acc in result["cleaning_curve"]
    )
    write_report(
        "fig3_pipeline",
        result["plan"] + "\n\n" + table
        + "\n\niterative pipeline cleaning (F3-task):\n" + curve_text,
    )

    counts = result["plan_counts"]
    assert counts == {"source": 3, "join": 2, "filter": 1, "map": 1, "encode": 1}
    assert result["provenance_exact"]
    assert result["delta"] >= -0.01  # removing flagged tuples must not hurt
    curve = result["cleaning_curve"]
    assert curve[-1][1] >= curve[0][1] - 0.02  # cleaning does not hurt
