"""Tests for adversarial poisoning attacks and their interplay with defences."""

import numpy as np
import pytest

from repro.datasets import make_classification
from repro.errors import adversarial_label_flips, targeted_poison_points
from repro.learn import KNeighborsClassifier, clone
from repro.robust import PartitionEnsemble
from repro.uncertainty import knn_flip_robustness


@pytest.fixture(scope="module")
def task():
    X, y = make_classification(n=300, n_features=4, seed=2)
    return X[:220], y[:220], X[220:], y[220:]


class TestAdversarialFlips:
    def test_flips_exactly_budget_labels(self, task):
        Xtr, ytr, Xv, yv = task
        poisoned, report = adversarial_label_flips(Xtr, ytr, Xv, yv, budget=15)
        assert int(np.sum(poisoned != ytr)) == 15
        assert report.n_errors == 15

    def test_stronger_than_random_for_knn(self, task):
        Xtr, ytr, Xv, yv = task
        budget = 30
        poisoned, __ = adversarial_label_flips(Xtr, ytr, Xv, yv, budget=budget)
        rng = np.random.default_rng(0)
        random_labels = ytr.copy()
        flips = rng.choice(len(ytr), budget, replace=False)
        random_labels[flips] = 1 - random_labels[flips]
        model = KNeighborsClassifier(5)
        adversarial_acc = clone(model).fit(Xtr, poisoned).score(Xv, yv)
        random_acc = clone(model).fit(Xtr, random_labels).score(Xv, yv)
        assert adversarial_acc < random_acc

    def test_zero_budget_noop(self, task):
        Xtr, ytr, Xv, yv = task
        poisoned, report = adversarial_label_flips(Xtr, ytr, Xv, yv, budget=0)
        assert np.array_equal(poisoned, ytr)
        assert report.n_errors == 0

    def test_invalid_budget_raises(self, task):
        Xtr, ytr, Xv, yv = task
        with pytest.raises(ValueError):
            adversarial_label_flips(Xtr, ytr, Xv, yv, budget=-1)

    def test_single_class_raises(self, task):
        Xtr, __, Xv, yv = task
        with pytest.raises(ValueError):
            adversarial_label_flips(Xtr, np.zeros(len(Xtr)), Xv, yv, budget=2)


class TestCertificatesHoldAgainstTheAttack:
    def test_partition_certificates_survive_adversarial_flips(self, task):
        """The whole point of a certificate: it binds against *any* attack
        within budget, including this targeted one (label flips keep the
        partition assignment fixed, so the guarantee applies exactly)."""
        Xtr, ytr, Xv, __ = task
        budget = 2
        ensemble = PartitionEnsemble(
            KNeighborsClassifier(3), n_partitions=15, seed=1
        ).fit(Xtr, ytr)
        certs = ensemble.certified_predict(Xv)
        # The attacker targets the defender's own evaluation view.
        poisoned, __ = adversarial_label_flips(
            Xtr, ytr, Xv, np.zeros(len(Xv), dtype=ytr.dtype), budget=budget
        )
        attacked = PartitionEnsemble(
            KNeighborsClassifier(3), n_partitions=15, seed=1
        ).fit(Xtr, poisoned)
        new_predictions = attacked.predict(Xv)
        for i, cp in enumerate(certs):
            if cp.certified_radius >= budget:
                assert new_predictions[i] == cp.label

    def test_knn_flip_certificate_binds(self, task):
        """Points certified robust to r flips keep their prediction under
        the adversarial flip attack with budget r restricted to neighbours."""
        Xtr, ytr, Xv, yv = task
        robust, labels = knn_flip_robustness(Xtr, ytr, Xv, k=5, flip_budget=2)
        poisoned, report = adversarial_label_flips(Xtr, ytr, Xv, yv, budget=2)
        model = KNeighborsClassifier(5).fit(Xtr, poisoned)
        predictions = model.predict(Xv)
        for i in range(len(Xv)):
            if robust[i]:
                assert predictions[i] == labels[i]


class TestTargetedPoison:
    def test_flips_target_prediction(self, task):
        Xtr, ytr, Xv, yv = task
        wrong = 1 - yv[0]
        X_poison, y_poison = targeted_poison_points(Xv[0], wrong, budget=5)
        model = KNeighborsClassifier(5).fit(
            np.vstack([Xtr, X_poison]), np.concatenate([ytr, y_poison])
        )
        assert model.predict(Xv[:1])[0] == wrong

    def test_poison_is_local(self, task):
        """The near-duplicate attack barely moves other predictions."""
        Xtr, ytr, Xv, yv = task
        X_poison, y_poison = targeted_poison_points(Xv[0], 1 - yv[0], budget=5)
        clean = KNeighborsClassifier(5).fit(Xtr, ytr).predict(Xv[1:])
        attacked = KNeighborsClassifier(5).fit(
            np.vstack([Xtr, X_poison]), np.concatenate([ytr, y_poison])
        ).predict(Xv[1:])
        assert np.mean(clean == attacked) > 0.95

    def test_invalid_budget_raises(self, task):
        __, __, Xv, yv = task
        with pytest.raises(ValueError):
            targeted_poison_points(Xv[0], 1, budget=0)
