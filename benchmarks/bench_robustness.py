"""Ablation — robustness of learning *and* of execution.

Part 1 (certified robustness): the survey's Learn part cites intrinsic
certified robustness of ensembles (Jia et al. [32]): more partitions certify
larger poisoning budgets but each base model sees less data. This bench
sweeps the partition count and reports clean accuracy alongside certified
accuracy at several budgets. Shapes to reproduce: certified accuracy is
monotone non-increasing in the budget for every ensemble, and the maximum
certifiable budget grows with the partition count.

Part 2 (graceful degradation under chaos): a seeded
:class:`repro.errors.ChaosMonkey` injects row-level operator faults into the
Figure-3 letters pipeline at increasing rates. The seed fail-fast executor
dies at any non-zero rate; ``execute_robust`` completes every run,
quarantines exactly the faulted rows (verified against the monkey's ground
truth), and keeps downstream validation accuracy within a small band of the
clean run — the crash becomes a measured, attributed signal.
"""

import pytest

from repro.datasets import generate_hiring_data, make_classification
from repro.errors import ChaosError, ChaosMonkey
from repro.learn import LogisticRegression
from repro.learn.base import clone
from repro.learn.model_selection import split_frame
from repro.pipeline import execute, execute_robust, letters_pipeline
from repro.robust import PartitionEnsemble, SmoothedClassifier
from repro.viz import format_records

PARTITIONS = [3, 7, 15, 31]
BUDGETS = [0, 1, 3, 6]


def run_sweep() -> dict:
    X, y = make_classification(n=700, n_features=4, seed=4)
    Xtr, ytr = X[:550], y[:550]
    Xv, yv = X[550:], y[550:]
    rows = []
    for k in PARTITIONS:
        ensemble = PartitionEnsemble(
            LogisticRegression(max_iter=40), n_partitions=k, seed=0
        ).fit(Xtr, ytr)
        row = {"partitions": k, "clean_accuracy": round(ensemble.score(Xv, yv), 4)}
        for budget in BUDGETS:
            row[f"certified@{budget}"] = round(
                ensemble.certified_accuracy(Xv, yv, budget), 4
            )
        rows.append(row)

    smoothed = SmoothedClassifier(
        LogisticRegression(max_iter=40), noise=0.3, n_samples=15, seed=0
    ).fit(Xtr, ytr)
    certs = smoothed.certified_predict(Xv)
    smoothing_row = {
        "accuracy": round(smoothed.score(Xv, yv), 4),
        "mean_certified_flips": round(
            sum(c.certified_flips for c in certs) / len(certs), 3
        ),
    }
    return {"rows": rows, "smoothing": smoothing_row}


def test_robustness_tradeoff(benchmark, write_report):
    result = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report = format_records(result["rows"])
    report += (
        "\n\nrandomized smoothing (noise=0.3): "
        f"accuracy {result['smoothing']['accuracy']}, mean certified flips "
        f"{result['smoothing']['mean_certified_flips']}"
    )
    write_report("robustness_certification", report)

    for row in result["rows"]:
        certified = [row[f"certified@{b}"] for b in BUDGETS]
        assert all(b <= a + 1e-12 for a, b in zip(certified, certified[1:]))
        assert certified[0] <= row["clean_accuracy"] + 1e-12
    # Larger ensembles certify non-trivial budgets that small ones cannot.
    assert result["rows"][-1][f"certified@{BUDGETS[-1]}"] > 0.0
    assert result["rows"][0][f"certified@{BUDGETS[-1]}"] == 0.0
    assert result["smoothing"]["mean_certified_flips"] > 0.0


# ----------------------------------------------------------------------
# Part 2: graceful degradation of pipeline execution under injected faults
# ----------------------------------------------------------------------
FAULT_RATES = [0.0, 0.05, 0.10]


def run_chaos_sweep() -> list[dict]:
    data = generate_hiring_data(n=400, seed=7)
    train, valid = split_frame(data["letters"], fractions=(0.75, 0.25), seed=1)
    side = {"jobdetail_df": data["jobdetail"], "social_df": data["social"]}
    train_sources = {"train_df": train, **side}
    valid_sources = {"train_df": valid, **side}

    rows = []
    for rate in FAULT_RATES:
        # Fresh pipeline per rate: the encoder is stateful and shared
        # between the clean sink and its chaos-wrapped clone.
        __, sink = letters_pipeline()
        # error faults crash the operator outright; type faults silently
        # corrupt map-output cells (caught by the executor's cell guard).
        monkey = ChaosMonkey(seed=13, error_rate=rate * 0.6, type_rate=rate * 0.4)
        wrapped = monkey.wrap(sink)

        fail_fast_died = False
        if rate > 0.0:
            try:
                execute(wrapped, train_sources, fit=True)
            except ChaosError:
                fail_fast_died = True
            monkey.reset()

        result = execute_robust(wrapped, train_sources)
        faulted = monkey.triggered_row_ids()
        quarantined = set(result.quarantine.row_ids("train_df").tolist())

        # Validation flows through the *clean* sink; its encoder was fitted
        # by the robust train run (shared object), so features align.
        valid_result = execute(sink, valid_sources, fit=False)
        model = clone(LogisticRegression(max_iter=100)).fit(result.X, result.y)
        accuracy = model.score(valid_result.X, valid_result.y)

        rows.append(
            {
                "fault_rate": rate,
                "fail_fast": "dies" if rate else "ok",
                "fail_fast_died": fail_fast_died,
                "rows_out": result.n_rows,
                "quarantined": len(quarantined),
                "faults_injected": len(faulted),
                "attribution_exact": quarantined == faulted,
                "accuracy": round(float(accuracy), 4),
            }
        )
    return rows


def test_chaos_graceful_degradation(benchmark, write_report):
    rows = benchmark.pedantic(run_chaos_sweep, rounds=1, iterations=1)
    report = format_records(
        [
            {k: v for k, v in row.items() if k != "fail_fast_died"}
            for row in rows
        ]
    )
    write_report("chaos_graceful_degradation", report)

    clean = rows[0]
    assert clean["quarantined"] == 0 and clean["faults_injected"] == 0
    for row in rows[1:]:
        # The seed executor dies; the robust executor completes ...
        assert row["fail_fast_died"]
        # ... quarantining exactly the injected rows (why-provenance ground
        # truth), with bounded row loss and bounded accuracy degradation.
        assert row["attribution_exact"]
        assert row["quarantined"] >= 1
        assert row["rows_out"] >= clean["rows_out"] - row["faults_injected"]
        assert row["accuracy"] >= clean["accuracy"] - 0.15
