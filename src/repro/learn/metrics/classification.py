"""Correctness metrics (the paper's Figure 1 "Correctness Metric" panel)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

__all__ = [
    "accuracy",
    "error_rate",
    "confusion_matrix",
    "precision",
    "recall",
    "f1_score",
    "macro_f1",
    "log_loss",
    "brier_score",
]


def _check_pair(y_true: Any, y_pred: Any) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError(f"shape mismatch: {y_true.shape} vs {y_pred.shape}")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy(y_true: Any, y_pred: Any) -> float:
    """Fraction of predictions equal to the true labels."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def error_rate(y_true: Any, y_pred: Any) -> float:
    """``1 − accuracy``."""
    return 1.0 - accuracy(y_true, y_pred)


def confusion_matrix(y_true: Any, y_pred: Any, labels: Sequence | None = None) -> np.ndarray:
    """Counts matrix with rows = true class, columns = predicted class."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    out = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true.tolist(), y_pred.tolist()):
        out[index[t], index[p]] += 1
    return out


def _binary_counts(y_true: np.ndarray, y_pred: np.ndarray, positive: Any) -> tuple[int, int, int]:
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    return tp, fp, fn


def precision(y_true: Any, y_pred: Any, positive: Any) -> float:
    """TP / (TP + FP) for the given positive class (0 when nothing predicted)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp, fp, __ = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fp) if tp + fp else 0.0


def recall(y_true: Any, y_pred: Any, positive: Any) -> float:
    """TP / (TP + FN) for the given positive class (0 when nothing to find)."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp, __, fn = _binary_counts(y_true, y_pred, positive)
    return tp / (tp + fn) if tp + fn else 0.0


def f1_score(y_true: Any, y_pred: Any, positive: Any) -> float:
    """Harmonic mean of precision and recall for the positive class."""
    p = precision(y_true, y_pred, positive)
    r = recall(y_true, y_pred, positive)
    return 2.0 * p * r / (p + r) if p + r else 0.0


def macro_f1(y_true: Any, y_pred: Any) -> float:
    """Unweighted mean of per-class F1 scores."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    classes = np.unique(np.concatenate([y_true, y_pred]))
    return float(np.mean([f1_score(y_true, y_pred, cls) for cls in classes]))


def log_loss(y_true: Any, probs: Any, classes: Sequence) -> float:
    """Mean cross-entropy given a (n, k) probability matrix and class order."""
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=float)
    classes = list(classes)
    index = {cls: j for j, cls in enumerate(classes)}
    picked = np.asarray(
        [probs[i, index[label]] if label in index else 1e-12
         for i, label in enumerate(y_true.tolist())]
    )
    return float(-np.mean(np.log(np.clip(picked, 1e-12, None))))


def brier_score(y_true: Any, probs: Any, classes: Sequence) -> float:
    """Mean squared error between one-hot truth and predicted probabilities."""
    y_true = np.asarray(y_true)
    probs = np.asarray(probs, dtype=float)
    classes = list(classes)
    onehot = np.zeros_like(probs)
    index = {cls: j for j, cls in enumerate(classes)}
    for i, label in enumerate(y_true.tolist()):
        if label in index:
            onehot[i, index[label]] = 1.0
    return float(np.mean(np.sum((probs - onehot) ** 2, axis=1)))
