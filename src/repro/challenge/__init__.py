"""Data-centric challenges: debugging (clean) and DataPerf-style selection."""

from .challenge import ChallengeSubmission, DebuggingChallenge
from .leaderboard import Leaderboard, LeaderboardEntry
from .selection import SelectionChallenge, SelectionSubmission
from .service import leaderboard_request, register_challenge, submission_request

__all__ = [
    "ChallengeSubmission",
    "DebuggingChallenge",
    "Leaderboard",
    "LeaderboardEntry",
    "SelectionChallenge",
    "SelectionSubmission",
    "leaderboard_request",
    "register_challenge",
    "submission_request",
]
