"""Confident learning (Northcutt et al. [59]): uncertainty-based label-error
detection from out-of-sample predicted probabilities.

Unlike the game-theoretic methods, confident learning needs no validation
set and no repeated retraining: it cross-validates the model once, compares
each point's predicted class probabilities against per-class confidence
thresholds, and flags points whose given label is confidently contradicted.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..learn.base import Estimator, clone
from ..learn.model_selection import KFold
from ..learn.models.logistic import LogisticRegression
from .base import ImportanceResult

__all__ = ["out_of_sample_probabilities", "confident_learning"]


def out_of_sample_probabilities(
    model: Estimator, X: Any, y: Any, n_splits: int = 5, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """K-fold cross-validated class probabilities for every training point.

    Returns ``(probs, classes)`` where ``probs[i, j]`` is the probability of
    class ``classes[j]`` for point i, predicted by a model that never saw i.
    """
    X = np.asarray(X, dtype=float)
    y = np.asarray(y)
    classes = np.unique(y)
    probs = np.full((len(y), len(classes)), np.nan)
    n_splits = min(n_splits, len(y))
    for train_idx, test_idx in KFold(n_splits, seed=seed).split(len(y)):
        fold = clone(model).fit(X[train_idx], y[train_idx])
        fold_probs = fold.predict_proba(X[test_idx])
        # Align fold class order with the global class order.
        fold_classes = list(fold.classes_)
        for j, cls in enumerate(classes.tolist()):
            if cls in fold_classes:
                probs[test_idx, j] = fold_probs[:, fold_classes.index(cls)]
            else:
                probs[test_idx, j] = 0.0
    return probs, classes


def confident_learning(
    X: Any,
    y: Any,
    model: Estimator | None = None,
    n_splits: int = 5,
    seed: int = 0,
) -> ImportanceResult:
    """Rank points by self-confidence margin and flag probable label errors.

    The importance value of point i is ``p_i(given) − max_{j≠given} p_i(j)``
    (negative when another class is more probable than the given label), so
    probable label errors sort to the bottom, matching the library-wide
    convention. ``extras["flagged"]`` holds the boolean confident-learning
    verdicts and ``extras["confident_joint"]`` the estimated joint counts of
    (given label, true label).
    """
    if model is None:
        model = LogisticRegression()
    y = np.asarray(y)
    probs, classes = out_of_sample_probabilities(model, X, y, n_splits, seed)
    class_index = {cls: j for j, cls in enumerate(classes.tolist())}
    given = np.asarray([class_index[label] for label in y.tolist()])
    n, k = probs.shape

    # Per-class confidence thresholds: mean predicted probability of class j
    # among points *labelled* j.
    thresholds = np.empty(k)
    for j in range(k):
        members = given == j
        thresholds[j] = probs[members, j].mean() if members.any() else 1.0

    # Confident joint: point counted at (given, argmax over classes whose
    # probability clears that class's threshold).
    confident_joint = np.zeros((k, k), dtype=np.int64)
    suggested = given.copy()
    for i in range(n):
        above = np.flatnonzero(probs[i] >= thresholds)
        if len(above):
            winner = above[np.argmax(probs[i, above])]
            confident_joint[given[i], winner] += 1
            suggested[i] = winner
        else:
            confident_joint[given[i], given[i]] += 1
    flagged = suggested != given

    given_prob = probs[np.arange(n), given]
    other = probs.copy()
    other[np.arange(n), given] = -np.inf
    best_other = other.max(axis=1) if k > 1 else np.zeros(n)
    margin = given_prob - best_other
    return ImportanceResult(
        method="confident_learning",
        values=margin,
        extras={
            "flagged": flagged,
            "suggested_labels": classes[suggested],
            "confident_joint": confident_joint,
            "thresholds": thresholds,
            "classes": classes,
        },
    )
