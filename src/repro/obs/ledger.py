"""Append-only on-disk run store (JSONL, schema-versioned).

PR 3 gave the runtime in-process tracing and metrics, but every run's
telemetry died with the process. The ledger is the persistence layer: one
JSON line per run, appended atomically, recording everything
:func:`repro.obs.diff.compare_runs` needs to answer "what changed between
yesterday's run and today's?" — config/seed, a dataset fingerprint per
source, per-node quality profiles, the trace skeleton and metric snapshot
of the run's :class:`~repro.obs.report.TraceReport`, the quarantine
summary, and wall time.

Records are schema-versioned and CRC-framed (:func:`repro.obs.atomicio.
frame_line`): each line is a checksummed envelope, so a flipped bit — not
just a torn tail — is detected at load time. Loading is lenient but loud:
unknown fields are ignored, v1 (un-framed) ledgers still load, and corrupt
lines are quarantined to a ``<file>.corrupt`` sidecar with ``storage.*``
metrics and an alert (see :func:`repro.obs.atomicio.read_jsonl`) instead
of being skipped silently.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from .atomicio import LoadReport, atomic_append_line, frame_line, read_jsonl
from .quality import NodeQualityProfile, PipelineMonitor, fingerprint_frame

__all__ = ["RunRecord", "RunLedger", "LEDGER_SCHEMA_VERSION"]

#: Bump when the record layout changes incompatibly; readers keep ignoring
#: unknown fields either way.
LEDGER_SCHEMA_VERSION = 1


@dataclass
class RunRecord:
    """One ledger line: everything observed about a single run.

    ``kind`` distinguishes what produced the record — ``"pipeline"`` runs
    carry node profiles and dataset fingerprints; ``"cleaning"`` and
    ``"valuation"`` records (the hooks in :func:`repro.cleaning.iterative.
    iterative_cleaning` and :class:`repro.importance.engine.
    ValuationEngine`) carry their loop statistics in ``stats``.
    """

    run_id: str
    kind: str = "pipeline"
    schema_version: int = LEDGER_SCHEMA_VERSION
    created_at: float = 0.0
    config: dict[str, Any] = field(default_factory=dict)
    dataset: dict[str, Any] = field(default_factory=dict)
    nodes: dict[str, Any] = field(default_factory=dict)
    trace: dict[str, Any] = field(default_factory=dict)
    metrics: dict[str, Any] = field(default_factory=dict)
    quarantine: dict[str, Any] = field(default_factory=dict)
    stats: dict[str, Any] = field(default_factory=dict)
    rows_out: int | None = None
    wall_time_s: float | None = None
    tags: dict[str, Any] = field(default_factory=dict)

    def node_profiles(self) -> dict[str, NodeQualityProfile]:
        """Per-node quality profiles, rebuilt as typed objects."""
        return {
            key: NodeQualityProfile.from_dict(payload)
            for key, payload in self.nodes.items()
        }

    @property
    def quarantine_rate(self) -> float:
        """Quarantined rows per produced row (0.0 when nothing recorded)."""
        total = self.quarantine.get("total", 0)
        denominator = (self.rows_out or 0) + total
        return total / denominator if denominator else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "kind": self.kind,
            "schema_version": self.schema_version,
            "created_at": self.created_at,
            "config": self.config,
            "dataset": self.dataset,
            "nodes": self.nodes,
            "trace": self.trace,
            "metrics": self.metrics,
            "quarantine": self.quarantine,
            "stats": self.stats,
            "rows_out": self.rows_out,
            "wall_time_s": self.wall_time_s,
            "tags": self.tags,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunRecord":
        """Rebuild from a parsed line, ignoring unknown fields."""
        known = set(cls.__dataclass_fields__)
        data = {k: v for k, v in payload.items() if k in known}
        data.setdefault("run_id", "")
        return cls(**data)


def _default_run_id(kind: str, n_existing: int) -> str:
    return f"{kind}-{n_existing:04d}-{time.time_ns() & 0xFFFFFFFF:08x}-{os.getpid()}"


class RunLedger:
    """Append-only JSONL store of :class:`RunRecord`\\ s.

    ::

        ledger = nde.RunLedger("runs.jsonl")
        monitor = nde.monitor()
        with nde.tracing() as report:
            result = nde.execute_robust(sink, sources, monitor=monitor)
        ledger.record_run(
            result, monitor=monitor, sources=sources,
            config={"seed": 0}, report=report,
        )
        diff = nde.compare_runs(*ledger.last(2))

    The file is created lazily on first append; ``load`` re-reads from
    disk every time (the ledger is the source of truth, not this object).
    """

    def __init__(self, path: Any) -> None:
        self.path = Path(path)
        #: Accounting for the most recent :meth:`load` (quarantine counts,
        #: alerts); ``None`` until the first load.
        self.last_load_report: LoadReport | None = None

    # -- write -----------------------------------------------------------
    def append(self, record: RunRecord) -> RunRecord:
        """Append one CRC-framed record (one JSON line) atomically.

        The write goes through :func:`repro.obs.atomicio.atomic_append_line`
        (copy + append + fsync + rename + directory fsync), so a concurrent
        reader sees either the previous ledger or the previous ledger plus
        the whole new line — never a torn suffix — and an acknowledged
        append survives power loss. The validating :meth:`load` detects and
        quarantines any line corrupted after the fact.
        """
        if not record.created_at:
            record.created_at = time.time()
        atomic_append_line(self.path, frame_line(record.to_dict()))
        return record

    def record_run(
        self,
        result: Any = None,
        monitor: PipelineMonitor | None = None,
        sources: Mapping[str, Any] | None = None,
        config: Mapping[str, Any] | None = None,
        report: Any = None,
        run_id: str | None = None,
        wall_time_s: float | None = None,
        tags: Mapping[str, Any] | None = None,
    ) -> RunRecord:
        """Build and append a ``"pipeline"`` record from the run's artifacts.

        Parameters
        ----------
        result:
            A :class:`~repro.pipeline.execute.PipelineResult`; its
            quarantine summary, row count, and (when the run was monitored)
            per-node quality profiles are recorded.
        monitor:
            The :class:`PipelineMonitor` the run was executed with;
            defaults to the profiles already attached to ``result``.
        sources:
            The source frames the run bound — fingerprinted, not stored.
        report:
            A closed :class:`~repro.obs.report.TraceReport`; its span
            skeleton, per-name summary, and metric deltas are recorded.
        """
        nodes: dict[str, Any] = {}
        if monitor is not None:
            nodes = monitor.to_dict()
        elif result is not None and getattr(result, "quality_profiles", None):
            nodes = {
                key: prof.to_dict()
                for key, prof in result.quality_profiles.items()
            }
        quarantine: dict[str, Any] = {}
        rows_out = None
        if result is not None:
            rows_out = int(result.n_rows)
            quarantine = {
                "total": len(result.quarantine),
                "by_reason": result.quarantine.by_reason(),
            }
        trace: dict[str, Any] = {}
        metrics: dict[str, Any] = {}
        if report is not None:
            trace = {
                "span_names": report.span_names(),
                "summary": report.summary(),
                "total_duration_s": report.total_duration(),
            }
            metrics = dict(report.metrics)
            if wall_time_s is None:
                wall_time_s = report.total_duration()
        record = RunRecord(
            run_id=run_id or _default_run_id("run", len(self)),
            kind="pipeline",
            config=dict(config or {}),
            dataset={
                name: fingerprint_frame(frame)
                for name, frame in (sources or {}).items()
            },
            nodes=nodes,
            trace=trace,
            metrics=metrics,
            quarantine=quarantine,
            rows_out=rows_out,
            wall_time_s=wall_time_s,
            tags=dict(tags or {}),
        )
        return self.append(record)

    def record_event(
        self,
        kind: str,
        config: Mapping[str, Any] | None = None,
        stats: Mapping[str, Any] | None = None,
        run_id: str | None = None,
        wall_time_s: float | None = None,
        tags: Mapping[str, Any] | None = None,
    ) -> RunRecord:
        """Append a non-pipeline record (cleaning round, valuation, ...)."""
        record = RunRecord(
            run_id=run_id or _default_run_id(kind, len(self)),
            kind=kind,
            config=dict(config or {}),
            stats=dict(stats or {}),
            wall_time_s=wall_time_s,
            tags=dict(tags or {}),
        )
        return self.append(record)

    # -- read ------------------------------------------------------------
    def load(self) -> list[RunRecord]:
        """Every valid record, in append order.

        Corrupt lines (CRC failures, torn tails, garbage) are quarantined
        to ``<path>.corrupt`` with metrics and an alert — see
        :attr:`last_load_report` for the accounting — and the remaining
        records still load.
        """
        payloads, self.last_load_report = read_jsonl(
            self.path, artifact="ledger"
        )
        return [RunRecord.from_dict(payload) for payload in payloads]

    def last(self, n: int = 1) -> list[RunRecord]:
        """The most recent ``n`` records, oldest first."""
        return self.load()[-n:]

    def get(self, run_id: str) -> RunRecord:
        for record in self.load():
            if record.run_id == run_id:
                return record
        raise KeyError(f"no run {run_id!r} in {self.path}")

    def __len__(self) -> int:
        return len(self.load())

    def __iter__(self) -> Iterator[RunRecord]:
        return iter(self.load())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunLedger({str(self.path)!r}, runs={len(self)})"
