"""Symbolic (uncertain) datasets: the paper's ``nde.encode_symbolic``.

An :class:`UncertainDataset` is a feature matrix in which some cells are
known only up to an interval — the possible-worlds encoding of missing
values. Figure 4 of the paper builds exactly this object: inject MNAR
missingness into one feature, then treat each missing cell as ranging over
the feature's observed domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..errors.missing import inject_missing
from ..frame import DataFrame
from .intervals import Interval

__all__ = ["UncertainDataset", "encode_symbolic", "from_matrix_with_nans"]


@dataclass
class UncertainDataset:
    """Features with interval-valued cells, plus (possibly uncertain) labels.

    Attributes
    ----------
    X:
        ``(n, d)`` :class:`Interval`; certain cells are degenerate.
    y:
        Target vector (±1 for classification-as-regression, or a
        real-valued regression target) — the *center* value when labels are
        uncertain.
    uncertain_cells:
        Boolean ``(n, d)`` mask of the uncertain feature cells.
    y_radius:
        Optional per-row label uncertainty: the true target of row i lies in
        ``[y_i − y_radius_i, y_i + y_radius_i]`` (Figure 4's "uncertain
        labels"). Defaults to all-zeros (certain labels).
    feature_names:
        Column names for reporting.
    """

    X: Interval
    y: np.ndarray
    uncertain_cells: np.ndarray
    feature_names: list[str] = field(default_factory=list)
    y_radius: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.y = np.asarray(self.y, dtype=float)
        self.uncertain_cells = np.asarray(self.uncertain_cells, dtype=bool)
        if self.X.shape != self.uncertain_cells.shape:
            raise ValueError("uncertain_cells shape must match X")
        if len(self.y) != self.X.shape[0]:
            raise ValueError("y length must match X rows")
        if self.y_radius is None:
            self.y_radius = np.zeros(len(self.y))
        else:
            self.y_radius = np.asarray(self.y_radius, dtype=float)
            if self.y_radius.shape != self.y.shape:
                raise ValueError("y_radius shape must match y")
            if np.any(self.y_radius < 0):
                raise ValueError("y_radius must be non-negative")

    @property
    def n_rows(self) -> int:
        return self.X.shape[0]

    @property
    def n_features(self) -> int:
        return self.X.shape[1]

    @property
    def n_uncertain(self) -> int:
        return int(self.uncertain_cells.sum())

    def center_world(self) -> np.ndarray:
        """The midpoint completion (interval-midpoint imputation)."""
        return self.X.center

    def sample_world(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """One concrete possible world, uniform within each cell's interval."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        u = rng.random(self.X.shape)
        return self.X.lo + u * (self.X.hi - self.X.lo)

    def sample_labels(self, rng: np.random.Generator | int | None = None) -> np.ndarray:
        """One concrete label vector, uniform within each label's interval."""
        if not isinstance(rng, np.random.Generator):
            rng = np.random.default_rng(rng)
        u = rng.random(len(self.y))
        return self.y + (2.0 * u - 1.0) * self.y_radius

    def worlds(self, n: int, seed: int = 0) -> list[np.ndarray]:
        rng = np.random.default_rng(seed)
        return [self.sample_world(rng) for __ in range(n)]

    def standardized(self) -> tuple["UncertainDataset", np.ndarray, np.ndarray]:
        """Standardise features using center-world statistics.

        Affine maps are exact on intervals, so this introduces no slack.
        Returns the new dataset plus the (mean, scale) used.
        """
        center = self.X.center
        mean = center.mean(axis=0)
        scale = center.std(axis=0)
        scale = np.where(scale > 0, scale, 1.0)
        X = Interval((self.X.lo - mean) / scale, (self.X.hi - mean) / scale)
        return (
            UncertainDataset(
                X,
                self.y,
                self.uncertain_cells,
                list(self.feature_names),
                y_radius=self.y_radius.copy(),
            ),
            mean,
            scale,
        )


def from_matrix_with_nans(
    X: Any,
    y: Any,
    bounds: tuple[float, float] | None = None,
    feature_names: Sequence[str] | None = None,
) -> UncertainDataset:
    """Interpret NaN cells of a matrix as intervals over the column range."""
    X = np.asarray(X, dtype=float)
    y = np.asarray(y, dtype=float)
    missing = np.isnan(X)
    lo = X.copy()
    hi = X.copy()
    for j in range(X.shape[1]):
        col = X[:, j]
        present = col[~np.isnan(col)]
        if bounds is not None:
            col_lo, col_hi = bounds
        elif present.size:
            col_lo, col_hi = float(present.min()), float(present.max())
        else:
            col_lo, col_hi = 0.0, 0.0
        lo[missing[:, j], j] = col_lo
        hi[missing[:, j], j] = col_hi
    names = list(feature_names) if feature_names is not None else [
        f"x{j}" for j in range(X.shape[1])
    ]
    return UncertainDataset(Interval(lo, hi), y, missing, names)


def encode_symbolic(
    frame: DataFrame,
    uncertain_feature: str,
    feature_columns: Sequence[str],
    label_column: str,
    missing_percentage: float = 10.0,
    missingness: str = "MNAR",
    positive_label: Any = None,
    seed: int = 0,
) -> UncertainDataset:
    """Paper-style symbolic encoding (Figure 4's ``nde.encode_symbolic``).

    Injects ``missing_percentage`` % missing values into
    ``uncertain_feature`` under the given mechanism, then encodes the numeric
    ``feature_columns`` with missing cells as intervals over the observed
    column range. The label is encoded as ±1 when ``positive_label`` is
    given (classification-as-regression, the setting Zorro's linear-model
    analysis applies to), or taken as a float otherwise.
    """
    if uncertain_feature not in feature_columns:
        raise ValueError("uncertain_feature must be one of feature_columns")
    corrupted, report = inject_missing(
        frame,
        uncertain_feature,
        fraction=missing_percentage / 100.0,
        mechanism=missingness,
        seed=seed,
    )
    X = corrupted.to_numpy(list(feature_columns))
    labels = corrupted.column(label_column).to_list()
    if positive_label is not None:
        y = np.asarray([1.0 if v == positive_label else -1.0 for v in labels])
    else:
        y = np.asarray([float(v) for v in labels])
    dataset = from_matrix_with_nans(X, y, feature_names=list(feature_columns))
    dataset = UncertainDataset(
        dataset.X, dataset.y, dataset.uncertain_cells, dataset.feature_names
    )
    return dataset
