"""Atomic, checksummed file persistence — the durable state plane.

Every on-disk artifact this library produces (the :class:`~repro.obs.ledger.
RunLedger` JSONL, the job journal, trace exports, flight dumps, valuation
checkpoints) may be read while a writer is mid-flight and must survive the
writer being killed at any instant. This module is the single place those
guarantees are implemented, in three layers:

**Atomicity** — the classic ``write temp + fsync + rename`` protocol:
content is staged in a temporary file *in the target's directory* (same
filesystem, so the rename is atomic), flushed and fsync'd, then moved over
the target with :func:`os.replace`, after which the *parent directory* is
fsync'd too — without the directory sync, a power loss after the rename
was acknowledged can resurrect the old file from the directory's stale
metadata. Readers see either the old file or the new one, never a mixture;
a writer killed at any point leaves the target untouched.

**Integrity** — per-record CRC32 framing (:func:`frame_line` /
:func:`unframe`). Each JSONL record is wrapped in a one-line envelope::

    {"_env": 2, "crc": "1c291ca3", "data": {...original record...}}

The CRC is computed over the canonical JSON serialisation of ``data``
(sorted keys, compact separators), which survives a parse/re-serialise
round trip bit-exactly, so readers re-derive it from the parsed payload
alone. The envelope is still one JSON object per line — ``jq .data`` and
every other line-oriented tool keep working — and v1 (un-framed) records
load unchanged through :func:`unframe`'s pass-through, so old artifacts
stay readable forever.

**Recovery** — :func:`read_jsonl`, the validating loader every artifact
reader goes through. A record that fails to parse, fails its CRC, or is
not a JSON object is *quarantined*: the raw line is copied (deduplicated
by content CRC) into a ``<file>.corrupt`` sidecar next to the source,
``storage.*`` metrics are bumped, the event is flight-recorded, and a
severity-ranked :class:`~repro.obs.diff.Alert` is attached to the returned
:class:`LoadReport` — corruption is loud and accounted for, never a silent
``continue``. The surviving records still load.

Appends (:func:`atomic_append_line`) are implemented as copy + append +
rename under a cross-process ``fcntl`` advisory lock (:func:`advisory_lock`
on a ``<name>.lock`` sidecar), so concurrent service jobs appending to one
ledger serialize instead of clobbering; on platforms without ``fcntl``
(Windows) the lock degrades to a no-op.

Every write path funnels through :class:`IOHooks` call points
(:func:`install_io_hooks`), which is how :class:`repro.errors.chaos.
DiskChaos` injects storage faults — short writes, ENOSPC, EIO on fsync,
lying fsync, crash before/after rename — for the crash-consistency harness
(``tools/crashconsist.py``). Hooks are ``None`` in production: the fault
surface costs one ``is None`` check per commit.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Mapping, TextIO

try:  # POSIX only; Windows degrades to unlocked single-writer behavior.
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - exercised only on Windows
    _fcntl = None

__all__ = [
    "ENVELOPE_SCHEMA_VERSION",
    "IOHooks",
    "LoadReport",
    "SimulatedCrash",
    "advisory_lock",
    "atomic_writer",
    "atomic_write_text",
    "atomic_append_line",
    "canonical_json",
    "crc32_hex",
    "frame_line",
    "fsync_dir",
    "install_io_hooks",
    "io_hooks",
    "quarantine_file",
    "quarantine_path_for",
    "read_jsonl",
    "record_storage_alert",
    "storage_alerts",
    "unframe",
]

#: Version of the per-record envelope. v1 is "no envelope" (bare payload
#: per line); v2 wraps each payload as ``{"_env": 2, "crc": ..., "data":
#: ...}``. Readers accept both forever — the envelope only *adds* the
#: ability to detect corruption, it never gates loading.
ENVELOPE_SCHEMA_VERSION = 2

#: Maximum corrupt-record alerts retained process-wide (ring semantics).
_MAX_STORAGE_ALERTS = 256


class SimulatedCrash(BaseException):
    """An injected process death at an exact fault point.

    Derives from ``BaseException`` so production ``except Exception``
    handlers cannot absorb it — in-process chaos tests observe the same
    post-crash file state a real ``kill -9`` would leave (modulo the
    orphaned staging file, which loaders never see anyway). Subprocess
    harnesses use ``crash_mode="exit"`` (``os._exit``) instead.
    """


# ---------------------------------------------------------------------- #
# fault-injection hooks                                                  #
# ---------------------------------------------------------------------- #
class IOHooks:
    """Injection points for storage faults; every method is a no-op here.

    :func:`atomic_writer` calls, in commit order:

    1. :meth:`on_commit` — after the body wrote the staged content, before
       flush/fsync. May truncate the staged file (a short write) or raise
       ``OSError`` (ENOSPC).
    2. :meth:`on_fsync` — immediately before ``os.fsync`` of the staged
       file. May raise ``OSError`` (EIO) or return ``False`` to *skip* the
       real fsync (a lying disk).
    3. :meth:`on_replace` — around ``os.replace``, with ``when`` equal to
       ``"before"`` or ``"after"``. May crash the process.
    4. :meth:`on_dirsync` — before the parent-directory fsync; return
       ``False`` to skip it (the lying disk again).
    """

    def on_commit(self, path: Path, handle: TextIO) -> None:
        return None

    def on_fsync(self, path: Path, fileno: int) -> bool:
        return True

    def on_replace(self, tmp: str, path: Path, when: str) -> None:
        return None

    def on_dirsync(self, dirpath: Path) -> bool:
        return True


_IO_HOOKS: IOHooks | None = None


def install_io_hooks(hooks: IOHooks | None) -> IOHooks | None:
    """Install (or with ``None`` clear) the process-wide IO fault hooks.

    Returns the previously installed hooks so callers can restore them.
    Prefer the :func:`io_hooks` context manager in tests.
    """
    global _IO_HOOKS
    previous = _IO_HOOKS
    _IO_HOOKS = hooks
    return previous


@contextmanager
def io_hooks(hooks: IOHooks) -> Iterator[IOHooks]:
    """Scoped :func:`install_io_hooks`: restores the previous hooks on exit."""
    previous = install_io_hooks(hooks)
    try:
        yield hooks
    finally:
        install_io_hooks(previous)


def fsync_dir(dirpath: Any) -> bool:
    """fsync a directory so a just-renamed entry survives power loss.

    ``os.replace`` makes the rename atomic against *readers*; making it
    durable against *power loss* additionally requires flushing the parent
    directory's metadata, or the old file can come back after the new one
    was acknowledged. Returns False on platforms/filesystems where
    directories cannot be opened or fsync'd (best-effort by design).
    """
    hooks = _IO_HOOKS
    if hooks is not None and not hooks.on_dirsync(Path(dirpath)):
        return False
    try:
        fd = os.open(os.fspath(dirpath), os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic platforms
        return False
    try:
        os.fsync(fd)
        return True
    except OSError:  # pragma: no cover - directory fsync unsupported
        return False
    finally:
        os.close(fd)


# ---------------------------------------------------------------------- #
# cross-process advisory locking                                         #
# ---------------------------------------------------------------------- #
@contextmanager
def advisory_lock(path: Any) -> Iterator[bool]:
    """Hold an exclusive cross-process advisory lock scoped to ``path``.

    The lock lives on a ``<name>.lock`` sidecar file (never on the target
    itself — the target is replaced by rename, which would orphan a lock
    held on its inode). Yields True while the lock is held, or False when
    ``fcntl`` is unavailable and the caller proceeds unlocked. Reentrant
    use within one process deadlocks by design — hold it briefly around a
    single read-modify-rename cycle.
    """
    if _fcntl is None:
        yield False
        return
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lock_path = path.with_name(path.name + ".lock")
    with open(lock_path, "a", encoding="utf-8") as handle:
        _fcntl.flock(handle.fileno(), _fcntl.LOCK_EX)
        try:
            yield True
        finally:
            _fcntl.flock(handle.fileno(), _fcntl.LOCK_UN)


# ---------------------------------------------------------------------- #
# atomic write protocol                                                  #
# ---------------------------------------------------------------------- #
@contextmanager
def atomic_writer(path: Any, encoding: str = "utf-8") -> Iterator[TextIO]:
    """Context manager yielding a text handle whose contents replace ``path``
    atomically *and durably* on clean exit.

    The commit sequence is stage → fsync(file) → rename → fsync(directory);
    a crash at any point leaves either the old target or the complete new
    one, and once the context exits the new content survives power loss.
    On an exception inside the body, the staging file is removed and the
    target is left exactly as it was — a crashed writer is invisible.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        hooks = _IO_HOOKS
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            yield handle
            if hooks is not None:
                hooks.on_commit(path, handle)
            handle.flush()
            if hooks is None or hooks.on_fsync(path, handle.fileno()):
                os.fsync(handle.fileno())
        if hooks is not None:
            hooks.on_replace(tmp_name, path, "before")
        os.replace(tmp_name, path)
        if hooks is not None:
            hooks.on_replace(tmp_name, path, "after")
        fsync_dir(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def atomic_write_text(path: Any, text: str, encoding: str = "utf-8") -> None:
    """Replace ``path``'s contents with ``text`` atomically and durably."""
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)


def atomic_append_line(
    path: Any, line: str, encoding: str = "utf-8", lock: bool = True
) -> None:
    """Append one line to ``path`` so readers never see a torn suffix.

    The existing contents are copied to a staging file, the new line is
    appended (a trailing newline is added if missing), and the staging file
    is renamed over the original — followed by a parent-directory fsync, so
    the acknowledged append also survives power loss (this covers the first
    creation of an append target too). Concurrent readers observe either
    the old file or the old file plus the complete new line — never a
    prefix of it.

    With ``lock=True`` (the default) the whole read-append-rename cycle
    runs under :func:`advisory_lock`, so concurrent *writers* in separate
    processes serialize instead of renaming over each other's lines. Pass
    ``lock=False`` only when the caller already holds the lock or is
    provably the sole writer.
    """
    path = Path(path)
    if not line.endswith("\n"):
        line += "\n"

    def append() -> None:
        tail = b"\n"
        if path.exists() and path.stat().st_size > 0:
            with open(path, "rb") as src:
                src.seek(-1, os.SEEK_END)
                tail = src.read(1)
        with atomic_writer(path, encoding=encoding) as handle:
            # Copy the existing bytes verbatim (no decode/encode round
            # trip — the copy is the O(file) cost of every append).
            handle.flush()
            buffer = handle.buffer
            if path.exists():
                with open(path, "rb") as src:
                    shutil.copyfileobj(src, buffer, 1 << 20)
            if tail != b"\n":
                # A torn tail from a non-atomic writer: quarantine it
                # behind a newline so the validating loader isolates
                # exactly one bad record instead of fusing it with the
                # new line.
                buffer.write(b"\n")
            buffer.write(line.encode(encoding))

    if lock:
        with advisory_lock(path):
            append()
    else:
        append()


# ---------------------------------------------------------------------- #
# CRC32 envelope framing                                                 #
# ---------------------------------------------------------------------- #
def crc32_hex(text: str) -> str:
    """CRC32 of ``text`` (UTF-8) as 8 lowercase hex digits."""
    return f"{zlib.crc32(text.encode('utf-8')) & 0xFFFFFFFF:08x}"


def canonical_json(data: Any, default: Callable[[Any], Any] | None = None) -> str:
    """The canonical serialisation the record CRC is computed over.

    Sorted keys + compact separators make the text a pure function of the
    parsed value, and ``json.dumps(json.loads(text))`` reproduces ``text``
    bit-exactly (floats round-trip through ``repr``), so a reader can
    re-derive the writer's CRC from the parsed payload alone.
    """
    return json.dumps(data, sort_keys=True, separators=(",", ":"), default=default)


def frame_line(data: Any, default: Callable[[Any], Any] | None = None) -> str:
    """Wrap one record in the v2 checksummed envelope (one line, no ``\\n``).

    The envelope is assembled around the exact canonical text the CRC was
    computed over, so writer and reader can never disagree about what was
    checksummed. ``default`` is forwarded to ``json.dumps`` for payloads
    carrying non-JSON-native values (e.g. flight events use ``repr``).
    """
    payload = canonical_json(data, default=default)
    return (
        f'{{"_env":{ENVELOPE_SCHEMA_VERSION},"crc":"{crc32_hex(payload)}",'
        f'"data":{payload}}}'
    )


def unframe(obj: Any) -> tuple[Any, str | None]:
    """Unwrap one parsed record: ``(payload, error_reason)``.

    - v2 envelope with a valid CRC → ``(data, None)``;
    - v2 envelope failing its CRC or structurally broken →
      ``(None, "crc_mismatch" | "envelope_malformed")``;
    - anything else → ``(obj, None)`` — the v1 pass-through that keeps
      un-framed artifacts loading forever.
    """
    if isinstance(obj, Mapping) and "_env" in obj:
        if "crc" not in obj or "data" not in obj:
            return None, "envelope_malformed"
        data = obj["data"]
        if crc32_hex(canonical_json(data)) != obj["crc"]:
            return None, "crc_mismatch"
        return data, None
    return obj, None


# ---------------------------------------------------------------------- #
# validating loader with quarantine                                      #
# ---------------------------------------------------------------------- #
@dataclass
class LoadReport:
    """Accounting for one :func:`read_jsonl` pass over an artifact."""

    path: str
    artifact: str
    n_loaded: int = 0
    n_quarantined: int = 0
    #: Quarantined records *new to this load* (not already in the sidecar);
    #: metrics and alerts count these, so re-loading a damaged file does
    #: not re-alert for the same bytes.
    n_quarantined_new: int = 0
    reasons: dict[str, int] = field(default_factory=dict)
    alerts: list[Any] = field(default_factory=list)
    quarantine_path: str | None = None

    @property
    def clean(self) -> bool:
        return self.n_quarantined == 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "path": self.path,
            "artifact": self.artifact,
            "n_loaded": self.n_loaded,
            "n_quarantined": self.n_quarantined,
            "n_quarantined_new": self.n_quarantined_new,
            "reasons": dict(self.reasons),
            "quarantine_path": self.quarantine_path,
            "alerts": [
                a.to_dict() if hasattr(a, "to_dict") else a for a in self.alerts
            ],
        }


#: Process-wide ring of storage-corruption alerts, newest last. Surfaced
#: so a service can answer "has any artifact rotted?" without holding on
#: to every LoadReport.
_STORAGE_ALERTS: list[Any] = []


def storage_alerts(clear: bool = False) -> list[Any]:
    """Storage-corruption alerts accumulated this process (newest last)."""
    out = list(_STORAGE_ALERTS)
    if clear:
        _STORAGE_ALERTS.clear()
    return out


def quarantine_path_for(path: Any) -> Path:
    """The ``<file>.corrupt`` sidecar a damaged record is quarantined to."""
    path = Path(path)
    return path.with_name(path.name + ".corrupt")


def record_storage_alert(alert: Any) -> None:
    """Add one alert to the process-wide storage-corruption ring."""
    _STORAGE_ALERTS.append(alert)
    del _STORAGE_ALERTS[:-_MAX_STORAGE_ALERTS]


def quarantine_file(path: Any, artifact: str, reason: str) -> LoadReport:
    """Quarantine an entire damaged single-document artifact.

    Whole-file counterpart of the per-line quarantine inside
    :func:`read_jsonl`, used for artifacts that are one JSON document (a
    valuation checkpoint) rather than JSONL: the full body is copied into
    the ``<path>.corrupt`` sidecar as one ``quarantined_record`` (same
    dedup, metrics, flight-recording, and alerting). The source file is
    left in place — recovery (e.g. archive fallback) decides what replaces
    it.
    """
    path = Path(path)
    report = LoadReport(path=str(path), artifact=artifact)
    try:
        raw = path.read_text(encoding="utf-8", errors="replace")
    except OSError:
        raw = ""
    report.n_quarantined = 1
    report.reasons[reason] = 1
    _emit_quarantine(path, artifact, [(0, raw.rstrip("\n"), reason)], report)
    return report


def _make_alert(severity: str, artifact: str, path: Path, n_bad: int,
                n_loaded: int, reasons: Mapping[str, int]) -> Any:
    # Imported lazily: diff sits above atomicio in the layer order.
    from .diff import Alert

    detail = ", ".join(f"{k}×{v}" for k, v in sorted(reasons.items()))
    return Alert(
        severity=severity,
        kind="storage_corruption",
        node=artifact,
        column=None,
        metric="storage.records_quarantined",
        value=float(n_bad),
        threshold=0.0,
        message=(
            f"{n_bad} corrupt record(s) quarantined from {path} "
            f"({detail}); {n_loaded} record(s) still loaded"
        ),
    )


def _emit_quarantine(
    path: Path,
    artifact: str,
    corrupt: list[tuple[int, str, str]],
    report: LoadReport,
) -> None:
    """Sidecar the corrupt lines, bump metrics, flight-record, alert.

    ``corrupt`` is ``[(line_no, raw_line, reason), ...]``. Sidecar records
    are themselves framed (the quarantine file is a first-class artifact)
    and deduplicated by the raw line's CRC + line number, so repeated loads
    of a damaged file account each bad record exactly once.
    """
    sidecar = quarantine_path_for(path)
    report.quarantine_path = str(sidecar)
    with advisory_lock(sidecar):
        seen: set[tuple[str, int]] = set()
        if sidecar.exists():
            with open(sidecar, "r", encoding="utf-8", errors="replace") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        payload, err = unframe(json.loads(line))
                    except json.JSONDecodeError:
                        continue
                    if err is None and isinstance(payload, Mapping):
                        seen.add(
                            (
                                str(payload.get("raw_crc", "")),
                                int(payload.get("line_no", -1)),
                            )
                        )
        fresh: list[str] = []
        now = time.time()
        for line_no, raw, reason in corrupt:
            key = (crc32_hex(raw), line_no)
            if key in seen:
                continue
            seen.add(key)
            fresh.append(
                frame_line(
                    {
                        "kind": "quarantined_record",
                        "artifact": artifact,
                        "source": str(path),
                        "line_no": line_no,
                        "reason": reason,
                        "raw": raw,
                        "raw_crc": key[0],
                        "ts": now,
                    }
                )
            )
        if fresh:
            existing = ""
            if sidecar.exists():
                with open(sidecar, "r", encoding="utf-8", errors="replace") as handle:
                    existing = handle.read()
                if existing and not existing.endswith("\n"):
                    existing += "\n"
            with atomic_writer(sidecar) as handle:
                handle.write(existing)
                handle.write("\n".join(fresh) + "\n")
    report.n_quarantined_new = len(fresh)
    if not fresh:
        return
    # Error-path telemetry is unconditional: corruption must be visible
    # even in processes that never enabled tracing.
    from . import flight as _flight
    from . import metrics as _metrics

    _metrics.counter("storage.records_quarantined", artifact=artifact).inc(
        len(fresh)
    )
    _metrics.counter("storage.quarantined_bytes", artifact=artifact).inc(
        sum(len(raw) for _, raw, _ in corrupt)
    )
    _flight.record(
        "storage.quarantine",
        artifact=artifact,
        path=str(path),
        sidecar=str(sidecar),
        new_records=len(fresh),
        reasons=dict(report.reasons),
    )
    severity = "critical" if report.n_loaded == 0 else "warn"
    alert = _make_alert(
        severity, artifact, path, len(fresh), report.n_loaded, report.reasons
    )
    report.alerts.append(alert)
    _STORAGE_ALERTS.append(alert)
    del _STORAGE_ALERTS[:-_MAX_STORAGE_ALERTS]


def read_jsonl(
    path: Any,
    artifact: str | None = None,
    quarantine: bool = True,
    require_objects: bool = True,
) -> tuple[list[Any], LoadReport]:
    """Load a JSONL artifact, validating CRCs and quarantining damage.

    Returns ``(payloads, report)``. Framed (v2) records are CRC-verified
    and unwrapped; bare (v1) records pass through. A record that fails to
    parse, fails its CRC, or (with ``require_objects``) is not a JSON
    object is quarantined to ``<path>.corrupt`` — deduplicated, metered
    (``storage.*`` counters), flight-recorded, and surfaced as an
    :class:`~repro.obs.diff.Alert` on the report — and loading continues.
    Blank lines are ignored. A missing file is an empty, clean load.
    """
    path = Path(path)
    artifact = artifact or path.name
    report = LoadReport(path=str(path), artifact=artifact)
    if not path.exists():
        return [], report
    payloads: list[Any] = []
    corrupt: list[tuple[int, str, str]] = []

    def bad(line_no: int, raw: str, reason: str) -> None:
        report.n_quarantined += 1
        report.reasons[reason] = report.reasons.get(reason, 0) + 1
        corrupt.append((line_no, raw, reason))

    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle):
            raw = line.strip()
            if not raw:
                continue
            try:
                obj = json.loads(raw)
            except json.JSONDecodeError:
                bad(line_no, raw, "not_json")
                continue
            payload, err = unframe(obj)
            if err is not None:
                bad(line_no, raw, err)
                continue
            if require_objects and not isinstance(payload, Mapping):
                bad(line_no, raw, "not_object")
                continue
            payloads.append(payload)
            report.n_loaded += 1
    if corrupt and quarantine:
        _emit_quarantine(path, artifact, corrupt, report)
    return payloads, report
