"""Property tests of the canonical-pipeline compiler.

Hypothesis generates random *compilable* pipelines (chains of filters,
row-wise maps, and projections over one or two sources, ending in an
encode) and asserts the compiler's contracts:

- round-trip: the emitted provenance polynomials reconstruct exactly the
  provenance the executor recorded (``CanonicalPipeline.validate``);
- determinism: recompiling — and re-executing then recompiling — yields
  the identical fingerprint, groups, and node classification;
- rejection: non-compilable constructs (aggregate maps, self-joins where
  the attribution source reaches both join inputs) always raise
  :class:`CanonicalCompileError` naming the offending node.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frame import DataFrame
from repro.learn import ColumnTransformer, StandardScaler
from repro.pipeline import (
    CanonicalCompileError,
    PipelinePlan,
    classify_nodes,
    compile_pipeline,
    execute,
)

seeds = st.integers(min_value=0, max_value=10_000)

# Each op is (tag, parameter); applied in sequence on top of the source.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("filter"), st.floats(min_value=-1.0, max_value=1.0)),
        st.tuples(st.just("map"), st.sampled_from(["a+b", "a*b", "a-b"])),
        st.tuples(st.just("project"), st.just(None)),
    ),
    min_size=0,
    max_size=4,
)

MAP_FUNCS = {
    "a+b": lambda df: df["a"] + df["b"],
    "a*b": lambda df: df["a"] * df["b"],
    "a-b": lambda df: df["a"] - df["b"],
}


def _encoder():
    return ColumnTransformer([(StandardScaler(), ["a", "b"])])


def _frame(n, seed, with_key=False):
    rng = np.random.default_rng(seed)
    data = {
        "a": rng.normal(size=n),
        "b": rng.normal(size=n),
        "y": rng.integers(0, 2, size=n),
    }
    if with_key:
        data["key"] = ["k%d" % (i % 3) for i in range(n)]
    return DataFrame(data, row_ids=np.arange(n))


def _build(op_list, seed, joined):
    """Random compilable pipeline; returns (sink, frames, source_name)."""
    plan = PipelinePlan()
    node = plan.source("train_df")
    frames = {"train_df": _frame(10, seed, with_key=joined)}
    if joined:
        side = DataFrame(
            {"key": ["k0", "k1", "k2"], "w": [0.1, 0.2, 0.3]},
            row_ids=[500, 501, 502],
        )
        frames["side_df"] = side
        node = node.join(plan.source("side_df"), on="key")
    for i, (tag, param) in enumerate(op_list):
        if tag == "filter":
            # Capture param by value; keep at least a loose predicate so
            # most generated pipelines keep some rows.
            node = node.filter(
                (lambda t: lambda df: df["a"] > t)(param), f"a > {param:.2f}"
            )
        elif tag == "map":
            node = node.with_column(f"m{i}", MAP_FUNCS[param], param)
        else:
            keep = ["a", "b", "y"] + (["key"] if joined else [])
            node = node.project(keep)
    sink = node.encode(_encoder(), label_column="y")
    return sink, frames


class TestRoundTrip:
    @given(op_list=ops, seed=seeds, joined=st.booleans())
    @settings(max_examples=40, deadline=None)
    def test_compiled_polynomials_round_trip_provenance(self, op_list, seed, joined):
        sink, frames = _build(op_list, seed, joined)
        result = execute(sink, frames)
        if result.n_rows == 0:
            return  # filters dropped everything; compile rejects, tested below
        compiled = compile_pipeline(result, source="train_df")
        compiled.validate(result.provenance)
        # Every group position is a real output row, every output row is
        # owned by exactly one player.
        owned = np.concatenate(
            [g for g in compiled.groups if len(g)] or [np.array([], dtype=np.int64)]
        )
        assert sorted(owned.tolist()) == list(range(result.n_rows))
        # Groups sizes mirror the executor's provenance fan-out.
        for rid, group in zip(compiled.player_row_ids, compiled.groups):
            expect = [
                i
                for i, tuples in enumerate(result.provenance.tuples)
                if any(s == "train_df" and r == rid for s, r in tuples)
            ]
            assert group.tolist() == expect

    @given(op_list=ops, seed=seeds, joined=st.booleans())
    @settings(max_examples=25, deadline=None)
    def test_compile_is_deterministic(self, op_list, seed, joined):
        sink, frames = _build(op_list, seed, joined)
        result = execute(sink, frames)
        if result.n_rows == 0:
            return
        first = compile_pipeline(result, source="train_df")
        again = compile_pipeline(result, source="train_df")
        rerun = compile_pipeline(execute(sink, frames), source="train_df")
        for other in (again, rerun):
            assert other.fingerprint == first.fingerprint
            assert other.form == first.form
            assert other.node_classes == first.node_classes
            assert other.player_row_ids.tolist() == first.player_row_ids.tolist()
            for g1, g2 in zip(first.groups, other.groups):
                assert g1.tolist() == g2.tolist()

    @given(op_list=ops, seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_single_source_chains_are_map_form(self, op_list, seed):
        sink, frames = _build(op_list, seed, joined=False)
        result = execute(sink, frames)
        if result.n_rows == 0:
            return
        compiled = compile_pipeline(result, source="train_df")
        assert compiled.form == "map"
        assert all(len(g) <= 1 for g in compiled.groups)


class TestRejection:
    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_aggregate_map_always_rejected(self, seed):
        plan = PipelinePlan()
        node = plan.source("train_df").with_column(
            "mean_a",
            lambda df: np.full(len(df["a"]), df["a"].mean()),
            "mean(a)", aggregate=True,
        )
        sink = node.encode(_encoder(), label_column="y")
        result = execute(sink, {"train_df": _frame(8, seed)})
        with pytest.raises(CanonicalCompileError, match="aggregation") as exc:
            compile_pipeline(result, source="train_df")
        assert exc.value.node_kind == "map"
        assert f"#{node.id}" in str(exc.value)
        with pytest.raises(CanonicalCompileError):
            classify_nodes(sink, "train_df")

    @given(seed=seeds)
    @settings(max_examples=15, deadline=None)
    def test_self_join_always_rejected(self, seed):
        # The attribution source reaches both join inputs → conjunction
        # polynomials, not compilable to additive canonical form.
        plan = PipelinePlan()
        src = plan.source("train_df")
        joined = src.join(src, on="key")
        sink = joined.encode(_encoder(), label_column="y")
        result = execute(sink, {"train_df": _frame(6, seed, with_key=True)})
        with pytest.raises(CanonicalCompileError, match="both join inputs") as exc:
            compile_pipeline(result, source="train_df")
        assert exc.value.node_id == joined.id

    def test_empty_output_rejected_with_diagnostic(self):
        plan = PipelinePlan()
        sink = (
            plan.source("train_df")
            .filter(lambda df: df["a"] > 1e9, "a > 1e9")
            .encode(_encoder(), label_column="y")
        )
        result = execute(sink, {"train_df": _frame(6, seed=0)})
        assert result.n_rows == 0
        with pytest.raises(CanonicalCompileError, match="no output rows"):
            compile_pipeline(result, source="train_df")
