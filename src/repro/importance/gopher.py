"""Gopher-style fairness debugging (Pradhan et al. [66]).

Gopher explains *why a model is unfair* by searching for compact, human-
readable predicates over the training data whose removal most reduces a
group-fairness violation. The explanation unit is a first-order predicate
("sector = finance AND degree = none"), not an individual tuple — which is
what makes the output interpretable to a data engineer.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Any, Callable

import numpy as np

from ..frame import DataFrame
from ..learn.base import Estimator, clone
from .engine import parallel_map

__all__ = ["Predicate", "FairnessExplanation", "gopher_explanations"]


@dataclass(frozen=True)
class Predicate:
    """A conjunction of column = value conditions."""

    conditions: tuple[tuple[str, Any], ...]

    def mask(self, frame: DataFrame) -> np.ndarray:
        out = np.ones(frame.num_rows, dtype=bool)
        for column, value in self.conditions:
            out &= frame.column(column) == value
        return out

    def __str__(self) -> str:
        return " AND ".join(f"{c} = {v!r}" for c, v in self.conditions)


@dataclass
class FairnessExplanation:
    """One candidate repair: remove the predicate's subset, bias drops."""

    predicate: Predicate
    support: int
    bias_before: float
    bias_after: float
    accuracy_before: float
    accuracy_after: float

    @property
    def bias_reduction(self) -> float:
        return self.bias_before - self.bias_after

    @property
    def accuracy_cost(self) -> float:
        return self.accuracy_before - self.accuracy_after

    @property
    def interestingness(self) -> float:
        """Bias reduction per removed tuple, Gopher's ranking heuristic."""
        return self.bias_reduction / max(self.support, 1)


def _candidate_predicates(
    frame: DataFrame,
    columns: list[str],
    max_conjuncts: int,
    max_values_per_column: int,
) -> list[Predicate]:
    atoms: list[tuple[str, Any]] = []
    for column in columns:
        counts = frame.column(column).value_counts()
        frequent = sorted(counts, key=counts.get, reverse=True)[:max_values_per_column]
        atoms.extend((column, value) for value in frequent)
    predicates = [Predicate((atom,)) for atom in atoms]
    if max_conjuncts >= 2:
        for a, b in combinations(atoms, 2):
            if a[0] != b[0]:  # conjunctions over distinct columns only
                predicates.append(Predicate(tuple(sorted((a, b)))))
    return predicates


def gopher_explanations(
    frame: DataFrame,
    model: Estimator,
    featurize: Callable[[DataFrame], np.ndarray],
    label_column: str,
    bias_metric: Callable[[Estimator], float],
    accuracy_metric: Callable[[Estimator], float],
    explain_columns: list[str] | None = None,
    max_conjuncts: int = 2,
    max_values_per_column: int = 5,
    min_support: int = 5,
    max_support_fraction: float = 0.5,
    max_accuracy_cost: float = 0.05,
    top_k: int = 10,
    n_workers: int = 1,
) -> list[FairnessExplanation]:
    """Rank predicate-removal repairs by bias reduction per removed tuple.

    Parameters
    ----------
    featurize:
        Maps a (filtered) training frame to a feature matrix; called for
        every candidate subset so encoders refit on the reduced data.
    bias_metric, accuracy_metric:
        Callables evaluating a *fitted* model (typically closures over a
        held-out test set and a protected attribute).
    explain_columns:
        Categorical columns predicates may mention; defaults to all string
        columns except the label.
    max_accuracy_cost:
        Candidate repairs that lower accuracy by more than this are
        discarded — a repair that fixes fairness by destroying the model is
        not an explanation (Gopher's accuracy constraint).
    n_workers:
        Candidate retrainings are independent, so they fan out over this
        many worker processes (``repro.importance.engine.parallel_map``).
        Distinct predicates selecting the *same* removal set are fitted
        once either way. The ranking does not depend on ``n_workers``.
    """
    y_all = np.asarray(frame.column(label_column).to_list())
    baseline = clone(model).fit(featurize(frame), y_all)
    bias_before = float(bias_metric(baseline))
    accuracy_before = float(accuracy_metric(baseline))

    if explain_columns is None:
        explain_columns = [
            c
            for c in frame.columns
            if c != label_column and frame.column(c).dtype_kind == "string"
        ]
    # Screen candidates first (cheap mask work), then retrain. Distinct
    # predicates can select the same removal set; key on the remaining-row
    # mask so each distinct subset is fitted exactly once.
    candidates: list[tuple[Predicate, int, bytes]] = []
    unique_masks: dict[bytes, np.ndarray] = {}
    for predicate in _candidate_predicates(
        frame, explain_columns, max_conjuncts, max_values_per_column
    ):
        removal_mask = predicate.mask(frame)
        support = int(removal_mask.sum())
        if support < min_support or support > max_support_fraction * frame.num_rows:
            continue
        keep_mask = ~removal_mask
        y = np.asarray(frame.filter(keep_mask).column(label_column).to_list())
        if len(np.unique(y)) < 2:
            continue
        key = keep_mask.tobytes()
        unique_masks.setdefault(key, keep_mask)
        candidates.append((predicate, support, key))

    def fit_candidate(keep_mask: np.ndarray) -> tuple[float, float]:
        remaining = frame.filter(keep_mask)
        y = np.asarray(remaining.column(label_column).to_list())
        fitted = clone(model).fit(featurize(remaining), y)
        return float(bias_metric(fitted)), float(accuracy_metric(fitted))

    keys = list(unique_masks)
    outcomes = parallel_map(
        fit_candidate, [unique_masks[key] for key in keys], n_workers=n_workers
    )
    by_key = dict(zip(keys, outcomes))

    explanations: list[FairnessExplanation] = []
    for predicate, support, key in candidates:
        bias_after, accuracy_after = by_key[key]
        explanation = FairnessExplanation(
            predicate=predicate,
            support=support,
            bias_before=bias_before,
            bias_after=bias_after,
            accuracy_before=accuracy_before,
            accuracy_after=accuracy_after,
        )
        if explanation.accuracy_cost <= max_accuracy_cost:
            explanations.append(explanation)
    explanations.sort(key=lambda e: e.interestingness, reverse=True)
    return explanations[:top_k]
