"""Fault-tolerant pipeline execution: policies, guards, and quarantine.

The seed executor is strictly fail-fast: one malformed row inside a UDF (or
one poisonous join key) aborts the whole run with a raw traceback and no
record of which source tuples were responsible. This module supplies the
primitives that :func:`repro.pipeline.execute.execute` uses to turn those
crashes into a first-class, provenance-attributed signal:

- :class:`ErrorPolicy` — what to do when an operator fails on a row
  (``fail_fast`` | ``skip_and_quarantine`` | ``substitute_default``), plus
  retry-with-backoff for transient failures and a wall-clock timeout guard;
- :class:`ExecutionPolicy` — per-node / per-kind policy resolution with a
  default, so one pipeline can e.g. quarantine around UDFs but stay strict
  at the encode boundary;
- :class:`Quarantine` — the record of every dropped row, carrying its
  why-provenance so quarantined rows feed straight into
  :mod:`repro.importance` / :class:`repro.errors.ErrorReport` consumers as
  *identified* data errors rather than lost information.

Under a non-fail-fast policy the executor keeps the vectorised fast path:
it first evaluates the operator over the whole frame and only falls back to
row-wise evaluation when that raises, so clean data pays nothing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs

__all__ = [
    "FAIL_FAST",
    "SKIP_AND_QUARANTINE",
    "SUBSTITUTE_DEFAULT",
    "ErrorPolicy",
    "ExecutionPolicy",
    "OperatorError",
    "OperatorTimeoutError",
    "TransientError",
    "Quarantine",
    "QuarantineRecord",
    "call_with_timeout",
    "retry_call",
]

FAIL_FAST = "fail_fast"
SKIP_AND_QUARANTINE = "skip_and_quarantine"
SUBSTITUTE_DEFAULT = "substitute_default"
_MODES = (FAIL_FAST, SKIP_AND_QUARANTINE, SUBSTITUTE_DEFAULT)


class TransientError(RuntimeError):
    """Marker for failures worth retrying (flaky I/O, injected chaos, ...)."""


class OperatorError(RuntimeError):
    """An operator failed; carries node context for diagnostics."""

    def __init__(
        self, message: str, node_id: int = -1, node_kind: str = "", node_label: str = ""
    ) -> None:
        super().__init__(message)
        self.node_id = node_id
        self.node_kind = node_kind
        self.node_label = node_label


class OperatorTimeoutError(OperatorError):
    """An operator exceeded its wall-clock timeout budget."""


# ----------------------------------------------------------------------
# Policies
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ErrorPolicy:
    """How one operator responds to failures.

    Attributes
    ----------
    on_error:
        ``fail_fast`` re-raises (the seed behaviour), ``skip_and_quarantine``
        drops the offending rows into the run's :class:`Quarantine`, and
        ``substitute_default`` keeps the rows with :attr:`default` standing
        in for the value the operator could not produce.
    default:
        Substitute value. For filters its truthiness decides whether the
        row survives; for maps it becomes the output cell.
    max_retries / backoff / backoff_factor / retry_on:
        Retry-with-backoff for *transient* operator failures. Only
        exception types in ``retry_on`` are retried; the delay before
        attempt ``i`` is ``backoff * backoff_factor**(i - 1)`` seconds.
    timeout:
        Wall-clock budget in seconds for one operator evaluation (and,
        during row-wise fallback, for each row). ``None`` disables the
        guard.
    guard_types:
        Under a non-fail-fast policy, treat map-output cells whose Python
        type disagrees with the column majority (e.g. a stray string in a
        numeric column) as row failures — the silent-corruption guard.
    guard_nonfinite:
        Under a non-fail-fast policy, quarantine output rows whose encoded
        feature vector contains non-finite values (NaN/inf that survived
        imputation) instead of shipping them to the trainer.
    """

    on_error: str = FAIL_FAST
    default: Any = None
    max_retries: int = 0
    backoff: float = 0.05
    backoff_factor: float = 2.0
    retry_on: tuple[type, ...] = (TransientError,)
    timeout: float | None = None
    guard_types: bool = True
    guard_nonfinite: bool = True

    def __post_init__(self) -> None:
        if self.on_error not in _MODES:
            raise ValueError(
                f"unknown on_error mode {self.on_error!r}; expected one of {_MODES}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive (or None)")

    @property
    def is_fail_fast(self) -> bool:
        return self.on_error == FAIL_FAST

    @property
    def keeps_row_on_error(self) -> bool:
        return self.on_error == SUBSTITUTE_DEFAULT

    # Convenience constructors --------------------------------------------
    @classmethod
    def fail_fast(cls, **overrides: Any) -> "ErrorPolicy":
        return cls(on_error=FAIL_FAST, **overrides)

    @classmethod
    def skip(cls, **overrides: Any) -> "ErrorPolicy":
        return cls(on_error=SKIP_AND_QUARANTINE, **overrides)

    @classmethod
    def substitute(cls, default: Any, **overrides: Any) -> "ErrorPolicy":
        return cls(on_error=SUBSTITUTE_DEFAULT, default=default, **overrides)


@dataclass
class ExecutionPolicy:
    """Policy resolution for a whole pipeline.

    Precedence: ``per_node[node.id]`` > ``per_kind[node.kind]`` >
    ``default``.
    """

    default: ErrorPolicy = field(default_factory=ErrorPolicy)
    per_kind: dict[str, ErrorPolicy] = field(default_factory=dict)
    per_node: dict[int, ErrorPolicy] = field(default_factory=dict)

    def resolve(self, node: Any) -> ErrorPolicy:
        if node.id in self.per_node:
            return self.per_node[node.id]
        if node.kind in self.per_kind:
            return self.per_kind[node.kind]
        return self.default

    @classmethod
    def robust(
        cls,
        max_retries: int = 1,
        backoff: float = 0.01,
        timeout: float | None = None,
        default: Any = None,
        on_error: str = SKIP_AND_QUARANTINE,
        **overrides: Any,
    ) -> "ExecutionPolicy":
        """The quarantine-everything profile used by ``nde.execute_robust``."""
        return cls(
            default=ErrorPolicy(
                on_error=on_error,
                default=default,
                max_retries=max_retries,
                backoff=backoff,
                timeout=timeout,
                **overrides,
            )
        )


# ----------------------------------------------------------------------
# Quarantine
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuarantineRecord:
    """One row dropped (or patched) by a non-fail-fast policy.

    ``sources`` is the row's why-provenance — the exact
    ``(source_name, row_id)`` tuples that produced it — so every quarantined
    row is attributable to the raw input tables where the error lives.
    """

    node_id: int
    node_kind: str
    node_label: str
    reason: str  # "error" | "timeout" | "corrupt_type" | "nonfinite" | "missing_label"
    error_type: str
    message: str
    sources: frozenset[tuple[str, int]]
    attempts: int = 1
    substituted: bool = False


class Quarantine:
    """Accumulates :class:`QuarantineRecord`\\ s across one pipeline run."""

    def __init__(self, records: Iterable[QuarantineRecord] = ()) -> None:
        self.records: list[QuarantineRecord] = list(records)

    def add(
        self,
        node: Any,
        reason: str,
        error: BaseException | None,
        sources: frozenset[tuple[str, int]],
        attempts: int = 1,
        substituted: bool = False,
    ) -> None:
        self.records.append(
            QuarantineRecord(
                node_id=node.id,
                node_kind=node.kind,
                node_label=node.describe(),
                reason=reason,
                error_type=type(error).__name__ if error is not None else "",
                message=str(error) if error is not None else reason,
                sources=frozenset(sources),
                attempts=attempts,
                substituted=substituted,
            )
        )
        if _obs.enabled():
            _obs_metrics.counter(f"pipeline.quarantine.{reason}").inc()
            _obs_metrics.counter("pipeline.quarantine.total").inc()

    # Introspection -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def __bool__(self) -> bool:
        return bool(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def dropped(self) -> list[QuarantineRecord]:
        return [r for r in self.records if not r.substituted]

    def sources(self) -> set[str]:
        return {name for r in self.records for name, __ in r.sources}

    def source_tuples(self) -> set[tuple[str, int]]:
        return {t for r in self.records for t in r.sources}

    def row_ids(self, source: str) -> np.ndarray:
        """Unique, sorted row ids of ``source`` implicated in any record."""
        ids = {rid for r in self.records for name, rid in r.sources if name == source}
        return np.asarray(sorted(ids), dtype=np.int64)

    def by_node(self) -> dict[int, list[QuarantineRecord]]:
        out: dict[int, list[QuarantineRecord]] = {}
        for record in self.records:
            out.setdefault(record.node_id, []).append(record)
        return out

    def by_reason(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for record in self.records:
            out[record.reason] = out.get(record.reason, 0) + 1
        return out

    def to_error_report(self, source: str):
        """Adapt to :class:`repro.errors.ErrorReport` so quarantined tuples
        plug into the same scoring/cleaning machinery as injected errors."""
        from ..errors.report import ErrorReport

        return ErrorReport(
            kind="quarantined",
            column="",
            row_ids=self.row_ids(source),
            params={"reasons": self.by_reason(), "source": source},
        )

    @staticmethod
    def merge(parts: Sequence["Quarantine"]) -> "Quarantine":
        out = Quarantine()
        for part in parts:
            out.records.extend(part.records)
        return out

    def summary(self) -> str:
        if not self.records:
            return "quarantine: empty"
        reasons = ", ".join(f"{k}={v}" for k, v in sorted(self.by_reason().items()))
        return (
            f"quarantine: {len(self.records)} rows across "
            f"{len(self.by_node())} operators ({reasons})"
        )


# ----------------------------------------------------------------------
# Guards: timeout + retry
# ----------------------------------------------------------------------
def call_with_timeout(fn: Callable[[], Any], timeout: float | None) -> Any:
    """Run ``fn`` with a wall-clock budget.

    The call runs in a daemon worker thread; if it is still running after
    ``timeout`` seconds an :class:`OperatorTimeoutError` is raised. (The
    worker cannot be forcibly killed — it is abandoned, which is acceptable
    for the CPU-light UDFs and injected-latency faults this guards.)
    """
    if timeout is None:
        return fn()
    box: dict[str, Any] = {}

    def worker() -> None:
        try:
            box["value"] = fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised in caller
            box["error"] = exc

    thread = threading.Thread(target=worker, daemon=True)
    thread.start()
    thread.join(timeout)
    if thread.is_alive():
        raise OperatorTimeoutError(f"operator exceeded timeout of {timeout:g}s")
    if "error" in box:
        raise box["error"]
    return box["value"]


def retry_call(
    fn: Callable[[], Any],
    policy: ErrorPolicy,
    sleep: Callable[[float], None] = time.sleep,
) -> tuple[Any, int]:
    """Call ``fn`` under the policy's retry/backoff/timeout guards.

    Returns ``(value, attempts)``. Exceptions outside ``policy.retry_on``
    propagate immediately; retryable ones propagate once the retry budget is
    exhausted.
    """
    attempts = policy.max_retries + 1
    for attempt in range(1, attempts + 1):
        try:
            return call_with_timeout(fn, policy.timeout), attempt
        except policy.retry_on:
            if attempt == attempts:
                raise
            sleep(policy.backoff * policy.backoff_factor ** (attempt - 1))
    raise AssertionError("unreachable")  # pragma: no cover


# ----------------------------------------------------------------------
# Cell-type guard (silent-corruption detection for map outputs)
# ----------------------------------------------------------------------
def _type_bucket(value: Any) -> str:
    if value is None:
        return "missing"
    if isinstance(value, float) and np.isnan(value):
        return "missing"
    if isinstance(value, (bool, np.bool_)):
        return "num"
    if isinstance(value, (int, float, np.integer, np.floating)):
        return "num"
    if isinstance(value, (str, np.str_)):
        return "str"
    return "other"


def deviant_cell_positions(cells: Sequence[Any]) -> np.ndarray:
    """Positions whose cell type disagrees with the column's majority type.

    Used as the map-operator output guard: a UDF column that is numeric for
    99% of rows and a string for the rest almost certainly suffered silent
    per-row corruption; those rows are the deviants. Missing cells are never
    deviant, and a column with no clear majority reports nothing.
    """
    buckets = [_type_bucket(c) for c in cells]
    counts: dict[str, int] = {}
    for bucket in buckets:
        if bucket != "missing":
            counts[bucket] = counts.get(bucket, 0) + 1
    if len(counts) <= 1:
        return np.empty(0, dtype=np.int64)
    majority = max(counts, key=lambda k: counts[k])
    return np.asarray(
        [i for i, b in enumerate(buckets) if b not in ("missing", majority)],
        dtype=np.int64,
    )
