"""Tests for incremental view maintenance of pipeline outputs."""

import numpy as np
import pytest

from repro.datasets import generate_hiring_data
from repro.frame import DataFrame
from repro.learn.model_selection import split_frame
from repro.pipeline import execute, incremental_append
from tests.pipeline.conftest import build_letters_pipeline


@pytest.fixture()
def split_scenario(hiring_data):
    full, __ = split_frame(hiring_data["letters"], fractions=(0.9, 0.1), seed=2)
    initial = full.take(np.arange(full.num_rows - 60))
    delta = full.take(np.arange(full.num_rows - 60, full.num_rows))
    return full, initial, delta


class TestIncrementalAppend:
    def test_equals_full_rerun(self, hiring_data, split_scenario):
        full, initial, delta = split_scenario
        __, sink = build_letters_pipeline()
        side = {
            "jobdetail_df": hiring_data["jobdetail"],
            "social_df": hiring_data["social"],
        }
        base = execute(sink, {"train_df": initial, **side}, fit=True)
        incremented = incremental_append(base, {"train_df": delta, **side})

        rerun = execute(sink, {"train_df": full, **side}, fit=False)
        # Same multiset of rows: the incremental result appends delta rows
        # at the end, the rerun interleaves them in source order — compare
        # by provenance-sorted order.
        inc_ids = incremented.provenance.source_row_ids("train_df")
        rerun_ids = rerun.provenance.source_row_ids("train_df")
        assert sorted(inc_ids.tolist()) == sorted(rerun_ids.tolist())
        inc_order = np.argsort(inc_ids)
        rerun_order = np.argsort(rerun_ids)
        assert np.allclose(incremented.X[inc_order], rerun.X[rerun_order])
        assert np.array_equal(incremented.y[inc_order], rerun.y[rerun_order])

    def test_appends_only_matching_rows(self, hiring_data, split_scenario):
        __, initial, delta = split_scenario
        __, sink = build_letters_pipeline()
        side = {
            "jobdetail_df": hiring_data["jobdetail"],
            "social_df": hiring_data["social"],
        }
        base = execute(sink, {"train_df": initial, **side}, fit=True)
        incremented = incremental_append(base, {"train_df": delta, **side})
        n_delta_healthcare = execute(
            sink, {"train_df": delta, **side}, fit=False
        ).n_rows
        assert incremented.n_rows == base.n_rows + n_delta_healthcare

    def test_unencoded_result_raises(self, hiring_data, split_scenario):
        from repro.pipeline import PipelinePlan

        __, initial, delta = split_scenario
        plan = PipelinePlan()
        node = plan.source("train_df").filter(lambda df: df["age"] > 0, "adult")
        base = execute(node, {"train_df": initial})
        with pytest.raises(ValueError):
            incremental_append(base, {"train_df": delta})

    def test_empty_delta_is_noop(self, hiring_data, split_scenario):
        """Regression: an empty delta used to crash with a vstack shape error."""
        __, initial, delta = split_scenario
        __, sink = build_letters_pipeline()
        side = {
            "jobdetail_df": hiring_data["jobdetail"],
            "social_df": hiring_data["social"],
        }
        base = execute(sink, {"train_df": initial, **side}, fit=True)
        empty = delta.take(np.arange(0))
        incremented = incremental_append(base, {"train_df": empty, **side})
        assert incremented.n_rows == base.n_rows
        assert np.array_equal(incremented.X, base.X)
        assert np.array_equal(incremented.y, base.y)
        assert incremented.provenance.tuples == base.provenance.tuples

    def test_delta_filtered_to_zero_rows_is_noop(self, hiring_data, split_scenario):
        """A non-empty delta whose rows are all filtered away is also a no-op."""
        __, initial, delta = split_scenario
        plan, sink = build_letters_pipeline(sector="healthcare")
        side = {
            "jobdetail_df": hiring_data["jobdetail"],
            "social_df": hiring_data["social"],
        }
        base = execute(sink, {"train_df": initial, **side}, fit=True)
        # Keep only delta rows whose joined sector is NOT healthcare.
        joined = delta.join(hiring_data["jobdetail"], on="job_id")
        mask = ~np.asarray(joined["sector"] == "healthcare", dtype=bool)
        doomed = delta.filter(mask)
        assert doomed.num_rows > 0
        incremented = incremental_append(base, {"train_df": doomed, **side})
        assert incremented.n_rows == base.n_rows
        assert np.array_equal(incremented.X, base.X)

    def test_provenance_extended(self, hiring_data, split_scenario):
        __, initial, delta = split_scenario
        __, sink = build_letters_pipeline()
        side = {
            "jobdetail_df": hiring_data["jobdetail"],
            "social_df": hiring_data["social"],
        }
        base = execute(sink, {"train_df": initial, **side}, fit=True)
        incremented = incremental_append(base, {"train_df": delta, **side})
        delta_ids = set(delta.row_ids.tolist())
        tail_ids = incremented.provenance.source_row_ids("train_df")[base.n_rows :]
        assert set(tail_ids.tolist()) <= delta_ids
