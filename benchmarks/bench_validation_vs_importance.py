"""Experiment — rule-based validation vs importance-based detection.

The tutorial positions data importance against the established validation
stack (Deequ/TFDV-style schema checks, ref [64]). The two families have
complementary blind spots, and this bench makes that concrete: for each
error family, does schema validation flag the *dataset*, and how precisely
does KNN-Shapley importance flag the *rows*?

Shape to reproduce: schema validation catches every structural/statistical
family (missing, outliers, typos, distribution shift) but is blind to label
flips — the labels are all valid values; importance-based detection ranks
label-flipped rows far below clean rows but barely reacts to, e.g., a typo
in a non-feature column. Neither subsumes the other — the survey's case for
teaching both.
"""

import numpy as np

import repro.core as nde
from repro.errors import (
    inject_distribution_shift,
    inject_label_errors,
    inject_missing,
    inject_outliers,
    inject_typos,
)
from repro.pipeline import infer_schema, validate_schema
from repro.viz import format_records


def run_matrix() -> list[dict]:
    train, valid, __ = nde.load_recommendation_letters(n=400, seed=7)
    schema = infer_schema(train)

    injectors = {
        "label_flips": lambda f: inject_label_errors(f, "sentiment", 0.15, seed=1),
        "missing_values": lambda f: inject_missing(f, "employer_rating", 0.15, seed=2),
        "outliers": lambda f: inject_outliers(f, "age", 0.1, magnitude=10.0, seed=3),
        "typos": lambda f: inject_typos(f, "degree", 0.15, seed=4),
        "distribution_shift": lambda f: inject_distribution_shift(
            f, "employer_rating", 0.4, shift=5.0, seed=5
        ),
    }

    rows = []
    for family, inject in injectors.items():
        dirty, report = inject(train)
        validation = validate_schema(dirty, schema)

        importances = nde.knn_shapley_values(dirty, validation=valid)
        k = max(report.n_errors, 1)
        flagged = dirty.row_ids[np.argsort(importances)[:k]]
        hits = len(set(flagged.tolist()) & set(report.row_ids.tolist()))
        precision = hits / k
        base_rate = report.n_errors / dirty.num_rows
        rows.append(
            {
                "error_family": family,
                "schema_validation_flags": not validation.passed,
                "importance_precision_at_k": round(precision, 3),
                "row_base_rate": round(base_rate, 3),
                "importance_lift": round(precision / max(base_rate, 1e-9), 2),
            }
        )
    return rows


def test_validation_vs_importance(benchmark, write_report):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    write_report("validation_vs_importance", format_records(rows))

    by_family = {r["error_family"]: r for r in rows}
    # Schema validation: blind to label flips, catches everything structural.
    assert not by_family["label_flips"]["schema_validation_flags"]
    for family in ("missing_values", "outliers", "typos", "distribution_shift"):
        assert by_family[family]["schema_validation_flags"], family
    # Importance: strong on label flips (they directly hurt the model)...
    assert by_family["label_flips"]["importance_lift"] > 2.0
    # ...weak on typos in a column the featurisation barely uses.
    assert (
        by_family["typos"]["importance_lift"]
        < by_family["label_flips"]["importance_lift"]
    )
