"""TelemetryServer end-to-end: real HTTP over a real socket.

Each test boots a JobRuntime + TelemetryServer inside ``asyncio.run`` (no
pytest-asyncio), then speaks raw HTTP/1.1 through ``asyncio.open_connection``
— the same path a Prometheus scraper or load-balancer probe takes.
"""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs.export import parse_openmetrics
from repro.service import BreakerPolicy, JobRequest, JobRuntime, TelemetryServer


def run(coro):
    return asyncio.run(coro)


async def http_get(server, path, method="GET"):
    reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
    writer.write(
        f"{method} {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n".encode()
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        key, _, value = line.partition(":")
        headers[key.strip().lower()] = value.strip()
    return status, headers, body


class TestMetricsEndpoint:
    def test_metrics_parse_as_openmetrics_with_tenant_labels(self):
        async def main():
            runtime = JobRuntime()
            runtime.register_handler("echo", lambda p, ctx: p["x"])
            async with runtime, TelemetryServer(runtime) as server:
                for tenant in ("alice", "bob", "alice"):
                    await runtime.submit(
                        JobRequest(kind="echo", params={"x": 1}, dedup=False,
                                   tenant=tenant)
                    ).wait()
                return await http_get(server, "/metrics")

        status, headers, body = run(main())
        assert status == 200
        assert "openmetrics-text" in headers["content-type"]
        assert headers["content-length"] == str(len(body))
        samples = parse_openmetrics(body.decode("utf-8"))
        # tenant-labeled latency histograms (SLO series, tracing off)
        latencies = samples["service_job_latency_s_count"]
        tenants = {s["labels"]["tenant"] for s in latencies}
        assert tenants == {"alice", "bob"}
        by_tenant = {s["labels"]["tenant"]: s["value"] for s in latencies}
        assert by_tenant["alice"] == 2 and by_tenant["bob"] == 1
        assert all(
            s["labels"]["kind"] == "echo" for s in latencies
        )
        quantiled = samples["service_job_latency_s"]
        assert {s["labels"]["quantile"] for s in quantiled} >= {"0.5", "0.99"}
        terminals = samples["service_job_terminal_total"]
        assert {(s["labels"]["tenant"], s["labels"]["state"])
                for s in terminals} == {("alice", "completed"),
                                        ("bob", "completed")}

    def test_live_registry_series_are_included(self):
        async def main():
            obs_metrics.counter("custom.counter").inc(3)
            runtime = JobRuntime()
            async with runtime, TelemetryServer(runtime) as server:
                return await http_get(server, "/metrics")

        status, _, body = run(main())
        samples = parse_openmetrics(body.decode("utf-8"))
        assert samples["custom_counter_total"][0]["value"] == 3
        obs_metrics.registry().clear()


class TestHealthz:
    def test_ok_while_serving_and_503_while_draining(self):
        async def main():
            runtime = JobRuntime(max_concurrency=1)
            gate = threading.Event()
            runtime.register_handler(
                "slow", lambda p, ctx: gate.wait(timeout=10.0)
            )
            async with runtime, TelemetryServer(runtime) as server:
                status_ok, _, body_ok = await http_get(server, "/healthz")
                job = runtime.submit(JobRequest(kind="slow", dedup=False))
                drain_task = asyncio.ensure_future(runtime.drain())
                while not runtime.draining:
                    await asyncio.sleep(0.001)
                status_draining, _, body_draining = await http_get(
                    server, "/healthz"
                )
                gate.set()
                await drain_task
                await job.wait()
                status_after, _, _ = await http_get(server, "/healthz")
            return (status_ok, body_ok, status_draining, body_draining,
                    status_after)

        ok, body_ok, draining, body_draining, after = run(main())
        assert ok == 200
        assert json.loads(body_ok)["status"] == "ok"
        assert draining == 503
        payload = json.loads(body_draining)
        assert payload["status"] == "draining" and payload["draining"]
        assert after == 200

    def test_stopped_runtime_reports_503(self):
        async def main():
            runtime = JobRuntime()
            server = TelemetryServer(runtime)
            await server.start()
            try:
                return await http_get(server, "/healthz")
            finally:
                await server.stop()

        status, _, body = run(main())
        assert status == 503
        assert json.loads(body)["status"] == "stopped"


class TestJobsAndSlo:
    def test_jobs_lists_counts_and_summaries(self):
        async def main():
            runtime = JobRuntime()
            runtime.register_handler("echo", lambda p, ctx: p["x"])
            async with runtime, TelemetryServer(runtime) as server:
                await runtime.submit(
                    JobRequest(kind="echo", params={"x": 9}, tenant="t1")
                ).wait()
                return await http_get(server, "/jobs")

        status, _, body = run(main())
        assert status == 200
        payload = json.loads(body)
        assert payload["counts"]["completed"] == 1
        assert len(payload["jobs"]) == 1
        assert payload["jobs"][0]["tenant"] == "t1"
        assert payload["jobs"][0]["state"] == "completed"

    def test_slo_exposes_policy_tenants_alerts(self):
        async def main():
            # a lenient breaker: six straight failures must reach the SLO
            # tracker rather than trip per-tenant admission control
            runtime = JobRuntime(
                breaker_policy=BreakerPolicy(failure_threshold=50)
            )
            runtime.register_handler("boom", lambda p, ctx: 1 / 0)
            async with runtime, TelemetryServer(runtime) as server:
                for _ in range(6):
                    job = runtime.submit(JobRequest(kind="boom", dedup=False,
                                                    tenant="unlucky"))
                    with pytest.raises(Exception):
                        await job.wait()
                return await http_get(server, "/slo")

        status, _, body = run(main())
        assert status == 200
        payload = json.loads(body)
        assert payload["policy"]["success_objective"] == 0.99
        tenant = payload["tenants"]["unlucky"]
        assert tenant["states"]["failed"] >= 1
        assert tenant["burn_rate"] > 1.0
        burn_alerts = [a for a in payload["alerts"] if a["kind"] == "slo_burn"]
        assert burn_alerts and burn_alerts[0]["severity"] == "critical"


class TestFailedJobFlightDump:
    def test_failed_job_dumps_flight_with_job_identity(self, tmp_path):
        from repro.obs import flight as obs_flight

        async def main():
            runtime = JobRuntime(
                flight_dir=tmp_path,
                breaker_policy=BreakerPolicy(failure_threshold=50),
            )
            runtime.register_handler("boom", lambda p, ctx: 1 / 0)
            async with runtime:
                job = runtime.submit(JobRequest(kind="boom", tenant="t9"))
                with pytest.raises(Exception):
                    await job.wait()
                return job.job_id

        try:
            job_id = run(main())
            dumps = sorted(tmp_path.glob("flight-*job-failed*.jsonl"))
            assert dumps, "FAILED job produced no flight dump"
            _, events = obs_flight.load_dump(dumps[0])
            failed = [e for e in events if e["kind"] == "job.failed"]
            assert failed
            assert failed[-1]["job_id"] == job_id
            assert failed[-1]["tenant"] == "t9"
            assert failed[-1]["job_kind"] == "boom"
            assert "ZeroDivisionError" in failed[-1]["error"]
        finally:
            recorder = obs_flight.flight_recorder()
            recorder.clear()
            recorder.dump_dir = None


class TestHttpPlumbing:
    def test_unknown_path_404(self):
        async def main():
            runtime = JobRuntime()
            async with runtime, TelemetryServer(runtime) as server:
                return await http_get(server, "/nope")

        status, _, _ = run(main())
        assert status == 404

    def test_post_is_405(self):
        async def main():
            runtime = JobRuntime()
            async with runtime, TelemetryServer(runtime) as server:
                return await http_get(server, "/metrics", method="POST")

        status, _, _ = run(main())
        assert status == 405

    def test_head_omits_body_but_keeps_length(self):
        async def main():
            runtime = JobRuntime()
            async with runtime, TelemetryServer(runtime) as server:
                return await http_get(server, "/healthz", method="HEAD")

        status, headers, body = run(main())
        assert status in (200, 503) and body == b""
        assert int(headers["content-length"]) > 0

    def test_query_strings_are_ignored(self):
        async def main():
            runtime = JobRuntime()
            async with runtime, TelemetryServer(runtime) as server:
                return await http_get(server, "/metrics?format=prom")

        status, _, body = run(main())
        assert status == 200
        parse_openmetrics(body.decode("utf-8"))

    def test_url_reports_bound_ephemeral_port(self):
        async def main():
            runtime = JobRuntime()
            async with runtime, TelemetryServer(runtime) as server:
                assert server.port != 0
                return server.url

        url = run(main())
        assert url.startswith("http://127.0.0.1:")
