"""`JobRuntime`: the crash-safe, multi-tenant asyncio job runtime.

This is the server-grade shell around the valuation engine the ROADMAP's
"valuation-as-a-service" item asks for. One runtime owns:

- an admission-controlled, fair-share **queue**
  (:mod:`repro.service.admission`) — bounded depth, per-tenant rotation,
  priority shedding, per-tenant circuit breakers;
- a **write-ahead journal** (:mod:`repro.service.journal`) — every
  lifecycle edge is durable before the in-memory state advances, so a
  SIGKILL'd runtime restarts, replays, and re-enqueues every in-flight job;
- per-job **checkpoint stores** (:mod:`repro.importance.checkpoint`, with
  ``keep_last`` retention) — recovered valuation jobs resume from their
  wave watermark and finish bit-identical to an uninterrupted run;
- **deduplication** — submissions with equal (dataset-fingerprint,
  config-fingerprint) keys attach to the already-running job as
  subscribers and receive its streamed partial-result snapshots;
- **deadline propagation** — a request's end-to-end ``deadline_s`` is
  measured from submission; whatever remains when the job finally runs is
  handed to the handler, so an overloaded job degrades to a partial
  result (terminal state ``degraded``) instead of running unbounded. A
  job whose deadline fully expired while queued still runs — with a zero
  budget, which the engine answers immediately with a well-formed empty
  partial result;
- **retry with backoff** and chaos hooks (``ChaosMonkey`` job faults) for
  fault-injection testing.

Handlers are registered per request ``kind`` and run in worker threads
(``asyncio.to_thread``), so ``max_concurrency`` engine runs proceed while
the event loop keeps absorbing submissions — that asymmetry (cheap async
admission in front of expensive threaded compute) is the backpressure
story: thousands of queries hit a handful of shared engine runs.

::

    runtime = JobRuntime(journal="svc/journal.jsonl", checkpoint_dir="svc/ck")
    runtime.register_handler("valuation", make_valuation_handler(factory))
    async with runtime:
        job = runtime.submit(JobRequest(kind="valuation", params={...},
                                        tenant="alice", deadline_s=30.0))
        async for snapshot in job.stream():
            print(snapshot["completed"], "/", snapshot["target"])
        result = await job.wait()
"""

from __future__ import annotations

import asyncio
import os
import time
from pathlib import Path
from typing import Any, Callable, Mapping

from ..importance.checkpoint import CheckpointStore
from ..obs import flight as _obs_flight
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from ..obs.slo import SLOPolicy, SLOTracker
from .admission import (
    AdmissionController,
    AdmissionPolicy,
    BreakerPolicy,
    RetryPolicy,
)
from .job import TERMINAL_STATES, Job, JobRejected, JobRequest, JobState
from .journal import JobJournal

__all__ = ["JobContext", "JobRuntime"]

#: ``stop_reason`` values that mark a partial (budget-stopped) result —
#: the job terminates ``degraded`` instead of ``completed``.
_DEGRADED_STOP_REASONS = frozenset({"deadline", "eval_budget"})


class JobContext:
    """What a handler gets to know about the job it is executing.

    Handlers receive ``(params, context)``. The context carries the
    remaining end-to-end deadline, the job's checkpoint store (pass it to
    the engine for crash-safe resume), whether this execution should
    resume from an existing snapshot, and :meth:`progress` /
    :meth:`engine_progress` for streaming partial results to subscribers.
    """

    def __init__(
        self,
        runtime: "JobRuntime",
        job: Job,
        attempt: int,
        deadline_s: float | None,
        checkpoint: CheckpointStore | None,
        resume: bool,
    ) -> None:
        self._runtime = runtime
        self._job = job
        self.job_id = job.job_id
        self.tenant = job.request.tenant
        self.attempt = attempt
        self.deadline_s = deadline_s
        self.checkpoint = checkpoint
        self.resume = resume
        #: The runtime's warm-pool registry (or None). The valuation
        #: handler leases a shared-memory worker pool from it, so
        #: sequential jobs over the same dataset fingerprint reuse one
        #: warm fleet instead of forking per run.
        self.pool_registry = runtime.pool_registry

    def progress(self, snapshot: Mapping[str, Any]) -> None:
        """Publish one progress snapshot to every subscriber (thread-safe).

        Also journals the durable watermark (``completed``/``target``
        scalars only — never the value arrays) so a restarted runtime
        knows how far the job had advanced.
        """
        self._runtime._publish_progress(self._job, dict(snapshot))

    @property
    def engine_progress(self) -> Callable[[dict], None]:
        """Adapter to pass as ``ValuationEngine.run_permutations(
        progress_callback=...)`` — same dict shape, no glue needed."""
        return self.progress


class JobRuntime:
    """Asyncio job queue + workers with production failure semantics.

    Parameters
    ----------
    journal:
        Path (or :class:`~repro.service.journal.JobJournal`) for the
        write-ahead log. ``None`` disables durability (jobs die with the
        process — fine for tests and ephemeral runtimes).
    checkpoint_dir:
        Directory for per-job engine checkpoints (``<job_id>.ck.json``).
        ``None`` disables job-level checkpointing; with it, recovered
        valuation jobs resume mid-run instead of restarting.
    ledger:
        Optional :class:`repro.obs.RunLedger`; every terminal job appends
        a ``"service"`` event (config + the job summary).
    policy, breaker_policy, retry:
        Admission bound / shedding, per-tenant circuit breaker, and
        retry-backoff knobs (:mod:`repro.service.admission`).
    max_concurrency:
        Worker tasks executing handlers concurrently (each in its own
        thread via ``asyncio.to_thread``).
    keep_checkpoints:
        ``keep_last`` retention for each job's checkpoint store, bounding
        checkpoint-directory growth over long service runs.
    pool:
        Warm worker pools for valuation jobs. An ``int`` builds a
        :class:`~repro.importance.pool.PoolRegistry` with that fleet size;
        a registry is used as-is; ``None`` disables pooling (per-run
        fork fan-out). Pools are keyed by dataset fingerprint, so
        sequential jobs over the same data share one long-lived
        shared-memory fleet; :meth:`stop` closes every runtime-owned pool.
    chaos:
        Optional :class:`repro.errors.chaos.ChaosMonkey`; its seeded
        job-level faults (mid-job crash, slow tenant) fire inside handler
        execution.
    slo:
        Per-tenant service objectives: an :class:`repro.obs.SLOPolicy`
        (or a preconfigured :class:`repro.obs.SLOTracker`). A tracker is
        always constructed — every terminal job feeds it — so
        ``runtime.slo`` answers per-tenant latency quantiles, burn rates,
        and alerts regardless of whether tracing is on.
    flight_dir:
        Directory for automatic flight-recorder dumps. When set, a FAILED
        job (and any worker crash/hang detected by supervision) atomically
        dumps the in-memory event ring there for post-mortems; ``None``
        leaves automatic dumps off.
    """

    def __init__(
        self,
        journal: Any | None = None,
        checkpoint_dir: Any | None = None,
        ledger: Any | None = None,
        policy: AdmissionPolicy | None = None,
        breaker_policy: BreakerPolicy | None = None,
        retry: RetryPolicy | None = None,
        max_concurrency: int = 2,
        keep_checkpoints: int | None = 3,
        pool: Any | None = None,
        chaos: Any | None = None,
        slo: SLOPolicy | SLOTracker | None = None,
        flight_dir: Any | None = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError("max_concurrency must be >= 1")
        if journal is None or isinstance(journal, JobJournal):
            self.journal = journal
        else:
            self.journal = JobJournal(journal)
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.ledger = ledger
        self.retry = retry or RetryPolicy()
        self.max_concurrency = int(max_concurrency)
        self.keep_checkpoints = keep_checkpoints
        if pool is None or pool is False:
            self.pool_registry = None
            self._owns_pools = False
        elif isinstance(pool, int) and not isinstance(pool, bool):
            from ..importance.pool import PoolRegistry

            self.pool_registry = PoolRegistry(n_workers=pool, ledger=ledger)
            self._owns_pools = True
        else:
            self.pool_registry = pool
            self._owns_pools = False
        self.chaos = chaos
        self.slo = slo if isinstance(slo, SLOTracker) else SLOTracker(slo)
        if flight_dir is not None:
            _obs_flight.configure(dump_dir=flight_dir)
        self.admission = AdmissionController(policy, breaker_policy)
        self.jobs: dict[str, Job] = {}
        self._handlers: dict[str, Callable[[dict, JobContext], Any]] = {}
        self._active_by_key: dict[tuple[str, str, str], Job] = {}
        self._workers: list[asyncio.Task] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._wake: asyncio.Event | None = None
        self._running = False
        self.draining = False
        self._seq = 0
        self._chaos_ord = 0
        self.counts = {
            "submitted": 0,
            "deduplicated": 0,
            "admitted": 0,
            "rejected": 0,
            "shed": 0,
            "completed": 0,
            "degraded": 0,
            "failed": 0,
            "retries": 0,
            "recovered": 0,
        }
        self.max_queue_depth_seen = 0

    # ------------------------------------------------------------------ #
    # registration and lifecycle                                         #
    # ------------------------------------------------------------------ #

    def register_handler(
        self, kind: str, handler: Callable[[dict, JobContext], Any]
    ) -> None:
        """Register the executor for requests of ``kind``.

        ``handler(params, context)`` runs in a worker thread; it may block.
        Raising marks the attempt failed (retried under the job's budget);
        the returned object is the job result — if it exposes a
        ``stop_reason`` of ``"deadline"``/``"eval_budget"`` (e.g. a
        partial :class:`~repro.importance.engine.ValuationResult`), the
        job terminates ``degraded`` instead of ``completed``.
        """
        self._handlers[str(kind)] = handler

    async def start(self) -> None:
        """Recover journaled in-flight jobs and launch the worker fleet."""
        if self._running:
            return
        self._loop = asyncio.get_running_loop()
        self._wake = asyncio.Event()
        self._running = True
        self.recover()
        self._workers = [
            asyncio.create_task(self._worker_loop(), name=f"service-worker-{i}")
            for i in range(self.max_concurrency)
        ]

    async def stop(self) -> None:
        """Finish in-flight handler executions, then stop the workers.

        Queued jobs are left queued — and journaled as such, so a later
        runtime over the same journal recovers them. Call :meth:`drain`
        first for a clean shutdown with every job terminal.
        """
        self._running = False
        if self._wake is not None:
            self._wake.set()
        if self._workers:
            await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        if self._owns_pools and self.pool_registry is not None:
            # Runtime-owned worker fleets die with the service; shared
            # segments are unlinked here. A later start() re-leases fresh
            # pools on demand.
            self.pool_registry.close_all()

    async def drain(self) -> None:
        """Wait until every job this runtime accepted is terminal.

        While draining, :meth:`health` reports ``"draining"`` (and the
        ``/healthz`` endpoint answers 503), which is how load balancers
        stop routing new work at a runtime that is being shut down.
        """
        self.draining = True
        try:
            while True:
                pending = [job for job in self.jobs.values() if not job.done]
                if not pending:
                    return
                await asyncio.wait(
                    [asyncio.ensure_future(job._done.wait()) for job in pending]
                )
        finally:
            self.draining = False

    def health(self) -> dict:
        """Liveness/readiness summary for the ``/healthz`` endpoint."""
        if not self._running:
            status = "stopped"
        elif self.draining:
            status = "draining"
        else:
            status = "ok"
        return {
            "status": status,
            "running": self._running,
            "draining": self.draining,
            "queue_depth": len(self.admission.queue),
            "jobs_in_flight": sum(
                1 for job in self.jobs.values() if not job.done
            ),
        }

    async def __aenter__(self) -> "JobRuntime":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            await self.drain()
        await self.stop()

    # ------------------------------------------------------------------ #
    # submission                                                         #
    # ------------------------------------------------------------------ #

    def submit(self, request: JobRequest) -> Job:
        """Admit a request: dedup, journal, admission-control, enqueue.

        Returns the tracked :class:`Job` (possibly an already-running one
        when deduplicated). Raises :class:`JobRejected` — with the reason
        — when admission control refuses; the rejection is journaled
        first, so even refused work is accounted for.
        """
        self.counts["submitted"] += 1
        self._metric("service.submitted")
        key = request.dedup_key()
        if request.dedup:
            primary = self._active_by_key.get(key)
            if primary is not None and not primary.done:
                primary.subscribers += 1
                self.counts["deduplicated"] += 1
                self._metric("service.deduplicated")
                self._journal(
                    "deduplicated",
                    primary.job_id,
                    {"tenant": request.tenant, "subscribers": primary.subscribers},
                )
                return primary
        job = Job(self._next_job_id(), request)
        self.jobs[job.job_id] = job
        self._journal("submitted", job.job_id, {"request": request.to_dict()})
        if request.kind not in self._handlers:
            self._reject(job, "unknown_kind", f"no handler for {request.kind!r}")
            raise JobRejected("unknown_kind", request.kind)
        try:
            shed = self.admission.admit(job)
        except JobRejected as exc:
            self._reject(job, exc.reason, str(exc))
            raise
        if shed is not None:
            self.counts["shed"] += 1
            self._metric("service.shed")
            self._active_by_key.pop(shed.request.dedup_key(), None)
            self._reject(
                shed,
                "shed_by_priority",
                f"evicted by higher-priority job {job.job_id}",
                count=False,
            )
        job.transition(JobState.QUEUED)
        self._journal("queued", job.job_id)
        self.counts["admitted"] += 1
        self._metric("service.admitted")
        self._active_by_key[key] = job
        self._note_queue_depth()
        if self._wake is not None:
            self._wake.set()
        return job

    def recover(self) -> list[Job]:
        """Re-enqueue every journaled non-terminal job (crash recovery).

        Recovered jobs keep their original job id — that is what keys
        their checkpoint store, so the engine resumes from the killed
        run's watermark. They bypass admission control (they were already
        admitted once; re-shedding them would turn a crash into data
        loss), which can transiently overshoot the queue bound by at most
        the crashed runtime's ``max_concurrency``.

        Every restart also leaves a ``recovery_audit`` journal record —
        jobs re-enqueued, quarantine accounting from the journal load, and
        the stats of the auto-compaction (:meth:`JobJournal.maybe_compact`)
        that runs here — so an operator can reconstruct what recovery saw
        and did after the fact.
        """
        if self.journal is None:
            return []
        recovered: list[Job] = []
        for entry in self.journal.in_flight():
            if entry.job_id in self.jobs:
                continue
            job = Job(entry.job_id, entry.request)
            job.recovered = True
            if entry.submitted_at:
                job.submitted_at = entry.submitted_at
            self.jobs[job.job_id] = job
            self._journal(
                "recovered",
                job.job_id,
                {"prior_state": entry.state, "attempts": entry.attempts},
            )
            job.transition(JobState.QUEUED)
            self.admission.queue.push(job)
            self._active_by_key.setdefault(job.request.dedup_key(), job)
            self.counts["recovered"] += 1
            self._metric("service.recovered")
            recovered.append(job)
        audit: dict[str, Any] = {
            "recovered_jobs": len(recovered),
            "job_ids": [job.job_id for job in recovered],
        }
        load_report = self.journal.last_load_report
        if load_report is not None:
            audit["journal_load"] = {
                "n_loaded": load_report.n_loaded,
                "n_quarantined": load_report.n_quarantined,
                "reasons": dict(load_report.reasons),
                "quarantine_path": load_report.quarantine_path,
            }
        compaction = self.journal.maybe_compact()
        if compaction is not None:
            audit["compaction"] = compaction
            self._metric("service.journal_compacted")
        self._journal("recovery_audit", "-", audit)
        _obs_flight.record("service.recovery_audit", **audit)
        if recovered and self._wake is not None:
            self._wake.set()
        return recovered

    # ------------------------------------------------------------------ #
    # execution                                                          #
    # ------------------------------------------------------------------ #

    async def _worker_loop(self) -> None:
        while True:
            if not self._running:
                return
            job = self.admission.next_job()
            if job is None:
                self._wake.clear()
                if not self._running:
                    return
                await self._wake.wait()
                continue
            self._note_queue_depth()
            await self._execute(job)

    async def _execute(self, job: Job) -> None:
        request = job.request
        job.transition(JobState.RUNNING)
        chaos_ord = self._chaos_ord
        self._chaos_ord += 1
        checkpoint = self._checkpoint_for(job)
        attempt = 0
        loop = asyncio.get_running_loop()
        while True:
            job.attempts = attempt + 1
            self._journal("started", job.job_id, {"attempt": attempt})
            context = JobContext(
                runtime=self,
                job=job,
                attempt=attempt,
                deadline_s=self._remaining_deadline(job),
                checkpoint=checkpoint,
                resume=checkpoint is not None and checkpoint.exists(),
            )
            try:
                result = await asyncio.to_thread(
                    self._run_handler, job, context, chaos_ord, attempt
                )
            except Exception as exc:  # noqa: BLE001 - handler boundary
                job.error = f"{type(exc).__name__}: {exc}"
                if attempt < request.max_retries:
                    self.counts["retries"] += 1
                    self._metric("service.retries")
                    self._journal(
                        "retrying",
                        job.job_id,
                        {"attempt": attempt, "error": job.error},
                    )
                    await asyncio.sleep(self.retry.delay_s(attempt))
                    attempt += 1
                    continue
                self._finish(job, JobState.FAILED)
                return
            job.result = result
            job.stop_reason = self._stop_reason(result)
            state = (
                JobState.DEGRADED
                if job.stop_reason in _DEGRADED_STOP_REASONS
                else JobState.COMPLETED
            )
            if state is JobState.COMPLETED and checkpoint is not None:
                # A finished job's snapshots are dead weight; degraded
                # jobs keep theirs so a resubmission with a larger budget
                # resumes from the watermark.
                checkpoint.clear()
            self._finish(job, state)
            return

    def _run_handler(
        self, job: Job, context: JobContext, chaos_ord: int, attempt: int
    ) -> Any:
        """Body executed in the worker thread (chaos + span + handler)."""
        with _obs.span(
            "service.job",
            kind=job.request.kind,
            tenant=job.request.tenant,
            job_id=job.job_id,
            attempt=attempt,
        ):
            if self.chaos is not None:
                self.chaos.apply_job_fault(
                    chaos_ord, attempt, tenant=job.request.tenant
                )
            handler = self._handlers[job.request.kind]
            return handler(dict(job.request.params), context)

    # ------------------------------------------------------------------ #
    # bookkeeping                                                        #
    # ------------------------------------------------------------------ #

    def _next_job_id(self) -> str:
        self._seq += 1
        return f"job-{time.time_ns() & 0xFFFFFFFFFF:010x}-{os.getpid()}-{self._seq:04d}"

    def _checkpoint_for(self, job: Job) -> CheckpointStore | None:
        if self.checkpoint_dir is None:
            return None
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
        return CheckpointStore(
            self.checkpoint_dir / f"{job.job_id}.ck.json",
            keep_last=self.keep_checkpoints,
        )

    def _remaining_deadline(self, job: Job) -> float | None:
        """End-to-end deadline minus time already spent (queueing,
        retries, a previous incarnation of the runtime)."""
        if job.request.deadline_s is None:
            return None
        return max(0.0, job.request.deadline_s - (time.time() - job.submitted_at))

    @staticmethod
    def _stop_reason(result: Any) -> str | None:
        if isinstance(result, Mapping):
            value = result.get("stop_reason")
        else:
            value = getattr(result, "stop_reason", None)
        return str(value) if value is not None else None

    def _publish_progress(self, job: Job, snapshot: dict) -> None:
        """Thread-safe bridge from handler threads into the event loop."""
        self._journal(
            "progress",
            job.job_id,
            {
                "completed": int(snapshot.get("completed", 0)),
                "target": int(snapshot.get("target", 0)),
                "n_evaluations": int(snapshot.get("n_evaluations", 0)),
            },
        )
        try:
            in_loop = asyncio.get_running_loop() is self._loop
        except RuntimeError:
            in_loop = False
        if in_loop or self._loop is None or self._loop.is_closed():
            job.publish_progress(snapshot)
        else:
            # Handler thread: hop to the loop that owns the subscribers.
            self._loop.call_soon_threadsafe(job.publish_progress, snapshot)

    def _reject(
        self, job: Job, reason: str, detail: str, count: bool = True
    ) -> None:
        job.reject_reason = reason
        self._journal("rejected", job.job_id, {"reason": reason, "detail": detail})
        job.transition(JobState.REJECTED)
        if count:
            self.counts["rejected"] += 1
            self._metric("service.rejected")
        self.slo.observe_job(job)
        self._record_ledger(job)

    def _finish(self, job: Job, state: JobState) -> None:
        key = job.request.dedup_key()
        if self._active_by_key.get(key) is job:
            self._active_by_key.pop(key, None)
        self._journal(state.value, job.job_id, job.summary())
        job.transition(state)
        self.counts[state.value] += 1
        self._metric(f"service.{state.value}")
        ok = state is not JobState.FAILED
        self.admission.record_result(job.request.tenant, ok)
        if _obs.enabled() and job.latency_s is not None:
            _obs_metrics.histogram("service.latency_s").observe(job.latency_s)
            if job.queue_wait_s is not None:
                _obs_metrics.histogram("service.queue_wait_s").observe(
                    job.queue_wait_s
                )
        self.slo.observe_job(job)
        if state is JobState.FAILED:
            # Flight-record the failure and dump the ring (no-op unless a
            # flight_dir was configured) so the post-mortem carries the
            # job's identity next to the workers' last shipped spans.
            _obs_flight.record(
                "job.failed",
                job_id=job.job_id,
                tenant=job.request.tenant,
                job_kind=job.request.kind,
                error=job.error,
                attempts=job.attempts,
            )
            _obs_flight.auto_dump("job-failed")
        self._record_ledger(job)

    def _record_ledger(self, job: Job) -> None:
        if self.ledger is None:
            return
        self.ledger.record_event(
            "service",
            config={
                "kind": job.request.kind,
                "tenant": job.request.tenant,
                "priority": job.request.priority,
                "deadline_s": job.request.deadline_s,
                "dataset_fingerprint": job.request.dataset_fingerprint,
            },
            stats=job.summary(),
            run_id=job.job_id,
            wall_time_s=job.latency_s,
        )

    def _journal(self, event: str, job_id: str, payload: dict | None = None) -> None:
        if self.journal is not None:
            self.journal.record(event, job_id, payload)

    def _metric(self, name: str) -> None:
        if _obs.enabled():
            _obs_metrics.counter(name).inc()

    def _note_queue_depth(self) -> None:
        depth = len(self.admission.queue)
        self.max_queue_depth_seen = max(self.max_queue_depth_seen, depth)
        if _obs.enabled():
            _obs_metrics.gauge("service.queue_depth").set(depth)

    def stats(self) -> dict:
        """Counters + live depth, in the shape the bench and tests report."""
        return {
            **self.counts,
            "queue_depth": len(self.admission.queue),
            "max_queue_depth_seen": self.max_queue_depth_seen,
            "jobs_known": len(self.jobs),
            "breakers": {
                tenant: breaker.state
                for tenant, breaker in self.admission._breakers.items()
            },
        }
