"""Cleaning oracles: ground-truth repair with a budget.

The hands-on session gives attendees an "oracle" cleaning function that
repairs whichever training tuples they select — modelling a human expert who
is expensive to consult. The oracle holds the pristine frame, replaces
requested rows by row id, and enforces an optional budget so cleaning
strategies compete on repairs-per-consultation.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..frame import DataFrame

__all__ = ["CleaningOracle", "BudgetExhausted"]


class BudgetExhausted(RuntimeError):
    """Raised when the oracle's cleaning budget is used up."""


class CleaningOracle:
    """Repairs rows of a corrupted frame from a pristine reference copy.

    Parameters
    ----------
    clean_frame:
        The ground-truth frame; rows are matched by stable row id.
    budget:
        Maximum number of rows that may be cleaned in total (None = unlimited).
    """

    def __init__(self, clean_frame: DataFrame, budget: int | None = None) -> None:
        self._clean = clean_frame.copy()
        self._by_row_id = {
            int(rid): pos for pos, rid in enumerate(clean_frame.row_ids.tolist())
        }
        self.budget = budget
        self.cleaned_row_ids: set[int] = set()
        self.n_calls = 0

    @property
    def spent(self) -> int:
        return len(self.cleaned_row_ids)

    @property
    def remaining(self) -> int | None:
        return None if self.budget is None else max(0, self.budget - self.spent)

    def clean(self, dirty_frame: DataFrame, row_ids: Iterable[int]) -> DataFrame:
        """Return a copy of ``dirty_frame`` with the given rows repaired.

        Rows already cleaned earlier do not consume budget again. Row ids
        unknown to the oracle (e.g. injected duplicates) are left untouched.
        """
        self.n_calls += 1
        requested = [int(rid) for rid in row_ids]
        known = [rid for rid in requested if rid in self._by_row_id]
        new = [rid for rid in known if rid not in self.cleaned_row_ids]
        if self.budget is not None and self.spent + len(new) > self.budget:
            raise BudgetExhausted(
                f"budget {self.budget} exceeded: {self.spent} cleaned, "
                f"{len(new)} newly requested"
            )
        self.cleaned_row_ids.update(new)
        present = [rid for rid in known if rid in set(dirty_frame.row_ids.tolist())]
        if not present:
            return dirty_frame.copy()
        positions = dirty_frame.positions_of(present)
        clean_positions = np.asarray([self._by_row_id[rid] for rid in present])
        replacement = self._clean.take(clean_positions)
        replacement = replacement.select(dirty_frame.columns)
        return dirty_frame.set_rows(positions, replacement)
