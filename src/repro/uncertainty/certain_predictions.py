"""Certain predictions for KNN over incomplete data (Karlaš et al. [40]).

A prediction is *certain* when the K-nearest-neighbour classifier returns
the same label in **every** possible world of the incomplete training data —
i.e. no matter how the missing cells are filled in. Because each training
row's missing cells can be filled independently of the others, the check
reduces to reasoning over per-row distance *intervals*, and an adversarial
argument makes it exact: to deny label ℓ the victory, the adversary pushes
ℓ-rows as far as possible and a challenger class's rows as close as
possible.

This is the "do we even need to clean?" machinery of the tutorial's Learn
part, together with the CPClean-style cleaning-effort ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .intervals import Interval
from .symbolic import UncertainDataset

__all__ = [
    "distance_intervals",
    "certain_prediction",
    "CertainPredictionReport",
    "certain_prediction_report",
    "cpclean_order",
]


def distance_intervals(dataset: UncertainDataset, x: np.ndarray) -> Interval:
    """Squared-distance interval of each (possibly incomplete) training row
    to a concrete query point."""
    x = np.asarray(x, dtype=float).reshape(1, -1)
    diff = dataset.X - x  # interval broadcast
    return diff.square().sum(axis=1)


def _votes_in_adversarial_world(
    d_lo: np.ndarray,
    d_hi: np.ndarray,
    labels: np.ndarray,
    target,
    challenger,
    k: int,
) -> tuple[int, int]:
    """Vote counts (target, challenger) in the world worst for ``target``:
    challenger rows at their closest, every other row at its farthest."""
    adversarial = np.where(labels == challenger, d_lo, d_hi)
    # Challenger rows win distance ties (adversarial tie-breaking): sort by
    # (distance, is-not-challenger).
    tie_break = (labels != challenger).astype(float)
    order = np.lexsort((tie_break, adversarial))[: min(k, len(labels))]
    top = labels[order]
    return int(np.sum(top == target)), int(np.sum(top == challenger))


def certain_prediction(
    dataset: UncertainDataset, x: np.ndarray, k: int = 3
) -> tuple[bool, Any]:
    """Is the KNN prediction for ``x`` the same in every possible world?

    Returns ``(certain, label)`` where ``label`` is the certain label, or the
    center-world prediction when uncertain.
    """
    labels = dataset.y
    classes = np.unique(labels)
    distances = distance_intervals(dataset, x)
    d_lo, d_hi = distances.lo, distances.hi

    center = ((dataset.X.center - x.reshape(1, -1)) ** 2).sum(axis=1)
    center_order = np.argsort(center, kind="stable")[: min(k, len(labels))]
    center_votes = labels[center_order]
    values, counts = np.unique(center_votes, return_counts=True)
    center_label = values[np.argmax(counts)]

    for candidate in classes:
        certain = True
        for challenger in classes:
            if challenger == candidate:
                continue
            v_target, v_challenger = _votes_in_adversarial_world(
                d_lo, d_hi, labels, candidate, challenger, k
            )
            if v_target <= v_challenger:
                certain = False
                break
        if certain:
            return True, candidate
    return False, center_label


@dataclass
class CertainPredictionReport:
    """Batch certainty summary over a test set."""

    certain: np.ndarray
    labels: np.ndarray
    k: int
    extras: dict = field(default_factory=dict)

    @property
    def certain_fraction(self) -> float:
        return float(np.mean(self.certain)) if len(self.certain) else 1.0

    def accuracy_bounds(self, y_true: Any) -> tuple[float, float]:
        """(worst-case, best-case) accuracy over all possible worlds.

        Certain points contribute their fixed correctness; uncertain points
        count as wrong in the worst case and right in the best case.
        """
        y_true = np.asarray(y_true)
        correct_certain = (self.labels == y_true) & self.certain
        worst = float(np.mean(correct_certain))
        best = float(np.mean(correct_certain | ~self.certain))
        return worst, best


def certain_prediction_report(
    dataset: UncertainDataset, x_test: Any, k: int = 3
) -> CertainPredictionReport:
    """Run :func:`certain_prediction` over a test matrix."""
    x_test = np.asarray(x_test, dtype=float)
    certain = np.zeros(len(x_test), dtype=bool)
    labels = np.empty(len(x_test), dtype=dataset.y.dtype)
    for i, x in enumerate(x_test):
        certain[i], labels[i] = certain_prediction(dataset, x, k=k)
    return CertainPredictionReport(certain=certain, labels=labels, k=k)


def cpclean_order(
    dataset: UncertainDataset, x_test: Any, k: int = 3
) -> np.ndarray:
    """CPClean-style cleaning priority over incomplete training rows.

    Rows are ordered by how many *uncertain* test predictions they are
    ambiguous for — a row is ambiguous for a query when its distance
    interval overlaps the query's top-k cutoff, so resolving its missing
    cells can change the neighbour set. Cleaning in this order needs far
    fewer oracle calls to reach all-certain than random order (the CPClean
    result the benchmarks reproduce).
    """
    x_test = np.asarray(x_test, dtype=float)
    incomplete_rows = np.flatnonzero(dataset.uncertain_cells.any(axis=1))
    scores = np.zeros(dataset.n_rows)
    for x in x_test:
        certain, __ = certain_prediction(dataset, x, k=k)
        if certain:
            continue
        distances = distance_intervals(dataset, x)
        cutoff = np.sort(distances.hi)[min(k, len(distances.hi)) - 1]
        ambiguous = (distances.lo <= cutoff) & dataset.uncertain_cells.any(axis=1)
        scores[ambiguous] += 1.0
    # Incomplete rows first by descending ambiguity; complete rows last.
    priority = np.full(dataset.n_rows, -1.0)
    priority[incomplete_rows] = scores[incomplete_rows]
    return np.argsort(-priority, kind="stable")
