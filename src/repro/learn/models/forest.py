"""Bagged random forest on the CART substrate."""

from __future__ import annotations

from typing import Any

import numpy as np

from ..base import Estimator, check_matrix, check_xy
from .tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier(Estimator):
    """Bootstrap-aggregated decision trees with feature subsampling.

    Besides being a stronger model than a single CART, the forest matters to
    this library as the model family behind HedgeCut-style unlearning and as
    a bagging baseline for the certified-robustness comparisons.
    """

    def __init__(
        self,
        n_trees: int = 25,
        max_depth: int = 8,
        max_features: float = 0.7,
        min_samples_split: int = 2,
        sample_fraction: float = 1.0,
        seed: int = 0,
    ) -> None:
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        if not 0.0 < max_features <= 1.0:
            raise ValueError("max_features must be in (0, 1]")
        if not 0.0 < sample_fraction <= 1.0:
            raise ValueError("sample_fraction must be in (0, 1]")
        self.n_trees = int(n_trees)
        self.max_depth = int(max_depth)
        self.max_features = float(max_features)
        self.min_samples_split = int(min_samples_split)
        # Bootstrap size as a fraction of n. Below 1.0 each tree sees fewer
        # points — slightly weaker trees, but deletions touch fewer trees
        # (the latency lever RemovalAwareForest exploits).
        self.sample_fraction = float(sample_fraction)
        self.seed = int(seed)

    def fit(self, X: Any, y: Any) -> "RandomForestClassifier":
        X, y = check_xy(X, y)
        rng = np.random.default_rng(self.seed)
        self.classes_ = np.unique(y)
        n, d = X.shape
        n_features = max(1, int(round(self.max_features * d)))
        self.trees_ = []
        self.feature_sets_ = []
        sample_size = max(1, int(round(self.sample_fraction * n)))
        for __ in range(self.n_trees):
            rows = rng.integers(0, n, size=sample_size)  # bootstrap sample
            columns = np.sort(rng.choice(d, size=n_features, replace=False))
            ys = y[rows]
            if len(np.unique(ys)) < 2:
                self.trees_.append(("constant", ys[0]))
                self.feature_sets_.append(columns)
                continue
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth, min_samples_split=self.min_samples_split
            ).fit(X[np.ix_(rows, columns)], ys)
            self.trees_.append(("tree", tree))
            self.feature_sets_.append(columns)
        return self

    def predict_proba(self, X: Any) -> np.ndarray:
        self._require_fitted()
        X = check_matrix(X)
        index = {cls: j for j, cls in enumerate(self.classes_.tolist())}
        votes = np.zeros((len(X), len(self.classes_)))
        for (kind, member), columns in zip(self.trees_, self.feature_sets_):
            if kind == "constant":
                votes[:, index[member]] += 1.0
            else:
                predictions = member.predict(X[:, columns])
                for i, label in enumerate(predictions.tolist()):
                    votes[i, index[label]] += 1.0
        return votes / self.n_trees

    def predict(self, X: Any) -> np.ndarray:
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]
