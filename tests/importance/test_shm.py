"""Shared-memory data plane: packing, attach, lifecycle, and leak safety.

The contract under test: arrays published through a
:class:`SharedArrayBundle` are bit-identical and read-only on both sides
of the process boundary, the owner's segment is always unlinked — on
explicit close, at normal interpreter exit, and (via the reaper) after a
``kill -9`` that skips every atexit hook — and the reaper never touches
segments it does not own.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.importance.shm import (
    SEGMENT_PREFIX,
    SHM_AVAILABLE,
    SharedArrayBundle,
    _cleanup_segment,
    _node_token,
    _pid_start,
    reap_stale_segments,
    shareable_arrays,
)

pytestmark = pytest.mark.skipif(
    not SHM_AVAILABLE, reason="multiprocessing.shared_memory unavailable"
)

_SHM_DIR = "/dev/shm"
needs_shm_dir = pytest.mark.skipif(
    not os.path.isdir(_SHM_DIR), reason="no /dev/shm on this platform"
)


def sample_arrays() -> dict[str, np.ndarray]:
    rng = np.random.default_rng(0)
    return {
        "x_train": rng.normal(size=(13, 4)),
        "y_train": rng.integers(0, 2, size=13, dtype=np.int64),
        "x_valid": np.asarray(rng.normal(size=(5, 4)), dtype=np.float32),
        "y_valid": np.ones(5, dtype=bool),
    }


class TestShareableArrays:
    def test_fixed_itemsize_arrays_are_shareable(self):
        assert shareable_arrays(sample_arrays())

    def test_object_dtype_is_not(self):
        assert not shareable_arrays({"a": np.array([{"k": 1}], dtype=object)})

    def test_non_arrays_are_not(self):
        assert not shareable_arrays({"a": [1, 2, 3]})


class TestSharedArrayBundle:
    def test_round_trip_is_bit_identical(self):
        arrays = sample_arrays()
        with SharedArrayBundle.create(arrays) as bundle:
            attached = SharedArrayBundle.attach(bundle.spec())
            try:
                for key, original in arrays.items():
                    for side in (bundle, attached):
                        view = side.arrays[key]
                        assert view.dtype == original.dtype
                        assert view.shape == original.shape
                        assert np.array_equal(view, original)
            finally:
                attached.close()

    def test_views_are_read_only_on_both_sides(self):
        with SharedArrayBundle.create(sample_arrays()) as bundle:
            attached = SharedArrayBundle.attach(bundle.spec())
            try:
                for side in (bundle, attached):
                    with pytest.raises(ValueError):
                        side.arrays["x_train"][0, 0] = 99.0
            finally:
                attached.close()

    def test_arrays_are_cache_line_aligned(self):
        with SharedArrayBundle.create(sample_arrays()) as bundle:
            for meta in bundle.spec()["arrays"].values():
                assert meta["offset"] % 64 == 0

    def test_spec_is_picklable(self):
        with SharedArrayBundle.create(sample_arrays()) as bundle:
            spec = pickle.loads(pickle.dumps(bundle.spec()))
            attached = SharedArrayBundle.attach(spec)
            try:
                assert np.array_equal(
                    attached.arrays["y_train"],
                    sample_arrays()["y_train"],
                )
            finally:
                attached.close()

    def test_create_rejects_empty_and_object_dtype(self):
        with pytest.raises(ValueError):
            SharedArrayBundle.create({})
        with pytest.raises(ValueError):
            SharedArrayBundle.create(
                {"a": np.array(["x", None], dtype=object)}
            )

    def test_segment_name_embeds_owner_pid(self):
        with SharedArrayBundle.create(sample_arrays()) as bundle:
            assert bundle.name.startswith(
                f"{SEGMENT_PREFIX}{os.getpid()}-"
            )

    @needs_shm_dir
    def test_owner_close_unlinks_the_segment(self):
        bundle = SharedArrayBundle.create(sample_arrays())
        path = os.path.join(_SHM_DIR, bundle.name)
        assert os.path.exists(path)
        bundle.close()
        assert not os.path.exists(path)
        bundle.close()  # idempotent
        with pytest.raises(RuntimeError):
            bundle.arrays

    @needs_shm_dir
    def test_attacher_close_keeps_the_segment(self):
        with SharedArrayBundle.create(sample_arrays()) as bundle:
            attached = SharedArrayBundle.attach(bundle.spec())
            attached.close()
            assert os.path.exists(os.path.join(_SHM_DIR, bundle.name))
            with pytest.raises(RuntimeError):
                attached.unlink()

    def test_attach_after_unlink_raises(self):
        bundle = SharedArrayBundle.create(sample_arrays())
        spec = bundle.spec()
        bundle.unlink()
        with pytest.raises(FileNotFoundError):
            SharedArrayBundle.attach(spec)


class TestReaper:
    def test_reaps_only_dead_owner_segments(self, tmp_path):
        dead = f"{SEGMENT_PREFIX}999999-aa"
        alive = f"{SEGMENT_PREFIX}1234-bb"
        mine = f"{SEGMENT_PREFIX}{os.getpid()}-cc"
        foreign = "psm_something_else"
        unparsable = f"{SEGMENT_PREFIX}notapid-dd"
        for name in (dead, alive, mine, foreign, unparsable):
            (tmp_path / name).write_bytes(b"x")
        reaped = reap_stale_segments(str(tmp_path), pids_alive=[1234])
        assert reaped == [dead]
        assert not (tmp_path / dead).exists()
        for name in (alive, mine, foreign, unparsable):
            assert (tmp_path / name).exists()

    def test_missing_dir_is_a_noop(self, tmp_path):
        assert reap_stale_segments(str(tmp_path / "nope")) == []

    @staticmethod
    def _dead_pid() -> int:
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    @needs_shm_dir
    def test_segment_name_embeds_provenance(self):
        """Reapable platforms bake node token + owner start time into the
        name so the reaper can resolve owner liveness exactly."""
        with SharedArrayBundle.create(sample_arrays()) as bundle:
            parts = bundle.name[len(SEGMENT_PREFIX):].split("-")
            assert int(parts[0]) == os.getpid()
            assert parts[1] == _node_token()
            assert int(parts[2]) == (_pid_start(os.getpid()) or 0)

    def test_reaps_dead_owner_with_matching_provenance(self, tmp_path):
        name = f"{SEGMENT_PREFIX}{self._dead_pid()}-{_node_token()}-123-aa"
        (tmp_path / name).write_bytes(b"x")
        assert reap_stale_segments(str(tmp_path)) == [name]
        assert not (tmp_path / name).exists()

    def test_leaves_foreign_namespace_segments(self, tmp_path):
        """A node token from another boot or PID namespace means the PID
        cannot be resolved here — a live foreign owner must not lose its
        segment, so the reaper treats it as alive."""
        node = _node_token()
        foreign_node = ("f" if node[0] != "f" else "e") + node[1:]
        name = f"{SEGMENT_PREFIX}{self._dead_pid()}-{foreign_node}-123-aa"
        (tmp_path / name).write_bytes(b"x")
        assert reap_stale_segments(str(tmp_path)) == []
        assert (tmp_path / name).exists()

    def test_leaves_names_without_provenance(self, tmp_path):
        """Short names (non-reapable platforms) have unresolvable owners
        and are conservatively kept on the real-liveness path."""
        name = f"{SEGMENT_PREFIX}{self._dead_pid()}-aa"
        (tmp_path / name).write_bytes(b"x")
        assert reap_stale_segments(str(tmp_path)) == []
        assert (tmp_path / name).exists()

    def test_reaps_recycled_pid(self, tmp_path):
        """A live PID whose start time differs from the one in the name
        is a recycled PID: the true owner is dead and the segment stale."""
        if _pid_start(os.getpid()) is None:
            pytest.skip("no /proc start-time source on this platform")
        # Our parent is alive in this namespace but certainly did not
        # start at tick 1.
        name = f"{SEGMENT_PREFIX}{os.getppid()}-{_node_token()}-1-aa"
        (tmp_path / name).write_bytes(b"x")
        assert reap_stale_segments(str(tmp_path)) == [name]
        assert not (tmp_path / name).exists()


class TestCleanupSegment:
    def test_survives_handles_without_private_attrs(self):
        """The BufferError fallback pokes CPython-private SharedMemory
        internals; a handle without them must still unlink, not raise
        inside a finalizer."""

        class Stub:
            __slots__ = ("unlinked",)

            def __init__(self):
                self.unlinked = False

            def close(self):
                raise BufferError("a view is still alive")

            def unlink(self):
                self.unlinked = True

        stub = Stub()
        _cleanup_segment(stub, owner=True)
        assert stub.unlinked


# ---------------------------------------------------------------------- #
# leak tests: segments never outlive their owner                         #
# ---------------------------------------------------------------------- #


def _run_child(script: str) -> subprocess.CompletedProcess:
    env = dict(os.environ, PYTHONPATH="src")
    return subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )


def _segments_of(pid: int) -> list[str]:
    prefix = f"{SEGMENT_PREFIX}{pid}-"
    return [
        name for name in os.listdir(_SHM_DIR) if name.startswith(prefix)
    ]


@needs_shm_dir
@pytest.mark.slow
def test_no_segment_leak_on_normal_exit():
    """A child that creates bundles and a pool, then exits normally,
    leaves nothing in /dev/shm — even for a bundle it never closed
    (the atexit hook covers leaked references)."""
    child = _run_child(
        """
        import numpy as np
        from repro.importance import ValuationEngine, Utility
        from repro.importance.shm import SharedArrayBundle
        from repro.learn import LogisticRegression
        from repro.datasets import make_classification

        leaked = SharedArrayBundle.create({"a": np.arange(8.0)})  # never closed
        X, y = make_classification(n=40, n_features=3, seed=1)
        utility = Utility(LogisticRegression(max_iter=20), X[:30], y[:30],
                          X[30:], y[30:])
        engine = ValuationEngine(utility, n_workers=2, pool=True)
        engine.run_permutations(4, seed=0)
        engine.close()
        print(f"PID={__import__('os').getpid()}")
        """
    )
    assert child.returncode == 0, child.stderr
    pid = int(child.stdout.strip().split("PID=")[1])
    assert _segments_of(pid) == []


@needs_shm_dir
@pytest.mark.slow
def test_crashed_owner_segments_are_reaped():
    """``os._exit`` skips every atexit/finalizer hook. Python's resource
    tracker would normally still unlink the segment — but a ``kill -9`` of
    the whole process group takes the tracker down too, so the child
    disables it to simulate that worst case. The segment survives the
    crash, and the next pool's construction-time reap (or an explicit
    call) reclaims it."""
    child = _run_child(
        """
        import os
        import numpy as np
        from multiprocessing import resource_tracker
        from repro.importance.shm import SharedArrayBundle

        resource_tracker.register = lambda *a, **k: None  # tracker "died"
        bundle = SharedArrayBundle.create({"a": np.arange(16.0)})
        print(f"PID={os.getpid()}", flush=True)
        os._exit(9)  # no cleanup runs
        """
    )
    assert child.returncode == 9
    pid = int(child.stdout.strip().split("PID=")[1])
    assert _segments_of(pid), "crash should have leaked the segment"
    reaped = reap_stale_segments()
    assert any(name.startswith(f"{SEGMENT_PREFIX}{pid}-") for name in reaped)
    assert _segments_of(pid) == []
