"""Machine-learning substrate: models, preprocessing, metrics, selection.

A from-scratch stand-in for scikit-learn covering exactly the estimator and
transformer surface that the tutorial's data-debugging methods require.
"""

from . import calibration, metrics, model_selection, models, preprocessing
from .base import Estimator, Transformer, clone
from .calibration import PlattCalibrator, expected_calibration_error, reliability_table
from .model_selection import KFold, cross_val_score, split_frame, train_test_split
from .models import (
    DecisionTreeClassifier,
    RandomForestClassifier,
    GaussianNB,
    KNeighborsClassifier,
    LinearRegression,
    LinearSVC,
    LogisticRegression,
    MajorityClassifier,
    RandomClassifier,
    RidgeRegression,
)
from .preprocessing import (
    CellImputer,
    ColumnTransformer,
    FunctionTransformer,
    MinMaxScaler,
    OneHotEncoder,
    OrdinalEncoder,
    Pipeline,
    SimpleImputer,
    StandardScaler,
)

__all__ = [
    "calibration",
    "metrics",
    "model_selection",
    "models",
    "preprocessing",
    "Estimator",
    "Transformer",
    "clone",
    "PlattCalibrator",
    "expected_calibration_error",
    "reliability_table",
    "RandomForestClassifier",
    "KFold",
    "cross_val_score",
    "split_frame",
    "train_test_split",
    "DecisionTreeClassifier",
    "GaussianNB",
    "KNeighborsClassifier",
    "LinearRegression",
    "LinearSVC",
    "LogisticRegression",
    "MajorityClassifier",
    "RandomClassifier",
    "RidgeRegression",
    "CellImputer",
    "ColumnTransformer",
    "FunctionTransformer",
    "MinMaxScaler",
    "OneHotEncoder",
    "OrdinalEncoder",
    "Pipeline",
    "SimpleImputer",
    "StandardScaler",
]
