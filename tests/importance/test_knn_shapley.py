"""Exactness and efficiency tests for closed-form KNN-Shapley."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.importance import knn_shapley, knn_shapley_brute_force, knn_utility


def random_task(seed, n_train=7, n_valid=3, n_features=2, n_classes=2):
    rng = np.random.default_rng(seed)
    return (
        rng.normal(size=(n_train, n_features)),
        rng.integers(0, n_classes, size=n_train),
        rng.normal(size=(n_valid, n_features)),
        rng.integers(0, n_classes, size=n_valid),
    )


class TestExactness:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 3, 5])
    def test_matches_brute_force(self, seed, k):
        X, y, Xv, yv = random_task(seed)
        closed = knn_shapley(X, y, Xv, yv, k=k).values
        brute = knn_shapley_brute_force(X, y, Xv, yv, k=k).values
        assert np.allclose(closed, brute, atol=1e-10)

    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    @pytest.mark.parametrize("k", [3, 7])
    def test_fewer_points_than_k_matches_brute_force(self, n, k):
        """Regression test: the recursion's base case needs a min(K, n)/K
        factor when n < K (the paper states it for n ≥ K only)."""
        rng = np.random.default_rng(n * 100 + k)
        X = rng.normal(size=(n, 2))
        y = rng.integers(0, 2, size=n)
        Xv = rng.normal(size=(4, 2))
        yv = rng.integers(0, 2, size=4)
        closed = knn_shapley(X, y, Xv, yv, k=k).values
        brute = knn_shapley_brute_force(X, y, Xv, yv, k=k).values
        assert np.allclose(closed, brute, atol=1e-10)
        v_full = knn_utility(np.arange(n), X, y, Xv, yv, k=k)
        assert closed.sum() == pytest.approx(v_full, abs=1e-10)

    @pytest.mark.parametrize("seed", range(3))
    def test_multiclass_matches_brute_force(self, seed):
        X, y, Xv, yv = random_task(seed, n_classes=3)
        closed = knn_shapley(X, y, Xv, yv, k=3).values
        brute = knn_shapley_brute_force(X, y, Xv, yv, k=3).values
        assert np.allclose(closed, brute, atol=1e-10)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_efficiency_axiom(self, seed):
        """Σφ_i must equal v(N) − v(∅) = v(N) exactly, for any data."""
        X, y, Xv, yv = random_task(seed, n_train=12, n_valid=4)
        result = knn_shapley(X, y, Xv, yv, k=3)
        v_full = knn_utility(np.arange(12), X, y, Xv, yv, k=3)
        assert result.values.sum() == pytest.approx(v_full, abs=1e-10)


class TestSemantics:
    def test_matching_neighbor_positive_value(self):
        """A training point identical to a validation point with the same
        label must receive positive value."""
        X = np.asarray([[0.0], [5.0], [9.0]])
        y = np.asarray([0, 1, 1])
        result = knn_shapley(X, y, np.asarray([[0.1]]), np.asarray([0]), k=1)
        assert result.values[0] > 0

    def test_mislabeled_nearest_negative_value(self):
        X = np.asarray([[0.0], [5.0], [9.0]])
        y = np.asarray([1, 0, 0])  # nearest to query has the wrong label
        result = knn_shapley(X, y, np.asarray([[0.1]]), np.asarray([0]), k=1)
        assert result.values[0] < 0

    def test_detects_label_errors_above_chance(self):
        rng = np.random.default_rng(1)
        n = 100
        X = rng.normal(size=(n, 2))
        y = (X[:, 0] > 0).astype(int)
        dirty = y.copy()
        flipped = rng.choice(n, size=15, replace=False)
        dirty[flipped] = 1 - dirty[flipped]
        Xv = rng.normal(size=(60, 2))
        yv = (Xv[:, 0] > 0).astype(int)
        result = knn_shapley(X, dirty, Xv, yv, k=5)
        mask = np.zeros(n, bool)
        mask[flipped] = True
        assert result.detection_precision_at_k(mask, 15) > 0.45  # ≫ 15% base rate

    def test_invalid_k_raises(self):
        X, y, Xv, yv = random_task(0)
        with pytest.raises(ValueError):
            knn_shapley(X, y, Xv, yv, k=0)

    @pytest.mark.parametrize("block_size", [1, 2, 5, 1000])
    def test_block_size_does_not_change_values(self, block_size):
        X, y, Xv, yv = random_task(4, n_train=20, n_valid=11)
        base = knn_shapley(X, y, Xv, yv, k=3).values
        blocked = knn_shapley(X, y, Xv, yv, k=3, block_size=block_size).values
        assert np.allclose(blocked, base, atol=1e-12)

    def test_invalid_block_size_raises(self):
        X, y, Xv, yv = random_task(0)
        with pytest.raises(ValueError):
            knn_shapley(X, y, Xv, yv, block_size=0)

    def test_length_mismatch_raises(self):
        X, y, Xv, yv = random_task(0)
        with pytest.raises(ValueError):
            knn_shapley(X, y[:-1], Xv, yv)

    def test_values_aligned_with_training_order(self):
        """Permuting the training set permutes the values identically."""
        X, y, Xv, yv = random_task(3, n_train=10)
        base = knn_shapley(X, y, Xv, yv, k=3).values
        perm = np.random.default_rng(0).permutation(10)
        shuffled = knn_shapley(X[perm], y[perm], Xv, yv, k=3).values
        assert np.allclose(shuffled, base[perm], atol=1e-12)


class TestVectorisedEquivalence:
    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_vectorised_matches_scalar_recursion(self, seed):
        """The production (vectorised) path equals the reference scalar
        recursion bit for bit on random instances."""
        from repro.importance.knn_shapley import _single_test_shapley
        from repro.learn.models.knn import pairwise_distances

        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 30))
        n_valid = int(rng.integers(1, 8))
        k = int(rng.integers(1, 7))
        X = rng.normal(size=(n, 3))
        y = rng.integers(0, 3, size=n)
        Xv = rng.normal(size=(n_valid, 3))
        yv = rng.integers(0, 3, size=n_valid)
        fast = knn_shapley(X, y, Xv, yv, k=k).values
        distances = pairwise_distances(Xv, X)
        slow = np.zeros(n)
        for t in range(n_valid):
            order = np.argsort(distances[t], kind="stable")
            slow[order] += _single_test_shapley(y[order], yv[t], k)
        slow /= n_valid
        assert np.allclose(fast, slow, atol=1e-12)


class TestResultContainer:
    def test_lowest_returns_smallest(self):
        from repro.importance import ImportanceResult

        result = ImportanceResult("x", np.asarray([3.0, -1.0, 2.0]))
        assert result.lowest(2).tolist() == [1, 2]

    def test_highest_returns_largest(self):
        from repro.importance import ImportanceResult

        result = ImportanceResult("x", np.asarray([3.0, -1.0, 2.0]))
        assert result.highest(1).tolist() == [0]

    def test_rank_inverse_of_order(self):
        from repro.importance import ImportanceResult

        result = ImportanceResult("x", np.asarray([3.0, -1.0, 2.0]))
        assert result.rank().tolist() == [2, 0, 1]

    def test_recall_at_k(self):
        from repro.importance import ImportanceResult

        result = ImportanceResult("x", np.asarray([0.1, 5.0, 0.2, 5.0]))
        mask = np.asarray([True, False, True, False])
        assert result.detection_recall_at_k(mask, 2) == 1.0

    def test_mask_length_mismatch_raises(self):
        from repro.importance import ImportanceResult

        result = ImportanceResult("x", np.asarray([1.0]))
        with pytest.raises(ValueError):
            result.detection_precision_at_k(np.asarray([True, False]), 1)
