"""Process-wide metrics: counters, gauges, histograms.

Tracing (:mod:`repro.obs.trace`) answers "where did the time go in *this*
run"; metrics answer "how much work happened, cumulatively" — rows
quarantined by reason, utility-cache hits, permutation waves, standard-error
trajectories. Instruments are cheap enough to update from moderately hot
paths (a lock-free attribute increment; registry lookups are dict hits),
but instrumented library code still gates every update on
:func:`repro.obs.trace.enabled` so the disabled path stays a flag check.

The registry is fork-aware the same way the trace recorder is: a forked
worker that inherits it starts from zero on first touch, so parent-side
snapshots never double-count worker activity.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque
from typing import Any, Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset",
]

#: Observations kept per histogram (ring buffer) so trajectories — e.g. the
#: engine's per-wave max standard error — stay inspectable without
#: unbounded growth.
HISTOGRAM_WINDOW = 512


class Counter:
    """Monotone cumulative count (floats allowed: row counts, seconds)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge for deltas")
        self.value += amount

    def snapshot(self) -> dict[str, Any]:
        return {"type": "counter", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict[str, Any]:
        return {"type": "gauge", "value": self.value}

    def reset(self) -> None:
        self.value = 0.0


class Histogram:
    """Running aggregate + bounded window of recent observations."""

    __slots__ = ("name", "count", "total", "min", "max", "window")

    def __init__(self, name: str, window: int = HISTOGRAM_WINDOW) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.window: deque[float] = deque(maxlen=window)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.window.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """Linear-interpolated quantile over the *windowed* observations.

        ``q`` is in ``[0, 1]``. Returns ``None`` while the window is empty;
        a single observation answers every quantile. Once more than
        ``window`` values have been observed the estimate covers only the
        most recent ``window`` of them (the ring buffer's contents).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if not self.window:
            return None
        ordered = sorted(self.window)
        position = q * (len(ordered) - 1)
        lower = int(position)
        upper = min(lower + 1, len(ordered) - 1)
        fraction = position - lower
        return ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction

    def snapshot(self) -> dict[str, Any]:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "recent": list(self.window),
        }

    def reset(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.window.clear()


class MetricsRegistry:
    """Name → instrument map with snapshot/reset and JSON export.

    Instruments are created on first use; asking for an existing name with
    a different instrument kind is an error (it would silently split one
    metric into two).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._metrics: dict[str, Any] = {}

    def _guard_fork(self) -> None:
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._metrics = {}

    def _get(self, name: str, cls: type) -> Any:
        with self._lock:
            self._guard_fork()
            instrument = self._metrics.get(name)
            if instrument is None:
                instrument = cls(name)
                self._metrics[name] = instrument
            elif not isinstance(instrument, cls):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {cls.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        with self._lock:
            self._guard_fork()
            return sorted(self._metrics)

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Point-in-time copy: ``{name: {"type": ..., "value"/"count": ...}}``."""
        with self._lock:
            self._guard_fork()
            return {
                name: instrument.snapshot()
                for name, instrument in sorted(self._metrics.items())
            }

    def reset(self, names: Iterable[str] | None = None) -> None:
        """Zero every instrument (or just ``names``), keeping registrations."""
        with self._lock:
            self._guard_fork()
            targets = self._metrics.keys() if names is None else names
            for name in list(targets):
                if name in self._metrics:
                    self._metrics[name].reset()

    def clear(self) -> None:
        """Drop every registration entirely."""
        with self._lock:
            self._guard_fork()
            self._metrics = {}

    def export_json(self, path: Any) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.snapshot(), handle, indent=2, sort_keys=True)
            handle.write("\n")


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry all instrumented code reports into."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)


def snapshot() -> dict[str, dict[str, Any]]:
    return _REGISTRY.snapshot()


def reset(names: Iterable[str] | None = None) -> None:
    _REGISTRY.reset(names)
