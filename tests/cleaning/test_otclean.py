"""Tests for OTClean-style conditional-independence repair."""

import numpy as np
import pytest

from repro.cleaning import OTCleanRepair, conditional_mutual_information, otclean
from repro.frame import DataFrame


def make_violating_frame(n=1500, strength=0.7, seed=0):
    """X depends on Y inside each Z-stratum (CI violated)."""
    rng = np.random.default_rng(seed)
    z = rng.choice(["s1", "s2"], size=n)
    y = rng.choice(["yes", "no"], size=n)
    x = np.where(
        (y == "yes") & (rng.random(n) < strength), "A", rng.choice(["A", "B"], size=n)
    )
    return DataFrame({"x": x.astype(str), "y": y.astype(str), "z": z.astype(str)})


def make_ci_frame(n=1500, seed=1):
    """X ⊥ Y | Z by construction: X depends only on Z."""
    rng = np.random.default_rng(seed)
    z = rng.choice(["s1", "s2"], size=n)
    y = rng.choice(["yes", "no"], size=n)
    x = np.where(z == "s1", rng.choice(["A", "B"], size=n, p=[0.8, 0.2]),
                 rng.choice(["A", "B"], size=n, p=[0.3, 0.7]))
    return DataFrame({"x": x.astype(str), "y": y.astype(str), "z": z.astype(str)})


class TestCMI:
    def test_violating_data_has_positive_cmi(self):
        frame = make_violating_frame()
        assert conditional_mutual_information(frame, "x", "y", "z") > 0.02

    def test_ci_data_has_near_zero_cmi(self):
        frame = make_ci_frame()
        assert conditional_mutual_information(frame, "x", "y", "z") < 0.005

    def test_cmi_nonnegative(self):
        frame = make_ci_frame(n=50, seed=3)
        assert conditional_mutual_information(frame, "x", "y", "z") >= 0.0

    def test_stronger_dependence_higher_cmi(self):
        weak = make_violating_frame(strength=0.2, seed=2)
        strong = make_violating_frame(strength=0.9, seed=2)
        assert conditional_mutual_information(
            strong, "x", "y", "z"
        ) > conditional_mutual_information(weak, "x", "y", "z")


class TestOTClean:
    def test_repair_zeroes_weighted_cmi(self):
        frame = make_violating_frame()
        repair = otclean(frame, "x", "y", "z")
        assert repair.cmi_before > 0.02
        assert repair.cmi_after < 1e-9

    def test_weights_nonnegative_and_normalisable(self):
        frame = make_violating_frame()
        repair = otclean(frame, "x", "y", "z")
        assert np.all(repair.weights >= 0)
        assert repair.weights.sum() > 0

    def test_ci_data_gets_near_uniform_weights(self):
        frame = make_ci_frame()
        repair = otclean(frame, "x", "y", "z")
        # Already independent: the projection barely moves anything.
        assert np.abs(repair.weights - 1.0).mean() < 0.1

    def test_resample_reduces_cmi(self):
        frame = make_violating_frame()
        repair = otclean(frame, "x", "y", "z")
        resampled = repair.resample(frame, seed=1)
        assert resampled.num_rows == frame.num_rows
        assert (
            conditional_mutual_information(resampled, "x", "y", "z")
            < 0.3 * repair.cmi_before
        )

    def test_resample_preserves_schema(self):
        frame = make_violating_frame(n=200)
        repair = otclean(frame, "x", "y", "z")
        resampled = repair.resample(frame, n=100, seed=2)
        assert resampled.columns == frame.columns
        assert resampled.num_rows == 100

    def test_repair_does_not_touch_values(self):
        """OTClean reweights; it never fabricates cell values."""
        frame = make_violating_frame(n=300)
        repair = otclean(frame, "x", "y", "z")
        resampled = repair.resample(frame, seed=3)
        original_rows = {tuple(r.values()) for r in frame.to_rows()}
        for row in resampled.to_rows():
            assert tuple(row.values()) in original_rows
