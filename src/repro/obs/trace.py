"""Hierarchical tracing: spans, a recorder, and zero-cost disabled mode.

The paper's Debug pillar rests on being able to *see inside* a pipeline
(mlinspect/ArgusEyes-style inspection); this module gives the runtime the
same property. A :class:`Span` is one timed region of work (an operator
evaluation, a permutation wave, a cleaning round) with a name, attributes,
and a parent — together they form the trace tree that
:class:`repro.obs.report.TraceReport` renders.

Design constraints, in order:

no overhead when disabled
    Tracing is off by default. Every instrumentation site goes through
    :func:`span` (or :func:`traced`), whose disabled path is a single
    module-global flag check returning a shared no-op singleton — no
    allocation, no lock, no clock read. The engine benchmark asserts the
    end-to-end cost of this path is < 5% of the workload.

thread- and fork-safety
    Completed spans are appended under a lock; the *active* span stack is
    ``threading.local`` so concurrent threads build disjoint subtrees.
    Fork-based worker pools (the :class:`~repro.importance.engine.
    ValuationEngine` fan-out) inherit the recorder; the first recording in
    a forked child detects the PID change and silently drops the child's
    buffer so parent spans are never duplicated and worker spans never
    corrupt the parent's trace. Driver-side traces therefore have
    deterministic structure for a fixed seed, whatever ``n_workers`` is.

deterministic structure
    Span ids are a monotone counter and spans are recorded in start order
    (pre-order of the tree), so for a fixed-seed workload the sequence of
    ``(name, parent)`` pairs — though not the timings — is reproducible
    and directly assertable in tests.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Span",
    "TraceRecorder",
    "TRACE_SCHEMA_VERSION",
    "enabled",
    "enable",
    "disable",
    "span",
    "traced",
    "add_attrs",
    "current_span",
    "get_recorder",
]

#: Version stamped into every trace JSONL export (header line). Readers
#: must ignore unknown fields, so this only gates *incompatible* changes.
TRACE_SCHEMA_VERSION = 1

#: Process-wide on/off switch. Read via :func:`enabled`; instrumentation
#: sites must treat ``False`` as "do nothing at all".
_ENABLED = False


@dataclass
class Span:
    """One timed region of work.

    ``start`` is a ``time.perf_counter()`` reading (monotonic, comparable
    only within a process); ``duration`` is ``None`` while the span is
    open. ``parent_id`` is ``None`` for roots.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": _jsonable(self.attrs),
        }


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-encodable shapes (numpy included)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    # numpy scalars/arrays without importing numpy here (obs is dependency-free)
    if hasattr(value, "tolist"):
        return _jsonable(value.tolist())
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


class TraceRecorder:
    """Collects completed spans; one per process (see :func:`get_recorder`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._spans: list[Span] = []
        self._next_id = 0
        self._local = threading.local()

    # -- fork/thread plumbing -------------------------------------------
    def _guard_fork(self) -> None:
        """Called before any mutation: a PID change means we are a forked
        child that inherited the parent's buffer — start from scratch."""
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._spans = []
            self._next_id = 0
            self._local = threading.local()

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- span lifecycle -------------------------------------------------
    def start_span(self, name: str, attrs: dict[str, Any]) -> Span:
        with self._lock:
            self._guard_fork()
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
            span_obj = Span(
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start=time.perf_counter(),
                attrs=attrs,
            )
            self._next_id += 1
            # Recorded at start: the span list is the pre-order traversal
            # of the trace tree, which makes structure assertions trivial.
            self._spans.append(span_obj)
            stack.append(span_obj)
        return span_obj

    def end_span(self, span_obj: Span) -> None:
        end = time.perf_counter()
        with self._lock:
            self._guard_fork()
            span_obj.duration = end - span_obj.start
            stack = self._stack()
            # Pop through (rather than asserting the top) so a span closed
            # out of order — e.g. by a generator finalised late — cannot
            # wedge the stack for the rest of the process.
            while stack and stack[-1].span_id >= span_obj.span_id:
                stack.pop()

    # -- introspection / export -----------------------------------------
    @property
    def spans(self) -> list[Span]:
        with self._lock:
            self._guard_fork()
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            self._guard_fork()
            return len(self._spans)

    def current(self) -> Span | None:
        with self._lock:
            self._guard_fork()
            stack = self._stack()
            return stack[-1] if stack else None

    def reset(self) -> None:
        with self._lock:
            self._guard_fork()
            self._spans = []
            self._next_id = 0
            self._local = threading.local()

    def export_jsonl(self, path: Any) -> int:
        """Write a schema-version header then one JSON object per completed
        span; returns the span count. The file is staged and renamed into
        place atomically, so readers never observe a partial export."""
        from .atomicio import atomic_writer

        spans = [s for s in self.spans if s.finished]
        with atomic_writer(path) as handle:
            handle.write(
                json.dumps(
                    {
                        "schema_version": TRACE_SCHEMA_VERSION,
                        "kind": "trace_recorder",
                        "n_spans": len(spans),
                    }
                )
                + "\n"
            )
            for span_obj in spans:
                handle.write(json.dumps(span_obj.to_dict()) + "\n")
        return len(spans)


_RECORDER = TraceRecorder()


def get_recorder() -> TraceRecorder:
    """The process-wide recorder every span lands in."""
    return _RECORDER


# ---------------------------------------------------------------------- #
# public instrumentation surface                                         #
# ---------------------------------------------------------------------- #
class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    attrs: dict = {}


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager binding one live :class:`Span` to the recorder."""

    __slots__ = ("_span",)

    def __init__(self, span_obj: Span) -> None:
        self._span = span_obj

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        _RECORDER.end_span(self._span)

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self._span.set(**attrs)
        return self

    @property
    def attrs(self) -> dict:
        return self._span.attrs


def enabled() -> bool:
    """Fast flag check — the entire cost of instrumentation when off."""
    return _ENABLED


def enable() -> None:
    """Turn tracing (and metric emission at instrumented sites) on."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def span(name: str, **attrs: Any):
    """Open a span::

        with obs.span("node.map#3", rows=120) as s:
            ...
            s.set(rows_out=118)

    Disabled mode returns a shared no-op object without touching the
    recorder or the clock.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _ActiveSpan(_RECORDER.start_span(name, dict(attrs)))


def traced(name_or_fn: Any = None, **span_attrs: Any) -> Callable:
    """Decorator form of :func:`span`.

    Usable bare (``@traced``) or configured (``@traced("my.name", tag=1)``);
    defaults the span name to the function's qualified name. The disabled
    path is one flag check before delegating to the wrapped function.
    """
    import functools

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with span(label, **span_attrs):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        name = None
        return decorate(name_or_fn)
    name = name_or_fn
    return decorate


def add_attrs(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op if none/disabled)."""
    if not _ENABLED:
        return
    current = _RECORDER.current()
    if current is not None:
        current.set(**attrs)


def current_span() -> Span | None:
    """The innermost open span of this thread, or ``None``."""
    if not _ENABLED:
        return None
    return _RECORDER.current()
