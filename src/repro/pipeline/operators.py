"""Relational + ML operator DAG for preprocessing pipelines.

Pipelines are built fluently from :class:`PipelinePlan`::

    plan = PipelinePlan()
    train = plan.source("train_df")
    jobs = plan.source("jobdetail_df")
    social = plan.source("social_df")
    node = (
        train.join(jobs, on="job_id")
             .join(social, on="person_id")
             .filter(lambda df: df["sector"] == "healthcare", "sector == 'healthcare'")
             .with_column("has_twitter", lambda df: df["twitter"].notnull())
             .encode(feature_encoder, label_column="sentiment")
    )

The plan is *data-independent*: concrete input frames are bound at execution
time (:func:`repro.pipeline.execute.execute`), so the same plan runs on the
training sources, on cleaned variants during debugging, and on validation
sources. Every node records enough structure for the query-plan renderer and
for the provenance-tracking executor.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

from ..learn.preprocessing import ColumnTransformer

__all__ = [
    "PipelinePlan",
    "Node",
    "SourceNode",
    "JoinNode",
    "FilterNode",
    "MapNode",
    "ProjectNode",
    "EncodeNode",
]


class Node:
    """A pipeline operator; subclasses define ``kind`` and ``describe()``."""

    kind = "node"

    def __init__(self, plan: "PipelinePlan", inputs: Sequence["Node"]) -> None:
        self.plan = plan
        self.inputs = list(inputs)
        self.id = plan._register(self)

    # Fluent builders -----------------------------------------------------
    def join(
        self,
        other: "Node",
        on: str,
        how: str = "left",
        fuzzy: bool = False,
        suffix: str = "_right",
    ) -> "JoinNode":
        return JoinNode(self.plan, self, other, on=on, how=how, fuzzy=fuzzy, suffix=suffix)

    def filter(self, predicate: Callable, description: str = "") -> "FilterNode":
        return FilterNode(self.plan, self, predicate, description)

    def with_column(
        self,
        name: str,
        func: Callable,
        description: str = "",
        aggregate: bool = False,
    ) -> "MapNode":
        return MapNode(self.plan, self, name, func, description, aggregate=aggregate)

    def project(self, columns: Sequence[str]) -> "ProjectNode":
        return ProjectNode(self.plan, self, list(columns))

    def encode(self, encoder: ColumnTransformer, label_column: str) -> "EncodeNode":
        return EncodeNode(self.plan, self, encoder, label_column)

    def describe(self) -> str:
        return self.kind

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.id}: {self.describe()}>"


class SourceNode(Node):
    kind = "source"

    def __init__(self, plan: "PipelinePlan", name: str) -> None:
        self.name = name
        super().__init__(plan, [])

    def describe(self) -> str:
        return self.name


class JoinNode(Node):
    kind = "join"

    def __init__(
        self,
        plan: "PipelinePlan",
        left: Node,
        right: Node,
        on: str,
        how: str = "left",
        fuzzy: bool = False,
        suffix: str = "_right",
    ) -> None:
        self.on = on
        self.how = how
        self.fuzzy = fuzzy
        self.suffix = suffix
        super().__init__(plan, [left, right])

    def describe(self) -> str:
        flavor = "fuzzy " if self.fuzzy else ""
        return f"{flavor}{self.how} join on {self.on}"


class FilterNode(Node):
    kind = "filter"

    def __init__(
        self, plan: "PipelinePlan", parent: Node, predicate: Callable, description: str
    ) -> None:
        self.predicate = predicate
        self.description = description or getattr(predicate, "__name__", "predicate")
        super().__init__(plan, [parent])

    def describe(self) -> str:
        return f"filter: {self.description}"


class MapNode(Node):
    """Adds or replaces a column via a user-defined function over the frame.

    ``aggregate=True`` declares that the UDF reads *across* rows (a mean,
    a rank, a window) rather than row-locally. Execution is unchanged —
    provenance stays row-preserving either way — but the canonical
    compiler (:mod:`repro.pipeline.canonical`) refuses to compile
    aggregate maps: their outputs depend on every input row, so exact
    per-source valuation through them would silently mis-attribute.
    """

    kind = "map"

    def __init__(
        self,
        plan: "PipelinePlan",
        parent: Node,
        name: str,
        func: Callable,
        description: str,
        aggregate: bool = False,
    ) -> None:
        self.name = name
        self.func = func
        self.aggregate = bool(aggregate)
        self.description = description or f"{name} = udf(row)"
        super().__init__(plan, [parent])

    def describe(self) -> str:
        return f"map: {self.description}"


class ProjectNode(Node):
    kind = "project"

    def __init__(self, plan: "PipelinePlan", parent: Node, columns: list[str]) -> None:
        self.columns = columns
        super().__init__(plan, [parent])

    def describe(self) -> str:
        return f"project: {', '.join(self.columns)}"


class EncodeNode(Node):
    """Feature encoding + label extraction; the relational-to-vector boundary."""

    kind = "encode"

    def __init__(
        self,
        plan: "PipelinePlan",
        parent: Node,
        encoder: ColumnTransformer,
        label_column: str,
    ) -> None:
        self.encoder = encoder
        self.label_column = label_column
        super().__init__(plan, [parent])

    def describe(self) -> str:
        parts = []
        for transformer, columns in self.encoder.transformers:
            target = columns if isinstance(columns, str) else ", ".join(columns)
            parts.append(f"{type(transformer).__name__}({target})")
        return f"encode: {'; '.join(parts)} | label: {self.label_column}"


class PipelinePlan:
    """Container and factory for pipeline nodes."""

    def __init__(self) -> None:
        self.nodes: list[Node] = []

    def _register(self, node: Node) -> int:
        self.nodes.append(node)
        return len(self.nodes) - 1

    def source(self, name: str) -> SourceNode:
        return SourceNode(self, name)

    @property
    def sources(self) -> list[SourceNode]:
        return [n for n in self.nodes if isinstance(n, SourceNode)]

    def source_names(self) -> list[str]:
        return [s.name for s in self.sources]

    def topological_order(self, sink: Node) -> list[Node]:
        """Operators reachable from ``sink``, inputs before consumers."""
        order: list[Node] = []
        seen: set[int] = set()

        def visit(node: Node) -> None:
            if node.id in seen:
                return
            seen.add(node.id)
            for parent in node.inputs:
                visit(parent)
            order.append(node)

        visit(sink)
        return order
