"""Observability is process-global state; leave none of it behind."""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


@pytest.fixture(autouse=True)
def clean_observability():
    obs_trace.disable()
    obs_trace.get_recorder().reset()
    obs_metrics.registry().clear()
    yield
    obs_trace.disable()
    obs_trace.get_recorder().reset()
    obs_metrics.registry().clear()
