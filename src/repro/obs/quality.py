"""Streaming per-column data-quality collectors and the pipeline monitor.

The Debug strand of the paper (Datascope, mlinspect/ArgusEyes) watches the
*data* flowing through a pipeline, not just the code. Tracing
(:mod:`repro.obs.trace`) already answers "where did the time go"; this
module answers "what did the data look like at every node" — the signal a
long-running service diffs across runs to localise regressions
(:mod:`repro.obs.diff`).

Three layers, all zero-dependency beyond NumPy (which the frame layer
already requires):

- :class:`ColumnQualityCollector` — a single-pass streaming collector per
  column: completeness, a capped-exact/KMV distinctness estimate, min/max,
  Welford mean/std (batch-merged, so repeated ``update`` calls over chunks
  equal one pass over the concatenation), a fixed-bin histogram whose
  edges freeze on the first batch (later out-of-range values clip into the
  edge bins), and a bounded categorical top-k with an ``other`` overflow
  counter.
- :class:`NodeQualityProfile` — the frozen snapshot one pipeline node
  emits: rows in/out, wall time, and a :class:`ColumnProfile` per output
  column. Serialises to plain dicts (schema-versioned by the run ledger).
- :class:`PipelineMonitor` — the object threaded through
  ``pipeline.execute(..., monitor=...)``. It observes every node's output
  frame *after* the node's span closes, so monitoring can never perturb
  the computed result (a property ``benchmarks/bench_monitoring.py``
  asserts) and the profiling cost is excluded from the node's own timing.
"""

from __future__ import annotations

import zlib
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = [
    "ColumnProfile",
    "ColumnQualityCollector",
    "NodeQualityProfile",
    "PipelineMonitor",
    "profile_frame",
    "fingerprint_frame",
]

#: Bins used for numeric histograms (edges frozen on the first batch).
DEFAULT_BINS = 10
#: Distinct values tracked exactly; beyond this the collector switches to a
#: KMV (k-minimum-values) estimate over the same hash set.
DISTINCT_CAP = 1024
#: Categorical values tracked exactly before overflow goes to ``other``.
TRACKED_CATEGORIES = 64
#: Entries reported in a profile's ``top_k``.
TOP_K = 12

_HASH_SPACE = float(2**32)
#: Fibonacci multiplier for the vectorised numeric hash (2^64 / φ, odd).
_FIB_MULT = np.uint64(0x9E3779B97F4A7C15)


#: Process-wide string→hash memo. The same string objects flow through
#: every node of a pipeline, so each unique value pays for one crc32 and
#: every later sighting is a dict hit (str caches its own ``__hash__``).
_STR_HASH_MEMO: dict[str, int] = {}
_STR_HASH_MEMO_CAP = 1 << 17


def _stable_hash(value: Any) -> int:
    """Deterministic 32-bit hash (``hash()`` is salted per process)."""
    if isinstance(value, str):
        cached = _STR_HASH_MEMO.get(value)
        if cached is None:
            if len(_STR_HASH_MEMO) >= _STR_HASH_MEMO_CAP:
                _STR_HASH_MEMO.clear()
            cached = zlib.crc32(value.encode("utf-8", "backslashreplace"))
            _STR_HASH_MEMO[value] = cached
        return cached
    return zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))


def _hash_ustrings(arr: np.ndarray) -> np.ndarray:
    """Vectorised 32-bit hashes for a fixed-width unicode (``U``) array.

    Folds up to 16 codepoints strided across each value's width (all of
    them for narrow columns, so short strings hash exactly). Wide values
    differing only between sampled positions collide — acceptable for KMV
    distinctness estimation, and orders of magnitude cheaper than
    materialising a Python string per cell to crc32 it.
    """
    n = arr.shape[0]
    width = arr.dtype.itemsize // 4
    codes = np.ascontiguousarray(arr).view(np.uint32).reshape(n, width)
    if width > 16:
        cols = np.unique(np.linspace(0, width - 1, num=16).astype(np.int64))
        codes = codes[:, cols]
    folded = np.zeros(n, dtype=np.uint64)
    prime = np.uint64(1099511628211)  # FNV-1a prime
    for j in range(codes.shape[1]):
        folded = folded * prime + codes[:, j]
    return (folded * _FIB_MULT) >> np.uint64(32)


@dataclass
class ColumnProfile:
    """Frozen per-column quality statistics (one :class:`Column`, one node).

    ``distinct`` is exact while the collector tracked at most
    :data:`DISTINCT_CAP` values (``distinct_exact=True``) and a KMV
    estimate beyond that. Numeric fields are ``None`` for non-numeric
    columns; ``histogram`` is ``None`` when no finite value was seen.
    """

    name: str
    kind: str
    count: int
    missing: int
    distinct: int
    distinct_exact: bool = True
    mean: float | None = None
    std: float | None = None
    min: float | None = None
    max: float | None = None
    histogram: dict[str, list[float]] | None = None
    top_k: list[list[Any]] = field(default_factory=list)
    other_count: int = 0

    @property
    def completeness(self) -> float:
        return 1.0 - (self.missing / self.count) if self.count else 1.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "count": self.count,
            "missing": self.missing,
            "completeness": self.completeness,
            "distinct": self.distinct,
            "distinct_exact": self.distinct_exact,
            "mean": self.mean,
            "std": self.std,
            "min": self.min,
            "max": self.max,
            "histogram": self.histogram,
            "top_k": [[str(value), int(count)] for value, count in self.top_k],
            "other_count": self.other_count,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ColumnProfile":
        """Rebuild from a dict, ignoring unknown keys (forward compat)."""
        known = {f for f in cls.__dataclass_fields__}
        data = {k: v for k, v in payload.items() if k in known}
        data.setdefault("name", "")
        data.setdefault("kind", "")
        data.setdefault("count", 0)
        data.setdefault("missing", 0)
        data.setdefault("distinct", 0)
        data["top_k"] = [list(entry) for entry in data.get("top_k") or []]
        return cls(**data)


class ColumnQualityCollector:
    """Single-pass streaming quality statistics for one column.

    ``update`` accepts :class:`repro.frame.Column` batches; calling it
    several times over chunks yields the same aggregate as one call over
    the concatenation (Welford/Chan merge for mean/std, monotone min/max,
    hash-set union for distinctness). Histogram edges freeze on the first
    numeric batch so bin counts stay comparable as a stream grows.
    """

    def __init__(self, name: str, bins: int = DEFAULT_BINS) -> None:
        self.name = name
        self.bins = int(bins)
        self.kind = ""
        self.count = 0
        self.missing = 0
        self._n_obs = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = np.inf
        self._max = -np.inf
        self._hash_arr: np.ndarray = np.empty(0, dtype=np.uint64)  # sorted
        self._distinct_exact = True
        self._kmv_threshold: int | None = None
        self._edges: np.ndarray | None = None
        self._bin_counts: np.ndarray | None = None
        self._categories: dict[Any, int] = {}
        self._tracked_sorted: np.ndarray | None = None
        self._cat_by_hash: dict[int, str] = {}
        self._tracked_hashes: np.ndarray | None = None
        self._other = 0

    # -- batch ingestion -------------------------------------------------
    def update(self, column: Any) -> "ColumnQualityCollector":
        mask = np.asarray(column.mask, dtype=bool)
        n_missing = int(mask.sum())
        self.count += len(mask)
        self.missing += n_missing
        if not self.kind:
            self.kind = column.dtype_kind
        present = column.values if n_missing == 0 else column.values[~mask]
        if present.size == 0:
            return self
        kind = column.dtype_kind
        if kind in ("float", "int", "bool"):
            arr = present.astype(float)
            self._update_numeric(arr)
            self._update_distinct_numeric(arr)
            if kind in ("bool", "int"):
                self._update_categories_sorted(present)
        elif kind == "string" and present.dtype.kind == "U":
            # Fixed-width unicode arrays: hash the codepoint buffer
            # directly — .tolist() would materialise fresh Python strings
            # for every node the column flows through, and numpy
            # sort/unique on wide U dtypes pays per-comparison for the
            # full width. One vectorised hash serves both sketches.
            hashed = _hash_ustrings(present)
            self._update_distinct_hashes(hashed)
            self._update_categories_hashed(hashed, present)
        else:
            # One hash-based tally serves both distinctness and top-k —
            # much cheaper than sorting object arrays with np.unique.
            tally = Counter(present.tolist())
            self._update_distinct_values(tally)
            if kind == "string":
                self._update_categories_from(tally)
        return self

    def _update_numeric(self, arr: np.ndarray) -> None:
        total_b = float(arr.sum())
        if not np.isfinite(total_b):
            # NaN/inf poison the sum; only then pay for the filtering pass.
            arr = arr[np.isfinite(arr)]
        if arr.size == 0:
            return
        n_b = int(arr.size)
        mean_b = float(arr.mean())
        centered = arr - mean_b
        m2_b = float(np.dot(centered, centered))
        n_a = self._n_obs
        total = n_a + n_b
        delta = mean_b - self._mean
        self._m2 += m2_b + delta * delta * n_a * n_b / total
        self._mean += delta * n_b / total
        self._n_obs = total
        batch_min, batch_max = float(arr.min()), float(arr.max())
        self._min = min(self._min, batch_min)
        self._max = max(self._max, batch_max)
        if self._edges is None:
            lo, hi = batch_min, batch_max
            if lo == hi:
                lo, hi = lo - 0.5, hi + 0.5
            self._edges = np.linspace(lo, hi, self.bins + 1)
            self._bin_counts = np.zeros(self.bins, dtype=np.int64)
        # Direct uniform binning (the edges are linspace by construction);
        # out-of-range values clip into the edge bins so streamed batches
        # beyond the frozen range are still counted (and visible as mass
        # piling up at the extremes — itself a drift signal).
        lo, hi = float(self._edges[0]), float(self._edges[-1])
        scale = self.bins / (hi - lo)
        idx = ((arr - lo) * scale).astype(np.int64)
        np.clip(idx, 0, self.bins - 1, out=idx)
        self._bin_counts += np.bincount(idx, minlength=self.bins)

    def _update_distinct_numeric(self, arr: np.ndarray) -> None:
        # Fibonacci multiply-shift hash of the IEEE-754 bit patterns,
        # fully vectorised; the high 32 bits land in the same [0, 2^32)
        # KMV hash space as the per-value string path.
        bits = np.ascontiguousarray(arr, dtype=np.float64).view(np.uint64)
        self._update_distinct_hashes((bits * _FIB_MULT) >> np.uint64(32))

    def _update_distinct_hashes(self, hashed: np.ndarray) -> None:
        if self._kmv_threshold is not None:
            # Saturated sketch: only hashes below the kept k-th minimum
            # can change it — filter vectorised before merging.
            hashed = hashed[hashed < self._kmv_threshold]
            if hashed.size == 0:
                return
        merged = np.union1d(self._hash_arr, hashed)
        if merged.size > DISTINCT_CAP:
            # Keep the DISTINCT_CAP smallest hashes: the classic KMV sketch
            # (estimate from the k-th minimum of a uniform hash space).
            # ``merged`` is sorted, so the k smallest are a slice away.
            merged = merged[:DISTINCT_CAP]
            self._kmv_threshold = int(merged[-1])
            self._distinct_exact = False
        self._hash_arr = merged

    def _update_distinct_values(self, values: Iterable[Any]) -> None:
        # Inlined _stable_hash: one attribute lookup and no call overhead
        # per value on the hot string path.
        batch: list[int] = []
        append = batch.append
        memo = _STR_HASH_MEMO
        crc32 = zlib.crc32
        for value in values:
            if type(value) is str:
                cached = memo.get(value)
                if cached is None:
                    if len(memo) >= _STR_HASH_MEMO_CAP:
                        memo.clear()
                    cached = crc32(value.encode("utf-8", "backslashreplace"))
                    memo[value] = cached
                append(cached)
            else:
                append(_stable_hash(value))
        if batch:
            self._update_distinct_hashes(np.asarray(batch, dtype=np.uint64))

    def _update_categories(
        self, values: Iterable[Any], counts: Iterable[int]
    ) -> None:
        categories = self._categories
        for value, count in zip(values, counts):
            if value in categories:
                categories[value] += int(count)
            elif len(categories) < TRACKED_CATEGORIES:
                categories[value] = int(count)
            else:
                self._other += int(count)

    def _update_categories_from(self, tally: Mapping[Any, int]) -> None:
        categories = self._categories
        if len(categories) >= TRACKED_CATEGORIES and len(tally) > len(categories):
            # Table is full and the batch is high-cardinality: scan the 64
            # tracked keys instead of the (possibly thousands of) new ones.
            matched = 0
            for value, have in categories.items():
                add = tally.get(value)
                if add:
                    categories[value] = have + add
                    matched += add
            self._other += sum(tally.values()) - matched
            return
        self._update_categories(tally.keys(), tally.values())

    def _update_categories_sorted(self, present: np.ndarray) -> None:
        """Category counts for a sortable array (``U``/int/bool dtypes).

        Once the table is full its key set is frozen, so counting reduces
        to a vectorised ``searchsorted`` against the cached sorted keys —
        no per-value Python loop, no ``.tolist()`` of the whole batch.
        """
        categories = self._categories
        if len(categories) < TRACKED_CATEGORIES:
            uniques, counts = np.unique(present, return_counts=True)
            if not categories and len(uniques) >= TRACKED_CATEGORIES:
                # First batch of a high-cardinality column: fill the table
                # from the head and batch-sum the overflow, instead of a
                # per-unique Python loop over thousands of values.
                head = TRACKED_CATEGORIES
                self._update_categories(
                    uniques[:head].tolist(), counts[:head].tolist()
                )
                self._other += int(counts[head:].sum())
            else:
                self._update_categories(uniques.tolist(), counts.tolist())
            self._tracked_sorted = None  # may have just filled up
            return
        tracked = self._tracked_sorted
        if tracked is None:
            tracked = self._tracked_sorted = np.sort(np.asarray(list(categories)))
        idx = np.searchsorted(tracked, present)
        np.clip(idx, 0, len(tracked) - 1, out=idx)
        hit = tracked[idx] == present
        counts = np.bincount(idx[hit], minlength=len(tracked))
        for key, count in zip(tracked.tolist(), counts.tolist()):
            if count:
                categories[key] += count
        self._other += int(present.size - counts.sum())

    def _update_categories_hashed(
        self, hashed: np.ndarray, present: np.ndarray
    ) -> None:
        """Category counts for wide unicode columns, keyed by value hash.

        Tracked keys are chosen in hash order (not value order) and a
        hash collision folds the colliding value into an existing key —
        both acceptable for a profiling sketch, and they buy counting
        without ever sorting or materialising the string values.
        """
        categories = self._categories
        by_hash = self._cat_by_hash
        if len(categories) >= TRACKED_CATEGORIES:
            tracked = self._tracked_hashes
            if tracked is None:
                tracked = self._tracked_hashes = np.sort(
                    np.fromiter(by_hash, dtype=np.uint64, count=len(by_hash))
                )
            idx = np.searchsorted(tracked, hashed)
            np.clip(idx, 0, len(tracked) - 1, out=idx)
            hit = tracked[idx] == hashed
            counts = np.bincount(idx[hit], minlength=len(tracked))
            for key_hash, count in zip(tracked.tolist(), counts.tolist()):
                if count:
                    categories[by_hash[key_hash]] += count
            self._other += int(hashed.size - counts.sum())
            return
        uniques, first, counts = np.unique(
            hashed, return_index=True, return_counts=True
        )
        if not categories and len(uniques) >= TRACKED_CATEGORIES:
            # First batch of a high-cardinality column: track the head,
            # batch-sum the overflow (see _update_categories_sorted).
            head = TRACKED_CATEGORIES
            for key_hash, index, count in zip(
                uniques[:head].tolist(), first[:head].tolist(), counts[:head].tolist()
            ):
                value = str(present[index])
                by_hash[key_hash] = value
                categories[value] = count
            self._other += int(counts[head:].sum())
            self._tracked_hashes = None
            return
        for key_hash, index, count in zip(
            uniques.tolist(), first.tolist(), counts.tolist()
        ):
            value = by_hash.get(key_hash)
            if value is not None:
                categories[value] += count
            elif len(categories) < TRACKED_CATEGORIES:
                value = str(present[index])
                by_hash[key_hash] = value
                categories[value] = count
            else:
                self._other += count
        self._tracked_hashes = None  # may have just filled up

    # -- snapshot --------------------------------------------------------
    @property
    def distinct(self) -> int:
        n = int(self._hash_arr.size)
        if self._distinct_exact or n == 0:
            return n
        kth = int(self._hash_arr[-1])  # sorted: the k-th minimum is last
        if kth == 0:
            return n
        return int(round((n - 1) * _HASH_SPACE / kth))

    def snapshot(self) -> ColumnProfile:
        numeric = self._n_obs > 0
        std = (self._m2 / self._n_obs) ** 0.5 if self._n_obs else None
        top = sorted(
            self._categories.items(), key=lambda item: (-item[1], str(item[0]))
        )[:TOP_K]
        other = self._other + sum(
            count for __, count in self._categories.items()
        ) - sum(count for __, count in top)
        histogram = None
        if self._edges is not None:
            histogram = {
                "edges": [float(e) for e in self._edges],
                "counts": [int(c) for c in self._bin_counts],
            }
        return ColumnProfile(
            name=self.name,
            kind=self.kind,
            count=self.count,
            missing=self.missing,
            distinct=self.distinct,
            distinct_exact=self._distinct_exact,
            mean=self._mean if numeric else None,
            std=std,
            min=self._min if numeric else None,
            max=self._max if numeric else None,
            histogram=histogram,
            top_k=[[value, count] for value, count in top],
            other_count=int(other),
        )


@dataclass
class NodeQualityProfile:
    """What one pipeline node's output data looked like during a run."""

    node_id: int
    node_kind: str
    node_label: str
    rows_in: int
    rows_out: int
    wall_time_s: float
    columns: dict[str, ColumnProfile] = field(default_factory=dict)

    @property
    def key(self) -> str:
        return f"{self.node_kind}#{self.node_id}"

    def to_dict(self) -> dict[str, Any]:
        return {
            "node_id": self.node_id,
            "node_kind": self.node_kind,
            "node_label": self.node_label,
            "rows_in": self.rows_in,
            "rows_out": self.rows_out,
            "wall_time_s": self.wall_time_s,
            "columns": {name: prof.to_dict() for name, prof in self.columns.items()},
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "NodeQualityProfile":
        """Rebuild from a dict, ignoring unknown keys (forward compat)."""
        return cls(
            node_id=int(payload.get("node_id", -1)),
            node_kind=str(payload.get("node_kind", "")),
            node_label=str(payload.get("node_label", "")),
            rows_in=int(payload.get("rows_in", 0)),
            rows_out=int(payload.get("rows_out", 0)),
            wall_time_s=float(payload.get("wall_time_s", 0.0)),
            columns={
                name: ColumnProfile.from_dict(prof)
                for name, prof in (payload.get("columns") or {}).items()
            },
        )


def profile_frame(
    frame: Any, bins: int = DEFAULT_BINS, columns: Iterable[str] | None = None
) -> dict[str, ColumnProfile]:
    """One-shot per-column quality profile of a frame."""
    names = list(columns) if columns is not None else frame.columns
    out: dict[str, ColumnProfile] = {}
    for name in names:
        out[name] = (
            ColumnQualityCollector(name, bins=bins)
            .update(frame.column(name))
            .snapshot()
        )
    return out


def fingerprint_frame(frame: Any, bins: int = DEFAULT_BINS) -> dict[str, Any]:
    """Schema hash + per-column stats identifying a dataset's shape.

    Two frames with the same columns, dtype kinds, and per-column
    statistics fingerprint identically; the ``schema_hash`` alone changes
    whenever a column is added, dropped, renamed, or retyped.
    """
    schema = "|".join(
        f"{name}:{frame.column(name).dtype_kind}" for name in frame.columns
    )
    return {
        "n_rows": int(frame.num_rows),
        "n_columns": int(frame.num_columns),
        "schema_hash": f"{zlib.crc32(schema.encode('utf-8')):08x}",
        "columns": {
            name: prof.to_dict()
            for name, prof in profile_frame(frame, bins=bins).items()
        },
    }


class PipelineMonitor:
    """Collects a :class:`NodeQualityProfile` per pipeline node.

    Pass one to ``pipeline.execute(..., monitor=monitor)`` (or
    ``monitor=True`` for a throwaway instance). Observing the same node
    again — a second ``execute`` sharing the monitor, or an incremental
    append — *streams* into the existing collectors: row counts and wall
    time accumulate and the statistics merge as if the node had seen all
    the data at once.

    Parameters
    ----------
    bins:
        Histogram bins per numeric column.
    max_rows:
        When set, only the first ``max_rows`` rows of each node output are
        profiled — a sampling knob for very wide/long frames.
    """

    def __init__(self, bins: int = DEFAULT_BINS, max_rows: int | None = None) -> None:
        self.bins = int(bins)
        self.max_rows = max_rows
        self._profiles: dict[str, NodeQualityProfile] = {}
        self._collectors: dict[str, dict[str, ColumnQualityCollector]] = {}

    def __len__(self) -> int:
        return len(self._profiles)

    def observe_node(
        self, node: Any, rows_in: int, frame: Any, wall_time_s: float
    ) -> None:
        """Fold one node evaluation's output frame into the profile set."""
        key = f"{node.kind}#{node.id}"
        profile = self._profiles.get(key)
        if profile is None:
            profile = NodeQualityProfile(
                node_id=node.id,
                node_kind=node.kind,
                node_label=node.describe(),
                rows_in=0,
                rows_out=0,
                wall_time_s=0.0,
            )
            self._profiles[key] = profile
            self._collectors[key] = {}
        profile.rows_in += int(rows_in)
        profile.rows_out += int(frame.num_rows)
        profile.wall_time_s += float(wall_time_s)
        if self.max_rows is not None and frame.num_rows > self.max_rows:
            frame = frame.take(np.arange(self.max_rows))
        collectors = self._collectors[key]
        for name in frame.columns:
            collector = collectors.get(name)
            if collector is None:
                collector = ColumnQualityCollector(name, bins=self.bins)
                collectors[name] = collector
            collector.update(frame.column(name))

    def profiles(self) -> dict[str, NodeQualityProfile]:
        """Snapshot: node key → profile with frozen column statistics."""
        out: dict[str, NodeQualityProfile] = {}
        for key, profile in self._profiles.items():
            out[key] = NodeQualityProfile(
                node_id=profile.node_id,
                node_kind=profile.node_kind,
                node_label=profile.node_label,
                rows_in=profile.rows_in,
                rows_out=profile.rows_out,
                wall_time_s=profile.wall_time_s,
                columns={
                    name: collector.snapshot()
                    for name, collector in self._collectors[key].items()
                },
            )
        return out

    def to_dict(self) -> dict[str, Any]:
        return {key: prof.to_dict() for key, prof in self.profiles().items()}
