"""Profiling hooks: opt-in cProfile capture attached to the trace.

Spans tell you *which* region is slow; a profile tells you *why*. Because
``cProfile`` costs far more than a flag check, profiling is never implied
by :func:`repro.obs.trace.enable` — it must be requested explicitly per
block (or via the ``REPRO_PROFILE=1`` environment variable, which the
benchmark harness uses)::

    from repro.obs import profile_block

    with profile_block("engine.hot_loop") as prof:
        engine.run_permutations(200)
    print(prof.top_functions[:5])

When active, the block is also recorded as a span named
``profile.<name>`` whose attributes carry the top functions by cumulative
time, so profiles travel inside ordinary :class:`~repro.obs.report.
TraceReport` exports.
"""

from __future__ import annotations

import os
from typing import Any

from . import trace as _trace

__all__ = ["ProfileResult", "profile_block", "profiling_requested"]


def profiling_requested() -> bool:
    """True when the environment opts into profiling (``REPRO_PROFILE=1``)."""
    return os.environ.get("REPRO_PROFILE", "").strip() not in ("", "0", "false")


class ProfileResult:
    """Outcome of one profiled block (empty when profiling was off)."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.active = False
        self.total_calls = 0
        self.top_functions: list[dict[str, Any]] = []

    def _load(self, profiler: Any, top: int) -> None:
        import pstats

        stats = pstats.Stats(profiler)
        self.active = True
        self.total_calls = int(stats.total_calls)
        entries = []
        for func, (cc, nc, tt, ct, __) in stats.stats.items():  # type: ignore[attr-defined]
            filename, lineno, funcname = func
            entries.append(
                {
                    "function": f"{os.path.basename(filename)}:{lineno}({funcname})",
                    "calls": int(nc),
                    "tottime_s": float(tt),
                    "cumtime_s": float(ct),
                }
            )
        entries.sort(key=lambda e: -e["cumtime_s"])
        self.top_functions = entries[:top]


class profile_block:
    """Context manager capturing a cProfile for one block.

    ``enabled=None`` (the default) activates only when
    :func:`profiling_requested` says so; pass ``enabled=True`` to force.
    The disabled path costs one boolean check.
    """

    def __init__(self, name: str, enabled: bool | None = None, top: int = 10) -> None:
        self.result = ProfileResult(name)
        self._top = int(top)
        self._on = profiling_requested() if enabled is None else bool(enabled)
        self._profiler = None
        self._span = None

    def __enter__(self) -> ProfileResult:
        if not self._on:
            return self.result
        import cProfile

        self._span = _trace.span(f"profile.{self.result.name}")
        self._span.__enter__()
        self._profiler = cProfile.Profile()
        self._profiler.enable()
        return self.result

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if not self._on:
            return
        self._profiler.disable()
        self.result._load(self._profiler, self._top)
        self._span.set(
            total_calls=self.result.total_calls,
            top_functions=self.result.top_functions,
        )
        self._span.__exit__(exc_type, exc, tb)
