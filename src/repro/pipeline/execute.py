"""Provenance-tracking pipeline execution.

:func:`execute` walks an operator DAG, carrying a
:class:`~repro.pipeline.provenance.Provenance` alongside every intermediate
frame. The result bundles the encoded training matrix, labels, pre-encode
frame, and the output-row-to-source-tuple provenance — everything the
debugging tools of Section 2.2 consume.

Execution is fail-fast by default (one bad row aborts the run, exactly the
seed behaviour). Passing an :class:`~repro.pipeline.resilience.ExecutionPolicy`
— or calling :func:`execute_robust` — turns operator failures into
quarantined, provenance-attributed rows instead: the executor keeps the
vectorised fast path and only drops to row-wise evaluation for an operator
whose whole-frame evaluation raised, so clean data pays nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..frame import DataFrame
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs
from ..obs.quality import NodeQualityProfile, PipelineMonitor
from .operators import (
    EncodeNode,
    FilterNode,
    JoinNode,
    MapNode,
    Node,
    PipelinePlan,
    ProjectNode,
    SourceNode,
)
from .provenance import Provenance
from .resilience import (
    ErrorPolicy,
    ExecutionPolicy,
    OperatorError,
    Quarantine,
    deviant_cell_positions,
    retry_call,
)

__all__ = [
    "PipelineResult",
    "execute",
    "execute_robust",
    "with_provenance",
    "incremental_append",
]


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run.

    Attributes
    ----------
    X, y:
        Encoded feature matrix and label vector (None if the sink is not an
        :class:`EncodeNode`).
    frame:
        The relational output immediately before encoding.
    provenance:
        Why-provenance of each output row (aligned with ``X`` / ``frame``).
    sink:
        The executed sink node; ``sink.encoder`` holds the *fitted* feature
        encoder after a ``fit=True`` run.
    quarantine:
        Rows dropped (or patched) by a non-fail-fast
        :class:`~repro.pipeline.resilience.ExecutionPolicy`, each with its
        why-provenance. Empty under fail-fast execution.
    quality_profiles:
        Per-node :class:`~repro.obs.quality.NodeQualityProfile`\\ s when the
        run was executed with ``monitor=``; empty otherwise.
    """

    frame: DataFrame
    provenance: Provenance
    sink: Node
    X: np.ndarray | None = None
    y: np.ndarray | None = None
    intermediates: dict[int, int] = field(default_factory=dict)  # node id -> rows
    quarantine: Quarantine = field(default_factory=Quarantine)
    quality_profiles: dict[str, NodeQualityProfile] = field(default_factory=dict)

    @property
    def n_rows(self) -> int:
        return self.frame.num_rows

    def remove_source_rows(
        self, source: str, row_ids: Any
    ) -> tuple[np.ndarray, np.ndarray]:
        """Training matrix with every output row descending from the given
        source tuples dropped — *without re-running the pipeline*.

        This is the provenance shortcut (the paper's ``nde.remove``): because
        our operators are monotone (select-project-join), deleting a source
        tuple simply deletes the output rows whose why-provenance contains
        it, so the encoded matrix can be edited in place.
        """
        if self.X is None or self.y is None:
            raise RuntimeError("pipeline result has no encoded output")
        affected = self.provenance.outputs_of(source, np.asarray(row_ids).tolist())
        keep = np.ones(len(self.X), dtype=bool)
        keep[affected] = False
        return self.X[keep], self.y[keep]

    def source_positions(self, source: str) -> np.ndarray:
        """Source row id contributing to each output row (one per row)."""
        return self.provenance.source_row_ids(source)


# ----------------------------------------------------------------------
# Guard helpers for policy-driven execution
# ----------------------------------------------------------------------
def _attempt(
    fn: Callable[[], Any], policy: ErrorPolicy
) -> tuple[bool, Any, BaseException | None, int]:
    """Run ``fn`` under the policy's retry/timeout guards.

    Returns ``(ok, value, error, attempts)`` — never raises, so callers
    decide between fail-fast re-raise and quarantine.
    """
    try:
        value, attempts = retry_call(fn, policy)
        return True, value, None, attempts
    except BaseException as exc:  # noqa: BLE001 - dispatched by policy
        attempts = policy.max_retries + 1 if isinstance(exc, policy.retry_on) else 1
        return False, None, exc, attempts


def _operator_error(node: Node, error: BaseException) -> OperatorError:
    wrapped = OperatorError(
        f"{node.kind} operator #{node.id} ({node.describe()}) failed: {error}",
        node_id=node.id,
        node_kind=node.kind,
        node_label=node.describe(),
    )
    wrapped.__cause__ = error
    return wrapped


def _cells_of(raw: Any, n_rows: int) -> list:
    """Normalise a map-UDF result into a list of ``n_rows`` cells."""
    from ..frame.column import Column

    if isinstance(raw, Column):
        cells = raw.to_list()
    elif isinstance(raw, np.ndarray):
        cells = list(raw)
    else:
        cells = list(raw)
    if len(cells) != n_rows:
        raise ValueError(f"map produced {len(cells)} cells, expected {n_rows}")
    return cells


def _scalar(raw: Any) -> Any:
    """Extract the single cell from a map-UDF result over a one-row frame."""
    return _cells_of(raw, 1)[0]


def _node_span(node: Node, rows_in: int | None = None):
    """Span for one operator evaluation; inputs are computed *before* the
    span opens, so a node's duration is its own work, not its subtree's.

    Disabled tracing costs exactly the ``enabled()`` flag check — attrs
    (including ``describe()`` strings) are never built.
    """
    if not _obs.enabled():
        return _obs._NULL_SPAN
    attrs: dict[str, Any] = {"op": node.describe()}
    if rows_in is not None:
        attrs["rows_in"] = rows_in
    return _obs.span(f"node.{node.kind}#{node.id}", **attrs)


def _monitor_clock(monitor: PipelineMonitor | None) -> float:
    """Timestamp for per-node monitor timing; 0.0 (no clock read) when off."""
    return time.perf_counter() if monitor is not None else 0.0


def _monitor_observe(
    monitor: PipelineMonitor | None,
    node: Node,
    rows_in: int,
    frame: DataFrame,
    t0: float,
) -> None:
    """Fold a node's output frame into the monitor *after* its span closed.

    The elapsed time is taken before profiling starts, so the monitor's own
    cost is excluded from the node latency it records — and observation
    happens strictly after the node's result exists, so monitoring can
    never change what the pipeline computes.
    """
    if monitor is not None:
        monitor.observe_node(node, rows_in, frame, time.perf_counter() - t0)


_TIMEOUT_REASON = {True: "timeout", False: "error"}


def _reason_for(error: BaseException) -> str:
    from .resilience import OperatorTimeoutError

    return _TIMEOUT_REASON[isinstance(error, OperatorTimeoutError)]


def _run_map_guarded(
    node: MapNode,
    frame: DataFrame,
    prov: Provenance,
    policy: ErrorPolicy,
    quarantine: Quarantine,
) -> tuple[DataFrame, Provenance]:
    n = frame.num_rows
    ok, raw, error, attempts = _attempt(lambda: node.func(frame), policy)
    if not ok and policy.is_fail_fast:
        raise _operator_error(node, error)

    failures: dict[int, tuple[BaseException | None, str, int]] = {}
    if ok:
        cells = _cells_of(raw, n)
    else:
        # Whole-frame evaluation failed: isolate the poisonous rows by
        # re-evaluating the UDF over one-row frames.
        cells = [None] * n
        for pos in range(n):
            row_frame = frame.take([pos])
            ok_i, raw_i, err_i, att_i = _attempt(
                lambda rf=row_frame: node.func(rf), policy
            )
            if ok_i:
                cells[pos] = _scalar(raw_i)
            else:
                failures[pos] = (err_i, _reason_for(err_i), att_i)

    if policy.guard_types:
        healthy = [
            (pos, cell) for pos, cell in enumerate(cells) if pos not in failures
        ]
        deviants = deviant_cell_positions([cell for __, cell in healthy])
        for d in deviants:
            pos = healthy[int(d)][0]
            failures[pos] = (
                TypeError(f"cell type deviates from column majority: {cells[pos]!r}"),
                "corrupt_type",
                1,
            )

    if not failures:
        if ok:
            # Clean vectorised run: hand the raw result straight to the
            # frame so dtype behaviour matches fail-fast execution exactly.
            out = frame.copy()
            out[node.name] = raw
            return out, prov
        out = frame.copy()
        out[node.name] = cells
        return out, prov

    substitute = policy.keeps_row_on_error
    keep: list[int] = []
    for pos in range(n):
        if pos in failures:
            err_p, reason, att_p = failures[pos]
            quarantine.add(
                node, reason, err_p, prov.tuples[pos],
                attempts=att_p, substituted=substitute,
            )
            if substitute:
                cells[pos] = policy.default
                keep.append(pos)
        else:
            keep.append(pos)
    positions = np.asarray(keep, dtype=np.int64)
    out = frame.take(positions)
    out[node.name] = [cells[int(pos)] for pos in positions]
    return out, prov.take(positions)


def _run_filter_guarded(
    node: FilterNode,
    frame: DataFrame,
    prov: Provenance,
    policy: ErrorPolicy,
    quarantine: Quarantine,
) -> tuple[DataFrame, Provenance]:
    n = frame.num_rows
    ok, raw, error, __ = _attempt(lambda: node.predicate(frame), policy)
    if ok:
        mask = np.asarray(raw, dtype=bool)
    elif policy.is_fail_fast:
        raise _operator_error(node, error)
    else:
        mask = np.zeros(n, dtype=bool)
        for pos in range(n):
            row_frame = frame.take([pos])
            ok_i, raw_i, err_i, att_i = _attempt(
                lambda rf=row_frame: node.predicate(rf), policy
            )
            if ok_i:
                mask[pos] = bool(np.asarray(raw_i).reshape(-1)[0])
            else:
                substitute = policy.keeps_row_on_error
                quarantine.add(
                    node, _reason_for(err_i), err_i, prov.tuples[pos],
                    attempts=att_i, substituted=substitute,
                )
                mask[pos] = bool(policy.default) if substitute else False
    positions = np.flatnonzero(mask)
    return frame.take(positions), prov.take(positions)


def _run_join_guarded(
    node: JoinNode,
    left: tuple[DataFrame, Provenance],
    right: tuple[DataFrame, Provenance],
    policy: ErrorPolicy,
    quarantine: Quarantine,
) -> tuple[DataFrame, Provenance]:
    left_frame, left_prov = left
    right_frame, right_prov = right

    def joined_with_prov(frame: DataFrame, prov: Provenance):
        out, lpos, rpos = frame.join(
            right_frame,
            on=node.on,
            how=node.how,
            suffix=node.suffix,
            fuzzy=node.fuzzy,
            return_indices=True,
        )
        rows = []
        for lp, rp in zip(lpos, rpos):
            row = prov.tuples[int(lp)]
            if rp >= 0:
                row = row | right_prov.tuples[int(rp)]
            rows.append(row)
        return out, Provenance(rows)

    ok, value, error, __ = _attempt(
        lambda: joined_with_prov(left_frame, left_prov), policy
    )
    if ok:
        return value
    if policy.is_fail_fast:
        raise _operator_error(node, error)

    # Row-wise fallback: join each left row separately so one poisonous key
    # cannot take down the rest of the batch. (A join has no sensible
    # substitute value, so substitute_default degrades to skip here.)
    frames: list[DataFrame] = []
    prov_rows: list[frozenset] = []
    for pos in range(left_frame.num_rows):
        single = left_frame.take([pos])
        single_prov = left_prov.take([pos])
        ok_i, value_i, err_i, att_i = _attempt(
            lambda s=single, sp=single_prov: joined_with_prov(s, sp), policy
        )
        if ok_i:
            out_i, prov_i = value_i
            if out_i.num_rows:
                frames.append(out_i)
                prov_rows.extend(prov_i.tuples)
        else:
            quarantine.add(
                node, _reason_for(err_i), err_i, left_prov.tuples[pos],
                attempts=att_i,
            )
    if not frames:
        empty, lpos, rpos = left_frame.take(np.empty(0, dtype=np.int64)).join(
            right_frame,
            on=node.on,
            how=node.how,
            suffix=node.suffix,
            fuzzy=node.fuzzy,
            return_indices=True,
        )
        return empty, Provenance([])
    return DataFrame.concat_rows(frames), Provenance(prov_rows)


def _run_node(
    node: Node,
    sources: Mapping[str, DataFrame],
    fit: bool,
    cache: dict[int, tuple[DataFrame, Provenance]],
    policy: ExecutionPolicy | None = None,
    quarantine: Quarantine | None = None,
    monitor: PipelineMonitor | None = None,
) -> tuple[DataFrame, Provenance]:
    if node.id in cache:
        if _obs.enabled():
            _obs_metrics.counter("pipeline.node_cache.hits").inc()
        return cache[node.id]

    node_policy = policy.resolve(node) if policy is not None else None
    # "Strict" means the seed code path: plain fail-fast with no guards.
    strict = node_policy is None or (
        node_policy.is_fail_fast
        and node_policy.max_retries == 0
        and node_policy.timeout is None
    )

    if isinstance(node, SourceNode):
        if node.name not in sources:
            raise KeyError(
                f"no input bound for source {node.name!r}; have {sorted(sources)}"
            )
        t0 = _monitor_clock(monitor)
        with _node_span(node) as sp:
            frame = sources[node.name]
            result = (frame, Provenance.for_source(node.name, frame.row_ids))
            sp.set(rows_out=frame.num_rows)
        _monitor_observe(monitor, node, frame.num_rows, result[0], t0)
    elif isinstance(node, JoinNode):
        left = _run_node(
            node.inputs[0], sources, fit, cache, policy, quarantine, monitor
        )
        right = _run_node(
            node.inputs[1], sources, fit, cache, policy, quarantine, monitor
        )
        t0 = _monitor_clock(monitor)
        with _node_span(node, rows_in=left[0].num_rows) as sp:
            if strict:
                left_frame, left_prov = left
                right_frame, right_prov = right
                joined, lpos, rpos = left_frame.join(
                    right_frame,
                    on=node.on,
                    how=node.how,
                    suffix=node.suffix,
                    fuzzy=node.fuzzy,
                    return_indices=True,
                )
                out_prov_rows = []
                for lp, rp in zip(lpos, rpos):
                    row = left_prov.tuples[int(lp)]
                    if rp >= 0:
                        row = row | right_prov.tuples[int(rp)]
                    out_prov_rows.append(row)
                result = (joined, Provenance(out_prov_rows))
            else:
                result = _run_join_guarded(node, left, right, node_policy, quarantine)
            sp.set(rows_out=result[0].num_rows)
        _monitor_observe(monitor, node, left[0].num_rows, result[0], t0)
    elif isinstance(node, FilterNode):
        frame, prov = _run_node(
            node.inputs[0], sources, fit, cache, policy, quarantine, monitor
        )
        t0 = _monitor_clock(monitor)
        with _node_span(node, rows_in=frame.num_rows) as sp:
            if strict:
                mask = np.asarray(node.predicate(frame), dtype=bool)
                positions = np.flatnonzero(mask)
                result = (frame.take(positions), prov.take(positions))
            else:
                result = _run_filter_guarded(node, frame, prov, node_policy, quarantine)
            sp.set(rows_out=result[0].num_rows)
        _monitor_observe(monitor, node, frame.num_rows, result[0], t0)
    elif isinstance(node, MapNode):
        frame, prov = _run_node(
            node.inputs[0], sources, fit, cache, policy, quarantine, monitor
        )
        t0 = _monitor_clock(monitor)
        with _node_span(node, rows_in=frame.num_rows) as sp:
            if strict:
                out = frame.copy()
                out[node.name] = node.func(frame)
                result = (out, prov)
            else:
                result = _run_map_guarded(node, frame, prov, node_policy, quarantine)
            sp.set(rows_out=result[0].num_rows)
        _monitor_observe(monitor, node, frame.num_rows, result[0], t0)
    elif isinstance(node, ProjectNode):
        frame, prov = _run_node(
            node.inputs[0], sources, fit, cache, policy, quarantine, monitor
        )
        t0 = _monitor_clock(monitor)
        with _node_span(node, rows_in=frame.num_rows) as sp:
            result = (frame.select(node.columns), prov)
            sp.set(rows_out=result[0].num_rows)
        _monitor_observe(monitor, node, frame.num_rows, result[0], t0)
    elif isinstance(node, EncodeNode):
        # Handled by the caller (needs to produce X/y, not a frame).
        raise TypeError("EncodeNode must be the sink; execute() handles it")
    else:  # pragma: no cover - defensive
        raise TypeError(f"unknown node type: {type(node).__name__}")

    cache[node.id] = result
    return result


def _encode_guarded(
    sink: EncodeNode,
    frame: DataFrame,
    prov: Provenance,
    fit: bool,
    policy: ErrorPolicy,
    quarantine: Quarantine,
) -> tuple[DataFrame, Provenance, np.ndarray]:
    """Encode under a policy: quarantine missing labels and (optionally)
    rows whose encoded features come out non-finite."""
    if not policy.is_fail_fast:
        label_mask = frame.column(sink.label_column).isnull()
        if label_mask.any():
            for pos in np.flatnonzero(label_mask):
                quarantine.add(
                    sink, "missing_label", None, prov.tuples[int(pos)]
                )
            keep = np.flatnonzero(~label_mask)
            frame, prov = frame.take(keep), prov.take(keep)

    encode = (
        (lambda: sink.encoder.fit_transform(frame))
        if fit
        else (lambda: sink.encoder.transform(frame))
    )
    ok, X, error, __ = _attempt(encode, policy)
    if not ok:
        if policy.is_fail_fast or fit:
            # A failed *fit* cannot be attributed row-wise (the encoder needs
            # the full column to fit at all) — surface it with node context.
            raise _operator_error(sink, error)
        # fit=False: transform row-by-row, quarantining the rows that fail.
        keep: list[int] = []
        blocks: list[np.ndarray] = []
        for pos in range(frame.num_rows):
            row_frame = frame.take([pos])
            ok_i, block, err_i, att_i = _attempt(
                lambda rf=row_frame: sink.encoder.transform(rf), policy
            )
            if ok_i:
                keep.append(pos)
                blocks.append(np.asarray(block, dtype=float))
            else:
                quarantine.add(
                    sink, _reason_for(err_i), err_i, prov.tuples[pos],
                    attempts=att_i,
                )
        positions = np.asarray(keep, dtype=np.int64)
        frame, prov = frame.take(positions), prov.take(positions)
        width = blocks[0].shape[1] if blocks else 0
        X = np.vstack(blocks) if blocks else np.empty((0, width))

    X = np.asarray(X, dtype=float)
    if not policy.is_fail_fast and policy.guard_nonfinite and X.size:
        bad = ~np.isfinite(X).all(axis=1)
        if bad.any():
            for pos in np.flatnonzero(bad):
                quarantine.add(
                    sink,
                    "nonfinite",
                    ValueError("encoded feature vector contains non-finite values"),
                    prov.tuples[int(pos)],
                )
            keep = np.flatnonzero(~bad)
            frame, prov, X = frame.take(keep), prov.take(keep), X[keep]
    return frame, prov, X


def execute(
    sink: Node,
    sources: Mapping[str, DataFrame],
    fit: bool = True,
    cache: dict[int, tuple[DataFrame, Provenance]] | None = None,
    policy: ExecutionPolicy | None = None,
    monitor: PipelineMonitor | bool | None = None,
) -> PipelineResult:
    """Run the pipeline ending at ``sink`` over concrete source frames.

    Parameters
    ----------
    fit:
        When True, feature encoders are (re)fitted on this run's data; when
        False they must already be fitted (used to push validation/test data
        through a pipeline fitted on training data).
    cache:
        Optional node-result cache keyed by node id. Passing the same dict
        across several ``execute`` calls shares the work of common subplans —
        the mechanism behind what-if analysis (:mod:`repro.pipeline.whatif`).
        Only valid when the calls bind the *same* source frames (and, when a
        policy is given, the same policy).
    policy:
        Optional :class:`~repro.pipeline.resilience.ExecutionPolicy`. When
        omitted (or when every node resolves to a bare fail-fast policy)
        execution follows the seed fail-fast code path exactly. Under a
        non-fail-fast policy, rows an operator cannot process are dropped
        into ``result.quarantine`` (or patched with the policy's default)
        instead of aborting the run.
    monitor:
        Optional :class:`~repro.obs.quality.PipelineMonitor` (or ``True``
        for a throwaway instance). Every node then emits a
        :class:`~repro.obs.quality.NodeQualityProfile` of its output frame
        — completeness, distinctness, histograms, categorical top-k —
        collected into ``result.quality_profiles`` (and into the monitor,
        which streams across runs that share it). Monitoring observes node
        outputs after the fact and never changes what is computed.
    """
    if cache is None:
        cache = {}
    if monitor is True:
        monitor = PipelineMonitor()
    elif monitor is False:
        monitor = None
    quarantine = Quarantine()
    with _obs.span("pipeline.execute", fit=fit, robust=policy is not None) as root:
        if isinstance(sink, EncodeNode):
            frame, prov = _run_node(
                sink.inputs[0], sources, fit, cache, policy, quarantine, monitor
            )
            sink_policy = policy.resolve(sink) if policy is not None else None
            rows_in = frame.num_rows
            t0 = _monitor_clock(monitor)
            with _node_span(sink, rows_in=rows_in) as sp:
                if sink_policy is None:
                    if fit:
                        X = sink.encoder.fit_transform(frame)
                    else:
                        X = sink.encoder.transform(frame)
                else:
                    frame, prov, X = _encode_guarded(
                        sink, frame, prov, fit, sink_policy, quarantine
                    )
                sp.set(rows_out=frame.num_rows)
            _monitor_observe(monitor, sink, rows_in, frame, t0)
            y = np.asarray(frame.column(sink.label_column).to_list())
            result = PipelineResult(
                frame=frame, provenance=prov, sink=sink, X=X, y=y,
                quarantine=quarantine,
            )
        else:
            frame, prov = _run_node(
                sink, sources, fit, cache, policy, quarantine, monitor
            )
            result = PipelineResult(
                frame=frame, provenance=prov, sink=sink, quarantine=quarantine
            )
        reachable = {node.id for node in sink.plan.topological_order(sink)}
        result.intermediates = {
            nid: len(entry[1]) for nid, entry in cache.items() if nid in reachable
        }
        if monitor is not None:
            result.quality_profiles = monitor.profiles()
        if _obs.enabled():
            root.set(rows_out=result.n_rows, quarantined=len(quarantine))
            _obs_metrics.counter("pipeline.runs").inc()
            _obs_metrics.counter("pipeline.rows_out").inc(result.n_rows)
            if monitor is not None:
                _obs_metrics.counter("pipeline.monitored_runs").inc()
    return result


def execute_robust(
    sink: Node,
    sources: Mapping[str, DataFrame],
    fit: bool = True,
    policy: ExecutionPolicy | None = None,
    monitor: PipelineMonitor | bool | None = None,
    **policy_overrides: Any,
) -> PipelineResult:
    """Run a pipeline with row-level quarantine instead of fail-fast crashes.

    Equivalent to ``execute(sink, sources, fit, policy=ExecutionPolicy.robust())``
    — every operator skips-and-quarantines rows it cannot process, retrying
    transient failures once. Keyword overrides are forwarded to
    :meth:`ExecutionPolicy.robust` (e.g. ``max_retries=3, timeout=0.5``).
    ``monitor`` attaches per-node data-quality profiling exactly as in
    :func:`execute`.
    """
    if policy is None:
        policy = ExecutionPolicy.robust(**policy_overrides)
    elif policy_overrides:
        raise TypeError("pass either a policy or overrides, not both")
    return execute(sink, sources, fit=fit, policy=policy, monitor=monitor)


def with_provenance(
    sink: Node, sources: Mapping[str, DataFrame]
) -> tuple[np.ndarray, np.ndarray, Provenance, PipelineResult]:
    """Paper-style convenience: ``X, y, prov = nde.with_provenance(pipeline(...))``."""
    result = execute(sink, sources, fit=True)
    if result.X is None:
        raise TypeError("with_provenance requires a pipeline ending in encode()")
    return result.X, result.y, result.provenance, result


def incremental_append(
    result: PipelineResult, delta_sources: Mapping[str, DataFrame]
) -> PipelineResult:
    """Maintain a pipeline output when new rows arrive at a source.

    The survey's Debug take-away points at incremental view maintenance:
    because every relational operator here is monotone (select-project-join),
    appending rows to a source only *adds* output rows. The delta is computed
    by pushing just the new rows through the fitted pipeline (``fit=False``)
    and concatenating — no re-processing of the existing data.

    Parameters
    ----------
    result:
        A previous run whose encoders are already fitted.
    delta_sources:
        The same source bindings as the original run, except the appended
        source(s) contain *only the new rows* (with fresh row ids). An empty
        delta (or one whose rows are all filtered away) is a no-op.

    Returns a result equal to re-running the pipeline over the concatenated
    sources with ``fit=False`` (a property the tests verify).
    """
    if result.X is None or result.y is None:
        raise ValueError("incremental_append requires an encoded pipeline result")
    delta = execute(result.sink, delta_sources, fit=False)
    if delta.frame.num_rows == 0:
        # Nothing survived the pipeline: the maintained view is unchanged.
        return PipelineResult(
            frame=result.frame,
            provenance=result.provenance,
            sink=result.sink,
            X=result.X,
            y=result.y,
            intermediates=dict(result.intermediates),
            quarantine=Quarantine.merge([result.quarantine, delta.quarantine]),
        )
    combined_frame = DataFrame.concat_rows([result.frame, delta.frame])
    combined_prov = Provenance.concat([result.provenance, delta.provenance])
    return PipelineResult(
        frame=combined_frame,
        provenance=combined_prov,
        sink=result.sink,
        X=np.vstack([result.X, delta.X]),
        y=np.concatenate([result.y, delta.y]),
        intermediates=dict(result.intermediates),
        quarantine=Quarantine.merge([result.quarantine, delta.quarantine]),
    )
