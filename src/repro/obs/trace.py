"""Hierarchical tracing: spans, a recorder, and zero-cost disabled mode.

The paper's Debug pillar rests on being able to *see inside* a pipeline
(mlinspect/ArgusEyes-style inspection); this module gives the runtime the
same property. A :class:`Span` is one timed region of work (an operator
evaluation, a permutation wave, a cleaning round) with a name, attributes,
and a parent — together they form the trace tree that
:class:`repro.obs.report.TraceReport` renders.

Design constraints, in order:

no overhead when disabled
    Tracing is off by default. Every instrumentation site goes through
    :func:`span` (or :func:`traced`), whose disabled path is a single
    module-global flag check returning a shared no-op singleton — no
    allocation, no lock, no clock read. The engine benchmark asserts the
    end-to-end cost of this path is < 5% of the workload.

thread- and fork-safety, with worker backhaul
    Completed spans are appended under a lock; the *active* span stack is
    ``threading.local`` so concurrent threads build disjoint subtrees.
    Fork/spawn worker fleets (the :class:`~repro.importance.engine.
    ValuationEngine` fan-out and the persistent pool) inherit or rebuild
    the recorder; the first recording in a forked child detects the PID
    change and starts a fresh buffer so parent spans are never duplicated.
    Child spans are **not** lost: workers wrap each chunk in a
    :class:`WorkerTelemetry` capture whose :meth:`~WorkerTelemetry.collect`
    delta (finished spans + metric deltas) rides the existing result pipe
    back to the driver, where :func:`merge_worker_telemetry` adopts the
    spans into the live trace under a ``worker[i]`` group span and folds
    the metrics into the registry. If a process records spans after a fork
    with no backhaul capture active, the spans are counted (shipped as
    ``dropped`` at the next merge, surfacing driver-side as the
    ``obs.trace.dropped_fork_spans`` counter) and a one-time
    :class:`RuntimeWarning` is emitted instead of silence.

deterministic structure
    Span ids are a monotone counter and spans are recorded in start order
    (pre-order of the tree), so for a fixed-seed workload the sequence of
    ``(name, parent)`` pairs — though not the timings — is reproducible
    and directly assertable in tests.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from . import flight as _flight
from . import metrics as _metrics

__all__ = [
    "Span",
    "TraceRecorder",
    "WorkerTelemetry",
    "TRACE_SCHEMA_VERSION",
    "enabled",
    "enable",
    "disable",
    "span",
    "traced",
    "add_attrs",
    "current_span",
    "get_recorder",
    "merge_worker_telemetry",
    "read_trace_export",
]

#: Version stamped into every trace JSONL export (header line). Readers
#: must ignore unknown fields, so this only gates *incompatible* changes.
#: v2: spans may be adopted from worker processes (``worker[i]`` groups);
#: histogram metric snapshots carry p50/p95/p99.
TRACE_SCHEMA_VERSION = 2

#: Process-wide on/off switch. Read via :func:`enabled`; instrumentation
#: sites must treat ``False`` as "do nothing at all".
_ENABLED = False

#: True while a :class:`WorkerTelemetry` capture is live in this process —
#: i.e. spans recorded after a fork/spawn have a path back to the driver.
#: Gates the fork-drop warning in :meth:`TraceRecorder.start_span`.
_BACKHAUL_ACTIVE = False


@dataclass
class Span:
    """One timed region of work.

    ``start`` is a ``time.perf_counter()`` reading (monotonic, comparable
    only within a process); ``duration`` is ``None`` while the span is
    open. ``parent_id`` is ``None`` for roots.
    """

    span_id: int
    parent_id: int | None
    name: str
    start: float
    duration: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.duration is not None

    def set(self, **attrs: Any) -> "Span":
        """Attach attributes to the span (chainable)."""
        self.attrs.update(attrs)
        return self

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": _jsonable(self.attrs),
        }


def _jsonable(value: Any) -> Any:
    """Coerce attribute values into JSON-encodable shapes (numpy included)."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    # numpy scalars/arrays without importing numpy here (obs is dependency-free)
    if hasattr(value, "tolist"):
        return _jsonable(value.tolist())
    if hasattr(value, "item"):
        return value.item()
    return repr(value)


class TraceRecorder:
    """Collects completed spans; one per process (see :func:`get_recorder`)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self._spans: list[Span] = []
        self._next_id = 0
        self._local = threading.local()
        self._forked = False
        self._fork_dropped = 0
        self._fork_warned = False

    # -- fork/thread plumbing -------------------------------------------
    def _guard_fork(self) -> None:
        """Called before any mutation: a PID change means we are a forked
        child that inherited the parent's buffer — start from scratch.
        The child's own spans are shipped back via :class:`WorkerTelemetry`
        (or counted as dropped if no capture is active)."""
        if os.getpid() != self._pid:
            self._pid = os.getpid()
            self._spans = []
            self._next_id = 0
            self._local = threading.local()
            self._forked = True
            self._fork_dropped = 0
            self._fork_warned = False

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- span lifecycle -------------------------------------------------
    def start_span(self, name: str, attrs: dict[str, Any]) -> Span:
        with self._lock:
            self._guard_fork()
            if self._forked and not _BACKHAUL_ACTIVE:
                # Recording after a fork with no backhaul capture: the span
                # will never reach the driver's trace. Count it (shipped as
                # "dropped" by the next WorkerTelemetry, if one appears)
                # and say so once instead of losing data silently.
                self._fork_dropped += 1
                if not self._fork_warned:
                    self._fork_warned = True
                    warnings.warn(
                        "tracing after fork without WorkerTelemetry backhaul:"
                        " spans recorded in this process will not reach the"
                        " driver's trace (counted as"
                        " obs.trace.dropped_fork_spans)",
                        RuntimeWarning,
                        stacklevel=3,
                    )
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
            span_obj = Span(
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start=time.perf_counter(),
                attrs=attrs,
            )
            self._next_id += 1
            # Recorded at start: the span list is the pre-order traversal
            # of the trace tree, which makes structure assertions trivial.
            self._spans.append(span_obj)
            stack.append(span_obj)
        return span_obj

    def end_span(self, span_obj: Span) -> None:
        end = time.perf_counter()
        with self._lock:
            self._guard_fork()
            span_obj.duration = end - span_obj.start
            stack = self._stack()
            # Pop through (rather than asserting the top) so a span closed
            # out of order — e.g. by a generator finalised late — cannot
            # wedge the stack for the rest of the process.
            while stack and stack[-1].span_id >= span_obj.span_id:
                stack.pop()

    # -- worker-span adoption -------------------------------------------
    def open_group(self, name: str, **attrs: Any) -> Span:
        """Create a grouping span under the current thread's open span
        *without* pushing it on the active stack — the anchor adopted
        worker spans hang from. Its duration starts at zero and is
        stretched by :func:`merge_worker_telemetry` to cover its children.
        """
        with self._lock:
            self._guard_fork()
            stack = self._stack()
            parent_id = stack[-1].span_id if stack else None
            span_obj = Span(
                span_id=self._next_id,
                parent_id=parent_id,
                name=name,
                start=time.perf_counter(),
                duration=0.0,
                attrs=dict(attrs),
            )
            self._next_id += 1
            self._spans.append(span_obj)
        return span_obj

    def adopt(
        self,
        span_dicts: list[dict[str, Any]],
        parent_id: int | None,
        offset: float = 0.0,
    ) -> list[Span]:
        """Append spans shipped from another process.

        Spans are re-identified with this recorder's counter; parent links
        *within* the batch are remapped, and batch roots are parented under
        ``parent_id``. ``offset`` rebases the shipping process's
        ``perf_counter`` timeline onto this one (driver now minus the
        worker's clock reading at collection time)."""
        adopted: list[Span] = []
        with self._lock:
            self._guard_fork()
            id_map: dict[Any, int] = {}
            for item in span_dicts:
                span_obj = Span(
                    span_id=self._next_id,
                    parent_id=id_map.get(item.get("parent_id"), parent_id),
                    name=str(item.get("name", "?")),
                    start=float(item.get("start", 0.0)) + offset,
                    duration=item.get("duration"),
                    attrs=dict(item.get("attrs") or {}),
                )
                self._next_id += 1
                id_map[item.get("span_id")] = span_obj.span_id
                self._spans.append(span_obj)
                adopted.append(span_obj)
        return adopted

    # -- introspection / export -----------------------------------------
    @property
    def spans(self) -> list[Span]:
        with self._lock:
            self._guard_fork()
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            self._guard_fork()
            return len(self._spans)

    def current(self) -> Span | None:
        with self._lock:
            self._guard_fork()
            stack = self._stack()
            return stack[-1] if stack else None

    def reset(self) -> None:
        with self._lock:
            self._guard_fork()
            self._spans = []
            self._next_id = 0
            self._local = threading.local()
            self._fork_dropped = 0

    def export_jsonl(self, path: Any) -> int:
        """Write a schema-version header then one CRC-framed JSON object per
        completed span; returns the span count. The file is staged and
        renamed into place atomically, so readers never observe a partial
        export; :func:`read_trace_export` verifies the CRCs and quarantines
        any later bit rot."""
        from .atomicio import atomic_writer, frame_line

        spans = [s for s in self.spans if s.finished]
        with atomic_writer(path) as handle:
            handle.write(
                frame_line(
                    {
                        "schema_version": TRACE_SCHEMA_VERSION,
                        "kind": "trace_recorder",
                        "n_spans": len(spans),
                    }
                )
                + "\n"
            )
            for span_obj in spans:
                handle.write(frame_line(span_obj.to_dict()) + "\n")
        return len(spans)


def read_trace_export(path: Any) -> tuple[dict[str, Any], list[dict[str, Any]]]:
    """Load one trace export: ``(header, span_dicts)``.

    Goes through the validating loader (:func:`repro.obs.atomicio.
    read_jsonl`): corrupt lines are quarantined to ``<path>.corrupt`` with
    metrics and an alert, and the surviving spans still load. Un-framed
    (v1/v2 plain-JSONL) exports load unchanged. A damaged or missing
    header yields ``{}``.
    """
    from .atomicio import read_jsonl

    payloads, _ = read_jsonl(path, artifact="trace")
    header: dict[str, Any] = {}
    spans: list[dict[str, Any]] = []
    for payload in payloads:
        if not header and payload.get("kind") == "trace_recorder":
            header = payload
        else:
            spans.append(payload)
    return header, spans


_RECORDER = TraceRecorder()


def get_recorder() -> TraceRecorder:
    """The process-wide recorder every span lands in."""
    return _RECORDER


# ---------------------------------------------------------------------- #
# cross-process telemetry backhaul                                       #
# ---------------------------------------------------------------------- #
class WorkerTelemetry:
    """Child-side capture buffering spans + metric deltas for backhaul.

    A worker constructs one when it starts (or resumes) telemetry-carrying
    work; :meth:`collect` drains everything recorded since the last drain
    into a small JSON-safe delta that rides the existing result pipe back
    to the driver (``(chunk_id, result, telemetry_delta)``), where
    :func:`merge_worker_telemetry` folds it into the live trace tree and
    metrics registry. Constructing one marks backhaul as active for the
    process, which silences the fork-drop warning.
    """

    def __init__(self, enable_tracing: bool = False) -> None:
        global _BACKHAUL_ACTIVE
        _BACKHAUL_ACTIVE = True
        if enable_tracing:
            enable()
        rec = _RECORDER
        with rec._lock:
            rec._guard_fork()
            self._base = len(rec._spans)
        self._metrics_before = _metrics.snapshot()

    def collect(self) -> dict[str, Any] | None:
        """Drain finished spans and metric deltas since the last drain.

        Shipped spans are removed from the child recorder (unfinished ones
        stay for the next drain) so a long-lived pool worker's buffer stays
        bounded across thousands of chunks. Returns ``None`` when there is
        nothing to ship."""
        rec = _RECORDER
        with rec._lock:
            rec._guard_fork()
            tail = rec._spans[self._base:]
            shipped = [s.to_dict() for s in tail if s.finished]
            rec._spans[self._base:] = [s for s in tail if not s.finished]
            dropped = rec._fork_dropped
            rec._fork_dropped = 0
        after = _metrics.snapshot()
        metrics_delta = _metrics.delta_snapshots(self._metrics_before, after)
        self._metrics_before = after
        if not shipped and not metrics_delta and not dropped:
            return None
        return {
            "pid": os.getpid(),
            "clock": time.perf_counter(),
            "spans": shipped,
            "metrics": metrics_delta,
            "dropped": dropped,
        }


def merge_worker_telemetry(
    slot: int,
    delta: dict[str, Any] | None,
    groups: dict[int, Span] | None = None,
) -> None:
    """Driver-side merge of one worker's shipped telemetry delta.

    Metric deltas fold into the process registry (Chan-style merge);
    ``dropped`` counts surface as the ``obs.trace.dropped_fork_spans``
    counter; spans are adopted — clock-rebased onto the driver timeline —
    under a lazily-created ``worker[slot]`` group span parented beneath
    the caller's current open span. Pass one ``groups`` dict per dispatch
    wave so every chunk a worker evaluated lands under a single
    ``worker[slot]`` parent, and every adopted span is echoed into the
    flight recorder so a later crash dump names the worker's recent work.
    """
    if not delta:
        return
    metrics_delta = delta.get("metrics")
    if metrics_delta:
        _metrics.merge_delta(metrics_delta)
    dropped = delta.get("dropped", 0)
    if dropped:
        _metrics.counter("obs.trace.dropped_fork_spans").inc(dropped)
    span_dicts = delta.get("spans") or []
    if not span_dicts or not _ENABLED:
        return
    offset = time.perf_counter() - float(delta.get("clock", 0.0))
    group = groups.get(slot) if groups is not None else None
    if group is None:
        group = _RECORDER.open_group(
            f"worker[{slot}]", pid=delta.get("pid"), slot=slot
        )
        if groups is not None:
            groups[slot] = group
    adopted = _RECORDER.adopt(span_dicts, parent_id=group.span_id, offset=offset)
    if adopted:
        _metrics.counter("obs.trace.worker_spans").inc(len(adopted))
        group_end = group.start + (group.duration or 0.0)
        for span_obj in adopted:
            _flight.record_span(f"worker[{slot}]", span_obj.to_dict())
            group_end = max(group_end, span_obj.start + (span_obj.duration or 0.0))
        group.start = min(group.start, min(s.start for s in adopted))
        group.duration = group_end - group.start


# ---------------------------------------------------------------------- #
# public instrumentation surface                                         #
# ---------------------------------------------------------------------- #
class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "_NullSpan":
        return self

    attrs: dict = {}


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager binding one live :class:`Span` to the recorder."""

    __slots__ = ("_span",)

    def __init__(self, span_obj: Span) -> None:
        self._span = span_obj

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        _RECORDER.end_span(self._span)

    def set(self, **attrs: Any) -> "_ActiveSpan":
        self._span.set(**attrs)
        return self

    @property
    def attrs(self) -> dict:
        return self._span.attrs


def enabled() -> bool:
    """Fast flag check — the entire cost of instrumentation when off."""
    return _ENABLED


def enable() -> None:
    """Turn tracing (and metric emission at instrumented sites) on."""
    global _ENABLED
    _ENABLED = True


def disable() -> None:
    global _ENABLED
    _ENABLED = False


def span(name: str, **attrs: Any):
    """Open a span::

        with obs.span("node.map#3", rows=120) as s:
            ...
            s.set(rows_out=118)

    Disabled mode returns a shared no-op object without touching the
    recorder or the clock.
    """
    if not _ENABLED:
        return _NULL_SPAN
    return _ActiveSpan(_RECORDER.start_span(name, dict(attrs)))


def traced(name_or_fn: Any = None, **span_attrs: Any) -> Callable:
    """Decorator form of :func:`span`.

    Usable bare (``@traced``) or configured (``@traced("my.name", tag=1)``);
    defaults the span name to the function's qualified name. The disabled
    path is one flag check before delegating to the wrapped function.
    """
    import functools

    def decorate(fn: Callable) -> Callable:
        label = name if name is not None else fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any):
            if not _ENABLED:
                return fn(*args, **kwargs)
            with span(label, **span_attrs):
                return fn(*args, **kwargs)

        return wrapper

    if callable(name_or_fn):
        name = None
        return decorate(name_or_fn)
    name = name_or_fn
    return decorate


def add_attrs(**attrs: Any) -> None:
    """Attach attributes to the innermost open span (no-op if none/disabled)."""
    if not _ENABLED:
        return
    current = _RECORDER.current()
    if current is not None:
        current.set(**attrs)


def current_span() -> Span | None:
    """The innermost open span of this thread, or ``None``."""
    if not _ENABLED:
        return None
    return _RECORDER.current()
