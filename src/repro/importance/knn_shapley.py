"""Exact closed-form KNN-Shapley (Jia et al. [33]).

The Shapley value is exponential to compute for a general model, but for the
K-nearest-neighbour utility it collapses to an exact O(n log n) recursion
per test point. This is the tutorial's flagship "proxy model" trick: compute
importance under KNN, use the ranking to debug data feeding *any* model.

Utility convention (matching Jia et al.): for a test point ``(x, y)`` and a
training subset S, ``v(S) = (1/K) · Σ_{k ≤ min(K, |S|)} 1[y_{α_k(S)} = y]``
where ``α_k(S)`` is the k-th nearest neighbour of x within S, and v(∅) = 0.
The recursion (their Theorem 1), with points sorted by distance to x
(1-indexed; α_i = i-th nearest in the *full* training set):

    s_{α_n} = 1[y_{α_n} = y] / n
    s_{α_i} = s_{α_{i+1}} + (1[y_{α_i} = y] − 1[y_{α_{i+1}} = y]) / K
                            · min(K, i) / i
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..learn.models.knn import pairwise_distances
from ..obs import trace as _obs
from .base import ImportanceResult

__all__ = ["knn_shapley", "knn_utility", "knn_shapley_brute_force"]


def _single_test_shapley(
    sorted_labels: np.ndarray, test_label: Any, k: int
) -> np.ndarray:
    """Reference scalar recursion for one test point (distance-sorted order).

    :func:`knn_shapley` uses a vectorised formulation of the same recursion;
    this function is kept as the readable specification and as the oracle
    the equivalence tests compare against.

    The base case carries a ``min(K, n)/K`` factor: Jia et al. state the
    recursion for n ≥ K where it reduces to ``match/n``, but for n < K the
    grand coalition's utility is only ``(Σ match)/K``, and the generalised
    base case keeps the efficiency axiom exact (verified against brute
    force in the tests).
    """
    n = len(sorted_labels)
    match = (sorted_labels == test_label).astype(float)
    s = np.empty(n)
    s[n - 1] = match[n - 1] / n * min(k, n) / k
    for i in range(n - 2, -1, -1):  # i is 0-based; formula's i is i+1
        rank = i + 1
        s[i] = s[i + 1] + (match[i] - match[i + 1]) / k * min(k, rank) / rank
    return s


def knn_shapley(
    x_train: Any,
    y_train: Any,
    x_valid: Any,
    y_valid: Any,
    k: int = 5,
    metric: str = "euclidean",
    block_size: int = 1024,
) -> ImportanceResult:
    """Exact Data-Shapley values under the KNN utility, averaged over the
    validation set.

    Returns one value per training point; the values of each test point sum
    to its utility ``v(N)`` exactly (the efficiency axiom), so the returned
    averages sum to the mean validation KNN utility.

    Validation points are processed in blocks of ``block_size``, so the
    train×valid distance matrix is streamed in fixed-size slabs instead of
    materialised whole — memory stays O(block_size · n_train) however many
    validation points there are. Blocking does not change the result: each
    validation row's contribution is computed identically and accumulated
    in the same order.
    """
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_valid = np.asarray(x_valid, dtype=float)
    y_valid = np.asarray(y_valid)
    if len(x_train) != len(y_train):
        raise ValueError("x_train and y_train must have equal length")
    if len(x_valid) != len(y_valid):
        raise ValueError("x_valid and y_valid must have equal length")
    if len(y_valid) == 0:
        raise ValueError("validation set is empty")
    if k < 1:
        raise ValueError("k must be >= 1")
    if block_size < 1:
        raise ValueError("block_size must be >= 1")
    n = len(y_train)
    ranks = np.arange(1, n + 1, dtype=float)
    coeff = np.minimum(k, ranks) / (k * ranks)  # c_i for i = 1..n
    values = np.zeros(n)
    with _obs.span(
        "importance.knn_shapley",
        n_train=n,
        n_valid=len(y_valid),
        k=k,
        block_size=block_size,
    ):
        for start in range(0, len(y_valid), block_size):
            block = slice(start, start + block_size)
            distances = pairwise_distances(x_valid[block], x_train, metric=metric)
            # Vectorised recursion over the block's validation points: for each
            # row, s_i = s_{i+1} + (match_i − match_{i+1}) · c_i with
            # c_i = min(K, rank_i) / (K · rank_i), i.e. a reversed cumulative
            # sum of the weighted match differences plus the base case.
            order = np.argsort(distances, axis=1, kind="stable")  # (block, n)
            match = (y_train[order] == y_valid[block][:, None]).astype(float)
            base = match[:, -1] / n * min(k, n) / k
            diffs = (match[:, :-1] - match[:, 1:]) * coeff[:-1]  # term in s_i
            s = np.empty_like(match)
            s[:, -1] = base
            # s_i = base + Σ_{j ≥ i} diffs_j  → reversed cumulative sum.
            s[:, :-1] = base[:, None] + np.cumsum(diffs[:, ::-1], axis=1)[:, ::-1]
            np.add.at(values, order, s)
        values /= len(y_valid)
    return ImportanceResult(
        method=f"knn_shapley(k={k})",
        values=values,
        extras={
            "k": k,
            "metric": metric,
            "n_valid": len(y_valid),
            "block_size": block_size,
        },
    )


def knn_utility(
    subset: np.ndarray,
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_valid: np.ndarray,
    y_valid: np.ndarray,
    k: int,
    metric: str = "euclidean",
) -> float:
    """The exact utility ``v(S)`` the closed form is the Shapley value of.

    Used by tests to cross-check :func:`knn_shapley` against brute-force
    enumeration over the same game.
    """
    subset = np.asarray(subset, dtype=np.int64)
    if len(subset) == 0:
        return 0.0
    distances = pairwise_distances(x_valid, x_train[subset], metric=metric)
    total = 0.0
    for t in range(len(y_valid)):
        order = np.argsort(distances[t], kind="stable")[: min(k, len(subset))]
        total += float(np.sum(y_train[subset][order] == y_valid[t])) / k
    return total / len(y_valid)


def knn_shapley_brute_force(
    x_train: Any,
    y_train: Any,
    x_valid: Any,
    y_valid: Any,
    k: int = 1,
    metric: str = "euclidean",
) -> ImportanceResult:
    """Shapley values of the KNN game by subset enumeration (n ≤ 12; tests only)."""
    from math import comb

    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_valid = np.asarray(x_valid, dtype=float)
    y_valid = np.asarray(y_valid)
    n = len(y_train)
    if n > 12:
        raise ValueError(f"brute force infeasible for n={n}")
    cache: dict[int, float] = {}

    def value(bits: int) -> float:
        if bits not in cache:
            subset = np.asarray([i for i in range(n) if bits >> i & 1], dtype=np.int64)
            cache[bits] = knn_utility(subset, x_train, y_train, x_valid, y_valid, k, metric)
        return cache[bits]

    values = np.zeros(n)
    for i in range(n):
        for bits in range(2**n):
            if bits >> i & 1:
                continue
            size = bin(bits).count("1")
            weight = 1.0 / (n * comb(n - 1, size))
            values[i] += weight * (value(bits | (1 << i)) - value(bits))
    return ImportanceResult(method=f"knn_shapley_bf(k={k})", values=values)
